"""Workflow specifications: tasks, agents, and control-flow combinators.

A :class:`WorkflowSpec` is a named process over one *work item* (the
paper's unit of flow: a DNA sample, an insurance claim, a loan
application).  Its body is a tree of :class:`Node` combinators; the
compiler turns the tree into TD rules parameterized by the work item
variable ``W``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..core.terms import Atom

__all__ = [
    "Task",
    "Agent",
    "Node",
    "NonVital",
    "Step",
    "SeqFlow",
    "ParFlow",
    "Choice",
    "Iterate",
    "Subflow",
    "WaitFor",
    "Emit",
    "Consume",
    "WorkflowSpec",
]


@dataclass(frozen=True)
class Task:
    """A unit of work performed on a work item.

    ``role``: if set, the task must be performed by an *agent* qualified
    for this role; the compiled rule acquires one from the shared pool
    (``available``/``qualified`` facts), records the work in the history
    (``started``/``done`` facts -- insert-only, per the genome-lab
    discipline), and releases the agent (Example 3.3).  With no role the
    task runs unattended (a fully automated step).
    """

    name: str
    role: Optional[str] = None


@dataclass(frozen=True)
class Agent:
    """A shared resource: a technician or machine with qualifications."""

    name: str
    qualifications: Tuple[str, ...] = ()


class Node:
    """Base class of workflow control-flow combinators."""

    __slots__ = ()


@dataclass(frozen=True)
class Step(Node):
    """Perform a named task on the work item."""

    task: str


@dataclass(frozen=True)
class SeqFlow(Node):
    """Children in sequence (compiles to sequential composition)."""

    children: Tuple[Node, ...]

    def __init__(self, *children: Node):
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class ParFlow(Node):
    """Children concurrently (compiles to concurrent composition)."""

    children: Tuple[Node, ...]

    def __init__(self, *children: Node):
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class Choice(Node):
    """Exactly one child executes (compiles to multiple rules for a
    generated predicate -- TD's native nondeterministic choice)."""

    children: Tuple[Node, ...]

    def __init__(self, *children: Node):
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class Iterate(Node):
    """Repeat ``body`` until ``until`` holds for the work item.

    ``until`` is a predicate name: the loop stops once ``until(W)`` is in
    the database (typically inserted by a task inside the body -- "repeat
    the experimental protocol until a conclusive result", as the paper
    says of the genome workflow).  Compiles to sequential tail recursion,
    the fully-bounded recursion form of Section 5.
    """

    body: Node
    until: str


@dataclass(frozen=True)
class Subflow(Node):
    """Invoke another named workflow on the same work item
    (Example 3.1's sub-workflow)."""

    workflow: str


@dataclass(frozen=True)
class NonVital(Node):
    """A non-vital subtransaction: attempt ``body``; if it cannot commit,
    skip it without aborting the parent.

    One of the "advanced transaction model" features the paper credits
    TD with expressing -- the failure of a non-vital child does not imply
    the failure of its parent.  Compiles to a choice between the body and
    the empty process, so the engines explore the attempt first and fall
    back to skipping.  Note the TD semantics: "attempted but failed" and
    "skipped" are the same observable outcome, a commit without the
    body's effects.
    """

    body: Node


@dataclass(frozen=True)
class WaitFor(Node):
    """Block until ``pred(W)`` appears in the database -- synchronization
    with a cooperating workflow (Example 3.4).  Compiles to a tuple test,
    which simply cannot fire until a sibling process inserts the fact."""

    pred: str


@dataclass(frozen=True)
class Emit(Node):
    """Insert ``pred(W)``: publish information for cooperating
    workflows (the communication half of Example 3.4)."""

    pred: str


@dataclass(frozen=True)
class Consume(Node):
    """Test-and-delete ``pred(W)``: consume a message or token exactly
    once (at-most-once hand-off between cooperating workflows)."""

    pred: str


@dataclass(frozen=True)
class WorkflowSpec:
    """A named workflow over a single work item."""

    name: str
    body: Node
    tasks: Tuple[Task, ...] = ()

    def task_map(self) -> Dict[str, Task]:
        return {t.name: t for t in self.tasks}

    def validate(self, known_workflows: Sequence[str] = ()) -> None:
        """Check that every Step names a declared task and every Subflow
        a known workflow."""
        tasks = self.task_map()
        known = set(known_workflows) | {self.name}

        def walk(node: Node) -> None:
            if isinstance(node, Step):
                if node.task not in tasks:
                    raise ValueError(
                        "workflow %s: step uses undeclared task %r"
                        % (self.name, node.task)
                    )
            elif isinstance(node, (SeqFlow, ParFlow, Choice)):
                if not node.children:
                    raise ValueError(
                        "workflow %s: empty %s"
                        % (self.name, type(node).__name__)
                    )
                for child in node.children:
                    walk(child)
            elif isinstance(node, (Iterate, NonVital)):
                walk(node.body)
            elif isinstance(node, Subflow):
                if node.workflow not in known:
                    raise ValueError(
                        "workflow %s: subflow names unknown workflow %r"
                        % (self.name, node.workflow)
                    )
            elif isinstance(node, (WaitFor, Emit, Consume)):
                pass
            else:
                raise TypeError("unknown workflow node %r" % (node,))

        walk(self.body)
