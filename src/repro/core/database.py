"""Immutable database states.

A TD execution is a sequence of database states, and the semantics of a
transaction is a *binary relation on states* (which states it can carry
the database from and to).  That makes hashable, immutable states the
central data structure of the whole system: engines memoize on them, the
sequential evaluator tables on them, and property tests compare them.

A :class:`Database` is a frozenset of ground atoms with a predicate index
for fast tuple tests.  Updates return new databases and share the
underlying index dictionaries where possible (persistent-data-structure
style sharing keeps the small-step search affordable).
"""

from __future__ import annotations

import warnings
from bisect import insort
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .terms import Atom, Constant, Signature, Variable
from .unify import Substitution, apply_atom, match_atom

__all__ = ["Database", "Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised when a fact or operation violates the database schema."""


class Schema:
    """A database schema: a finite set of base predicate signatures.

    The paper fixes the schema when measuring data complexity; keeping it
    explicit also catches arity typos in hand-written programs early.
    A schema may be *open* (``strict=False``), in which case unknown
    predicates are admitted on first use -- convenient for quick scripts.

    Predicates are identified by *name/arity*: ``p/1`` and ``p/2`` are
    unrelated and may coexist (the usual Datalog convention).
    ``name in schema`` asks whether any arity of *name* is declared;
    ``(name, arity) in schema`` asks for the exact signature.
    """

    def __init__(self, signatures: Iterable[Signature] = (), strict: bool = True):
        self._signatures: set = set()
        self.strict = strict
        for name, arity in signatures:
            self.declare(name, arity)

    def declare(self, name: str, arity: int) -> None:
        self._signatures.add((name, arity))

    def check(self, fact: Atom) -> None:
        if fact.signature in self._signatures:
            return
        if self.strict:
            raise SchemaError(
                "unknown base predicate %s/%d" % (fact.pred, fact.arity)
            )
        self.declare(fact.pred, fact.arity)

    def __contains__(self, key) -> bool:
        if isinstance(key, tuple):
            return key in self._signatures
        return any(name == key for name, _arity in self._signatures)

    def signatures(self) -> Tuple[Signature, ...]:
        return tuple(sorted(self._signatures))

    def __repr__(self) -> str:
        sigs = ", ".join("%s/%d" % s for s in self.signatures())
        return "Schema(%s)" % sigs


class Database:
    """An immutable set of ground atoms, indexed by predicate.

    Equality and hashing are by content, so two databases reached along
    different execution paths compare equal -- the property every memo
    table in the engines relies on.
    """

    __slots__ = ("_index", "_hash", "_sorted", "_argidx")

    def __init__(self, facts: Iterable[Atom] = ()):
        index: Dict[str, FrozenSet[Atom]] = {}
        staging: Dict[str, set] = {}
        for fact in facts:
            if not fact.is_ground():
                raise ValueError("database facts must be ground: %s" % (fact,))
            staging.setdefault(fact.pred, set()).add(fact)
        for pred, group in staging.items():
            index[pred] = frozenset(group)
        self._index = index
        self._hash: Optional[int] = None
        self._sorted: Dict[str, list] = {}
        self._argidx: Dict[Tuple[str, int], Dict] = {}

    # -- construction helpers ------------------------------------------------

    @classmethod
    def _from_index(cls, index: Dict[str, FrozenSet[Atom]]) -> "Database":
        db = cls.__new__(cls)
        db._index = index
        db._hash = None
        db._sorted = {}
        db._argidx = {}
        return db

    # -- lazy per-instance query caches ----------------------------------------
    #
    # The cached structures are never mutated after they are built, so a
    # successor state produced by insert/delete can adopt them wholesale
    # for untouched predicates and copy-on-write just the touched
    # predicate's entries (see ``_derive``) -- the small-step search
    # then pays index-build cost once per predicate, not once per state.

    def _sorted_facts(self, pred: str) -> list:
        cached = self._sorted.get(pred)
        if cached is None:
            cached = sorted(self._index.get(pred, ()))
            self._sorted[pred] = cached
        return cached

    def _arg_index(self, pred: str, pos: int) -> Dict:
        """Per-position index, built lazily for whichever argument
        positions queries actually bind: joins like ``e(X, A) * e(A, B)``
        probe the second relation by its bound first argument, and
        ``e(A, B) * e(X, B)`` probes by the second -- each position gets
        its own index the first time a query needs it."""
        cached = self._argidx.get((pred, pos))
        if cached is None:
            cached = {}
            for fact in self._sorted_facts(pred):
                cached.setdefault(fact.args[pos], []).append(fact)
            self._argidx[(pred, pos)] = cached
        return cached

    def arg_index(self, pred: str, pos: int) -> Dict:
        """Public name for :meth:`_arg_index`, part of the
        :class:`repro.store.Store` query surface.  Treat the returned
        mapping as read-only: it is shared copy-on-write across
        successor states."""
        return self._arg_index(pred, pos)

    def _derive(self, pred: str, fact: Atom, removed: bool) -> "Database":
        """A successor state differing from ``self`` by one fact of
        *pred*, with query caches shared for every untouched predicate
        and updated copy-on-write for *pred* itself."""
        group = self._index.get(pred, frozenset())
        new_index = dict(self._index)
        if removed:
            new_group = group - {fact}
            if new_group:
                new_index[pred] = new_group
            else:
                del new_index[pred]
        else:
            new_index[pred] = group | {fact}
        db = Database._from_index(new_index)
        for p, lst in self._sorted.items():
            if p != pred:
                db._sorted[p] = lst
        for key, idx in self._argidx.items():
            if key[0] != pred:
                db._argidx[key] = idx
        old_sorted = self._sorted.get(pred)
        if old_sorted is not None:
            new_sorted = [f for f in old_sorted if f != fact] if removed else list(old_sorted)
            if not removed:
                insort(new_sorted, fact)
            db._sorted[pred] = new_sorted
        for key, idx in self._argidx.items():
            if key[0] != pred:
                continue
            pos = key[1]
            value = fact.args[pos]
            new_idx = dict(idx)
            bucket = new_idx.get(value, [])
            if removed:
                new_bucket = [f for f in bucket if f != fact]
                if new_bucket:
                    new_idx[value] = new_bucket
                else:
                    new_idx.pop(value, None)
            else:
                new_bucket = list(bucket)
                insort(new_bucket, fact)
                new_idx[value] = new_bucket
            db._argidx[key] = new_idx
        return db

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Iterable[Tuple]]) -> "Database":
        """Build a database from ``{pred: [args-tuple, ...]}``.

        Argument tuples may contain raw strings/ints; they are wrapped in
        constants.  ``{"p": [("a",), ("b",)]}`` gives ``{p(a), p(b)}``.
        """
        facts: List[Atom] = []
        for pred, rows in mapping.items():
            for row in rows:
                if not isinstance(row, tuple):
                    row = (row,)
                args = tuple(
                    arg if isinstance(arg, Constant) else Constant(arg) for arg in row
                )
                facts.append(Atom(pred, args))
        return cls(facts)

    # -- set interface --------------------------------------------------------

    def __contains__(self, fact: Atom) -> bool:
        group = self._index.get(fact.pred)
        return group is not None and fact in group

    def __iter__(self) -> Iterator[Atom]:
        for pred in sorted(self._index):
            for fact in sorted(self._index[pred]):
                yield fact

    def __len__(self) -> int:
        return sum(len(g) for g in self._index.values())

    def __bool__(self) -> bool:
        return any(self._index.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._index == other._index

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._index.items()))
        return self._hash

    def __repr__(self) -> str:
        return "Database{%s}" % (", ".join(str(f) for f in self))

    # -- queries ---------------------------------------------------------------

    def facts(self, pred: str) -> FrozenSet[Atom]:
        """All facts for a predicate (empty frozenset if none)."""
        return self._index.get(pred, frozenset())

    def predicates(self) -> AbstractSet[str]:
        """Predicates that currently have at least one fact."""
        return {p for p, g in self._index.items() if g}

    def match(
        self, pattern: Atom, subst: Substitution = {}
    ) -> Iterator[Substitution]:
        """Tuple testing: yield one extended substitution per fact that
        matches *pattern* under *subst*.

        This is the elementary query operation of TD.  Patterns with
        variables enumerate matching tuples; ground patterns act as a
        membership test yielding at most once.
        """
        pattern = apply_atom(pattern, subst)
        group = self._index.get(pattern.pred)
        if not group:
            return
        if pattern.is_ground():
            if pattern in group:
                yield subst
            return
        # Query-mode index selection: probe on the first *bound*
        # argument position, whichever it is -- the index for that
        # position is built on first use and shared across states.
        candidates = None
        for pos, arg in enumerate(pattern.args):
            if not isinstance(arg, Variable):
                candidates = self._arg_index(pattern.pred, pos).get(arg, ())
                break
        if candidates is None:
            candidates = self._sorted_facts(pattern.pred)
        for fact in candidates:
            bound = match_atom(pattern, fact, subst)
            if bound is not None:
                yield bound

    def holds(self, pattern: Atom, subst: Substitution = {}) -> bool:
        """True if at least one fact matches *pattern*."""
        for _ in self.match(pattern, subst):
            return True
        return False

    # -- updates ----------------------------------------------------------------

    def insert(self, fact: Atom) -> "Database":
        """Elementary insertion ``ins.p(t)``: a new state with *fact* added.

        Inserting an already-present fact is a no-op returning ``self``
        (database states are sets, as in the paper).
        """
        if not fact.is_ground():
            raise ValueError("cannot insert non-ground fact: %s" % (fact,))
        group = self._index.get(fact.pred, frozenset())
        if fact in group:
            return self
        return self._derive(fact.pred, fact, removed=False)

    def delete(self, fact: Atom) -> "Database":
        """Elementary deletion ``del.p(t)``: a new state with *fact* removed.

        Deleting an absent fact is a no-op returning ``self``.
        """
        if not fact.is_ground():
            raise ValueError("cannot delete non-ground fact: %s" % (fact,))
        group = self._index.get(fact.pred)
        if group is None or fact not in group:
            return self
        return self._derive(fact.pred, fact, removed=True)

    def insert_all(self, facts: Iterable[Atom]) -> "Database":
        db = self
        for fact in facts:
            db = db.insert(fact)
        return db

    def delete_all(self, facts: Iterable[Atom]) -> "Database":
        db = self
        for fact in facts:
            db = db.delete(fact)
        return db

    # -- comparison helpers -----------------------------------------------------

    def union(self, other: "Database") -> "Database":
        """Deprecated: use :meth:`insert_all` (or, for transactional
        batches, :meth:`repro.store.Store.insert_all`)."""
        warnings.warn(
            "Database.union is deprecated; use Database.insert_all "
            "(or Store.insert_all for transactional batches)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.insert_all(other)

    def difference(self, other: "Database") -> FrozenSet[Atom]:
        """Facts present here but not in *other* (for delta reporting)."""
        return frozenset(f for f in self if f not in other)
