"""Monitoring, tracking, and querying workflow histories.

The paper stresses that recording work in the database enables
"monitoring, tracking and querying the status of workflow activities".
The history facts written by compiled tasks --

    started(Task, Item)       done(Task, Item, Agent)

-- are ordinary relations, so status queries are ordinary (classical)
Datalog over the final state.  This module provides the common queries
directly and a reusable :func:`history_program` for richer analysis with
:mod:`repro.datalog`.

Abortable compilations (``compile_workflows(..., abortable=True)``)
additionally record ``aborted(Task, Item)`` for attempts that ran under
a fault and could not claim an agent.  Aborted terminations are kept
*distinct* from completions everywhere below: they have their own
queries (:func:`aborted_tasks`, :func:`failed_items`), they do not
count as completed work, and :func:`in_progress` excludes them -- an
aborted attempt is terminated, not still running.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..core.database import Database
from ..core.terms import Atom, Variable
from ..datalog import DatalogProgram, DatalogRule, Literal, evaluate

__all__ = [
    "completed_items",
    "task_counts",
    "agent_workload",
    "in_progress",
    "aborted_tasks",
    "failed_items",
    "history_program",
]


def completed_items(db: Database, final_task: str) -> List[str]:
    """Work items whose final task is done."""
    items = sorted(
        {str(f.args[1]) for f in db.facts("done") if str(f.args[0]) == final_task}
    )
    return items


def task_counts(db: Database) -> Dict[str, int]:
    """How many work items completed each task."""
    counts: Counter = Counter()
    for fact in db.facts("done"):
        counts[str(fact.args[0])] += 1
    return dict(counts)


def agent_workload(db: Database) -> Dict[str, int]:
    """How many task completions each agent performed.

    Fully automated tasks are attributed to the pseudo-agent ``auto``.
    """
    counts: Counter = Counter()
    for fact in db.facts("done"):
        counts[str(fact.args[2])] += 1
    return dict(counts)


def in_progress(db: Database) -> List[Tuple[str, str]]:
    """(task, item) pairs started but neither done nor aborted --
    nonempty only when inspecting an intermediate state, e.g. inside an
    execution trace.  Aborted attempts are terminated (distinctly, not
    successfully), so they are not "in progress"."""
    done = {(str(f.args[0]), str(f.args[1])) for f in db.facts("done")}
    started = {(str(f.args[0]), str(f.args[1])) for f in db.facts("started")}
    aborted = {(str(f.args[0]), str(f.args[1])) for f in db.facts("aborted")}
    return sorted(started - done - aborted)


def aborted_tasks(db: Database) -> List[Tuple[str, str]]:
    """(task, item) pairs recorded as aborted (fault-degraded attempts)."""
    return sorted(
        {(str(f.args[0]), str(f.args[1])) for f in db.facts("aborted")}
    )


def failed_items(db: Database) -> List[str]:
    """Work items with at least one aborted task and no completion of
    that same task -- the items a fault actually cost something."""
    recovered = {(str(f.args[0]), str(f.args[1])) for f in db.facts("done")}
    return sorted(
        {
            item
            for task, item in aborted_tasks(db)
            if (task, item) not in recovered
        }
    )


def history_program() -> DatalogProgram:
    """A Datalog program of derived status views over the history:

    * ``touched(W)`` -- the item has at least one completed task;
    * ``worked_with(A, B)`` -- agents A and B worked on a common item
      (reflexive: every working agent is paired with itself);
    * ``idle(A)`` -- an available agent with no completed work;
    * ``failed(W)`` -- some task on the item aborted and never
      completed (the degraded items a fault run leaves behind).
    """
    t, w, a, b = (Variable(v) for v in "TWAB")
    t2 = Variable("T2")
    return DatalogProgram([
        DatalogRule(Atom("touched", (w,)), (Literal(Atom("done", (t, w, a))),)),
        DatalogRule(
            Atom("worked_with", (a, b)),
            (
                Literal(Atom("done", (t, w, a))),
                Literal(Atom("done", (t2, w, b))),
            ),
        ),
        DatalogRule(
            Atom("idle", (a,)),
            (
                Literal(Atom("available", (a,))),
                Literal(Atom("busy_agent", (a,)), positive=False),
            ),
        ),
        DatalogRule(Atom("busy_agent", (a,)), (Literal(Atom("done", (t, w, a))),)),
        DatalogRule(
            Atom("failed", (w,)),
            (
                Literal(Atom("aborted", (t, w))),
                Literal(Atom("recovered_task", (t, w)), positive=False),
            ),
        ),
        DatalogRule(
            Atom("recovered_task", (t, w)), (Literal(Atom("done", (t, w, a))),)
        ),
    ])


def status_report(db: Database, span_id: Optional[str] = None) -> str:
    """A human-readable status summary of a history database.

    ``span_id`` (e.g. ``SimulationResult.span_id``) is echoed in the
    header so a monitoring report can be tied back to the engine trace
    that produced the history.
    """
    lines = []
    if span_id is not None:
        lines.append("engine trace span: %s" % span_id)
    lines.append("task counts:")
    for task, n in sorted(task_counts(db).items()):
        lines.append("  %-20s %d" % (task, n))
    lines.append("agent workload:")
    for agent, n in sorted(agent_workload(db).items()):
        lines.append("  %-20s %d" % (agent, n))
    aborted = aborted_tasks(db)
    if aborted:
        lines.append("aborted attempts: %s" % ", ".join("%s/%s" % p for p in aborted))
        failed = failed_items(db)
        if failed:
            lines.append("failed items: %s" % ", ".join(failed))
    pending = in_progress(db)
    if pending:
        lines.append("in progress: %s" % ", ".join("%s/%s" % p for p in pending))
    return "\n".join(lines)
