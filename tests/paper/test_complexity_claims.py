"""Integration tests pinning the *shape* of the paper's complexity map.

These are the testable faces of Section 4/5's theorems at laptop scale:
growth directions, decidability boundaries, and who-terminates-on-what.
The benchmarks measure the same families at larger sizes; here we pin
correctness at small sizes.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    SearchBudgetExceeded,
    SequentialEngine,
    Sublanguage,
    classify,
    parse_goal,
    select_engine,
)
from repro.complexity import (
    binary_counter_family,
    chain_edges,
    diverging_counter_machine,
    insert_only_closure,
    nonrecursive_path_program,
    transitive_closure_program,
)
from repro.machines import counter_to_td
from repro.machines.counter import parity_program


class TestC1FullTDisRE:
    """Theorem 4.1/4.4 territory: full TD simulates unbounded machines
    with a constant-size database; divergence is indistinguishable from
    slow acceptance (budget, not verdict)."""

    def test_machine_encoding_agrees_with_machine(self):
        m = parity_program()
        for n in (0, 1, 2):
            program, goal, db = counter_to_td(m, c0=n)
            got = Interpreter(program, max_configs=1_000_000).succeeds(goal, db)
            assert got == m.accepts(c0=n)

    def test_divergence_hits_budget(self):
        # por=False: this claim is about the *naive* interleaving
        # enumeration.  The partial-order reducer happens to decide this
        # particular machine finitely (counter 1's consume-inc body is
        # forever blocked -- nothing writes inc1 -- so every schedule is
        # provably commit-free), which does not contradict RE-ness: no
        # reducer decides every encoding.
        program, goal, db = counter_to_td(diverging_counter_machine())
        interp = Interpreter(program, max_configs=3_000, por=False)
        with pytest.raises(SearchBudgetExceeded):
            interp.succeeds(goal, db)

    def test_divergence_reducer_may_decide_an_instance(self):
        # The flip side: with the reducer on, the same encoding fails
        # finitely (and correctly -- the machine never accepts).  Sound
        # pruning may shrink an infinite fruitless search to a finite
        # one; it must never change the verdict when one is reached.
        program, goal, db = counter_to_td(diverging_counter_machine())
        interp = Interpreter(program, max_configs=3_000)
        assert interp.succeeds(goal, db) is False

    def test_database_never_grows_with_runtime(self):
        program, goal, db = counter_to_td(parity_program(), c0=4)
        exe = Interpreter(program, max_configs=2_000_000).simulate(goal, db)
        assert len(exe.database) <= len(db) + 3


class TestC2SequentialTDisDecidable:
    """Theorem 4.5: no concurrency -> a terminating (EXPTIME) decision
    procedure, with exponentially growing work on the counter family."""

    def test_binary_counter_simulates(self):
        for n in (1, 2, 3):
            program, goal, db = binary_counter_family(n)
            exe = Interpreter(program, max_configs=2_000_000).simulate(goal, db)
            assert exe is not None

    def test_steps_double_per_bit(self):
        lengths = []
        for n in (2, 3, 4, 5):
            program, goal, db = binary_counter_family(n)
            exe = Interpreter(program, max_configs=2_000_000).simulate(goal, db)
            lengths.append(len(exe.trace))
        ratios = [b / a for a, b in zip(lengths, lengths[1:])]
        # each extra bit roughly doubles the execution length
        assert all(r > 1.7 for r in ratios)

    def test_family_is_inside_a_decidable_fragment(self):
        program, goal, _db = binary_counter_family(3)
        assert select_engine(program, goal).decidable


class TestC4NonrecursivePolynomial:
    """Theorem 4.7: nonrecursive TD decides in polynomial time."""

    def test_path4_query(self):
        program = nonrecursive_path_program()
        engine = select_engine(program)
        assert engine.sublanguage is Sublanguage.NONRECURSIVE
        assert engine.succeeds("witness", chain_edges(4))
        assert not engine.succeeds("witness", chain_edges(3))

    def test_terminates_on_larger_inputs(self):
        program = nonrecursive_path_program()
        engine = select_engine(program)
        assert engine.succeeds("witness", chain_edges(4, extra_random=60, seed=1))


class TestC5QueryOnlyIsDatalog:
    """Query-only TD coincides with classical Datalog."""

    def test_td_vs_datalog_answers(self):
        from repro.datalog import evaluate, from_td
        from repro import atom

        program = transitive_closure_program()
        db = chain_edges(5)
        td = SequentialEngine(program)
        dl_facts = evaluate(from_td(program), db)
        for x in range(6):
            for y in range(6):
                goal = parse_goal("path(%d, %d)" % (x, y))
                assert td.succeeds(goal, db) == (atom("path", x, y) in dl_facts)


class TestC6InsertOnly:
    """Test+insert TD: the monotone scientific-workflow fragment."""

    def test_reachability_by_materialization(self):
        program = insert_only_closure()
        interp = Interpreter(program, max_configs=2_000_000)
        db = chain_edges(5)
        assert interp.simulate(parse_goal("reach(0, 5)"), db) is not None
        assert interp.simulate(parse_goal("reach(5, 0)"), db) is None

    def test_classifier_sees_no_deletion(self):
        from repro import analyze

        assert analyze(insert_only_closure()).insert_only


class TestC7FullyBounded:
    """Section 5: fully bounded TD -- the practical fragment.  All the
    paper's workflow machinery compiles into it except the dynamic
    instance spawner, and execution is decidable."""

    def test_lab_pipeline_is_fully_bounded(self):
        from repro.lims import gel_pipeline
        from repro.workflow.compiler import compile_workflows

        prog = compile_workflows([gel_pipeline(iterate=True)])
        assert classify(prog) in (
            Sublanguage.FULLY_BOUNDED,
            Sublanguage.NONRECURSIVE,
        )

    def test_instance_spawner_is_not(self, simulate_program):
        assert classify(simulate_program) is Sublanguage.FULL

    def test_fully_bounded_failure_is_decided(self):
        # an unsatisfiable fully bounded goal terminates with "no"
        from repro import parse_program

        prog = parse_program(
            "drain <- item(X) * del.item(X) * drain.\ndrain <- blocked."
        )
        engine = select_engine(prog)
        assert engine.decidable
        assert not engine.succeeds("drain", Database())
