"""Single-tape Turing machines and the compilation to two-stack machines.

The native simulator is the ground truth for experiment C1/C3: a Turing
machine run here must accept exactly when its two-stack compilation
accepts, and exactly when the TD encoding of that two-stack machine
commits under the full-TD interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["TuringMachine", "TMConfig", "tm_to_two_stack"]

BLANK = "_"
LEFT = "L"
RIGHT = "R"


@dataclass(frozen=True)
class TMConfig:
    """An instantaneous description: state, tape, head position."""

    state: str
    tape: Tuple[str, ...]
    head: int

    def render(self) -> str:
        cells = list(self.tape)
        cells.insert(self.head, "[%s]" % self.state)
        return "".join(cells)


@dataclass
class TuringMachine:
    """A deterministic (or nondeterministic) single-tape Turing machine.

    ``transitions`` maps ``(state, symbol)`` to a list of
    ``(new_state, written_symbol, direction)`` triples; a single entry
    means deterministic.  The blank symbol is ``"_"``.
    """

    states: FrozenSet[str]
    input_alphabet: FrozenSet[str]
    tape_alphabet: FrozenSet[str]
    transitions: Dict[Tuple[str, str], List[Tuple[str, str, str]]]
    start: str
    accepting: FrozenSet[str]

    def __post_init__(self):
        if BLANK not in self.tape_alphabet:
            raise ValueError("tape alphabet must contain the blank %r" % BLANK)
        for (q, a), outs in self.transitions.items():
            if q not in self.states:
                raise ValueError("transition from unknown state %r" % q)
            if a not in self.tape_alphabet:
                raise ValueError("transition on unknown symbol %r" % a)
            for q2, b, d in outs:
                if q2 not in self.states or b not in self.tape_alphabet:
                    raise ValueError("bad transition target (%r, %r)" % (q2, b))
                if d not in (LEFT, RIGHT):
                    raise ValueError("direction must be L or R, got %r" % d)

    # -- execution -------------------------------------------------------------

    def initial_config(self, word: Sequence[str]) -> TMConfig:
        tape = tuple(word) if word else (BLANK,)
        for a in tape:
            if a not in self.tape_alphabet:
                raise ValueError("input symbol %r not in tape alphabet" % a)
        return TMConfig(self.start, tape, 0)

    def step(self, config: TMConfig) -> List[TMConfig]:
        """All successor configurations (empty list = halted)."""
        tape = list(config.tape)
        symbol = tape[config.head]
        outs = self.transitions.get((config.state, symbol), [])
        result = []
        for q2, b, d in outs:
            new_tape = list(tape)
            new_tape[config.head] = b
            head = config.head + (1 if d == RIGHT else -1)
            if head < 0:
                new_tape.insert(0, BLANK)
                head = 0
            elif head >= len(new_tape):
                new_tape.append(BLANK)
            result.append(TMConfig(q2, tuple(new_tape), head))
        return result

    def accepts(self, word: Sequence[str], max_steps: int = 100_000) -> bool:
        """Breadth-first acceptance check with a step bound.

        Raises :class:`TimeoutError` when the bound is exhausted without
        a verdict -- the honest outcome for an RE-complete question.
        """
        frontier = [self.initial_config(word)]
        seen = set(frontier)
        steps = 0
        while frontier:
            next_frontier = []
            for config in frontier:
                if config.state in self.accepting:
                    return True
                for succ in self.step(config):
                    steps += 1
                    if steps > max_steps:
                        raise TimeoutError(
                            "Turing machine did not halt within %d steps"
                            % max_steps
                        )
                    if succ not in seen:
                        seen.add(succ)
                        next_frontier.append(succ)
            frontier = next_frontier
        return False

    def run_trace(
        self, word: Sequence[str], max_steps: int = 10_000
    ) -> List[TMConfig]:
        """The deterministic run (first applicable transition each step)."""
        config = self.initial_config(word)
        trace = [config]
        for _ in range(max_steps):
            if config.state in self.accepting:
                return trace
            succs = self.step(config)
            if not succs:
                return trace
            config = succs[0]
            trace.append(config)
        raise TimeoutError("no halt within %d steps" % max_steps)


# ---------------------------------------------------------------------------
# Compilation to two-stack machines
# ---------------------------------------------------------------------------


def tm_to_two_stack(tm: TuringMachine) -> "TwoStackMachine":
    """Compile a Turing machine to an equivalent two-stack machine.

    Standard simulation: stack 1 holds the tape left of the head (top =
    cell immediately left), stack 2 holds the head cell and everything to
    its right (top = head cell).  The bottom marker reads as a blank.

    Every two-stack transition inspects both tops, so each TM transition
    ``(q, a) -> (q', b, d)`` expands over all possible left tops ``x``.
    """
    from .twostack import BOTTOM, TwoStackMachine

    alphabet = sorted(tm.tape_alphabet)
    transitions: Dict[Tuple[str, str, str], List[Tuple[str, Tuple[str, ...], Tuple[str, ...]]]] = {}

    def add(q, x, a, q2, gamma1, gamma2):
        transitions.setdefault((q, x, a), []).append((q2, tuple(gamma1), tuple(gamma2)))

    for (q, a), outs in tm.transitions.items():
        for q2, b, d in outs:
            for x in alphabet + [BOTTOM]:
                # Reading: stack1 top x is popped (unless BOTTOM), stack2
                # top is the head symbol.  a == BLANK also matches an
                # empty right stack (reading beyond the right end).
                right_tops = [a] + ([BOTTOM] if a == BLANK else [])
                for a2 in right_tops:
                    if d == RIGHT:
                        # b moves onto the left stack; head becomes the
                        # next right cell.  Restore x beneath b.
                        gamma1 = (b,) if x == BOTTOM else (b, x)
                        gamma2 = ()
                    else:
                        # Head moves onto x (or a blank if left empty);
                        # b sits to its right on stack 2.
                        head_sym = BLANK if x == BOTTOM else x
                        gamma1 = ()
                        gamma2 = (head_sym, b)
                    add(q, x, a2, q2, gamma1, gamma2)

    return TwoStackMachine(
        states=frozenset(tm.states),
        alphabet=frozenset(tm.tape_alphabet),
        transitions=transitions,
        start=tm.start,
        accepting=frozenset(tm.accepting),
    )
