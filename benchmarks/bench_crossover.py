"""Crossover studies: where one strategy stops beating another.

DESIGN.md's reproduction bar asks for crossover locations, not absolute
numbers.  Two measurable crossovers in this system:

* **magic sets vs full evaluation** as query selectivity falls: a point
  query near the end of a chain touches a short suffix (magic wins big);
  a query from the chain's start is the whole closure (magic's overhead
  makes it a wash or worse).
* **goal-directed tabling vs bottom-up materialization** for single
  reachability questions at growing distances.
"""

import pytest

from repro import SequentialEngine, parse_goal
from repro.complexity import (
    chain_edges,
    measure,
    print_series,
    transitive_closure_program,
)
from repro.core.terms import Atom, Constant, Variable
from repro.datalog import evaluate, from_td, magic_query, magic_transform, query

Y = Variable("Y")


def test_magic_selectivity_crossover(benchmark):
    """Sweep the query source from the chain's end (selective) to its
    start (everything relevant): magic's derived-fact advantage shrinks
    monotonically toward parity."""
    datalog = from_td(transitive_closure_program())
    n = 60
    db = chain_edges(n)
    full_facts = len(evaluate(datalog, db)) - len(db)
    rows = []
    fractions = []
    for src in (n - 5, 3 * n // 4, n // 2, n // 4, 0):
        goal = Atom("path", (Constant(src), Y))
        magic_prog, seeds, _ = magic_transform(datalog, goal)
        derived = len(evaluate(magic_prog, db.insert_all(seeds))) - len(db) - 1
        _, magic_s = measure(lambda: magic_query(datalog, db, goal))
        _, plain_s = measure(lambda: query(datalog, db, goal))
        fraction = derived / full_facts
        fractions.append(fraction)
        rows.append([src, derived, full_facts, "%.2f" % fraction, magic_s, plain_s])
    print_series(
        "crossover: magic-set advantage vs query selectivity (chain %d)" % n,
        ["source", "magic facts", "full facts", "fraction", "magic s", "plain s"],
        rows,
    )
    # advantage decays monotonically as the query gets less selective
    assert fractions == sorted(fractions)
    assert fractions[0] < 0.25
    assert fractions[-1] > 0.8

    goal = Atom("path", (Constant(n - 5), Y))
    benchmark.pedantic(lambda: magic_query(datalog, db, goal), rounds=5, iterations=1)


def test_tabling_distance_crossover(benchmark):
    """Goal-directed tabling for one reachability question: keys touched
    grow with the distance between source and target, approaching the
    bottom-up engine's whole-relation work at maximal distance."""
    program = transitive_closure_program()
    datalog = from_td(program)
    n = 24
    db = chain_edges(n)
    _, bottomup_s = measure(lambda: evaluate(datalog, db))
    rows = []
    key_counts = []
    for distance in (2, 8, 16, 24):
        engine = SequentialEngine(program)
        goal = parse_goal("path(%d, %d)" % (n - distance, n))
        ok, seconds = measure(lambda: engine.succeeds(goal, db))
        assert ok
        keys, _answers = engine.table_size
        key_counts.append(keys)
        rows.append([distance, keys, seconds, bottomup_s])
    print_series(
        "crossover: tabled point query vs distance (chain %d)" % n,
        ["distance", "table keys", "tabled s", "bottom-up s (whole closure)"],
        rows,
    )
    assert key_counts == sorted(key_counts)
    assert key_counts[0] < key_counts[-1]

    engine = SequentialEngine(program)
    benchmark.pedantic(
        lambda: engine.succeeds(parse_goal("path(16, 24)"), db),
        rounds=5,
        iterations=1,
    )
