"""Tests for the tabled sequential-TD decision procedure."""

import pytest

from repro import (
    Database,
    Interpreter,
    SequentialEngine,
    UnsupportedProgramError,
    parse_database,
    parse_goal,
    parse_program,
)


def engine(text):
    return SequentialEngine(parse_program(text))


class TestBasics:
    def test_query_and_update(self):
        e = engine("t <- p(X) * del.p(X) * ins.q(X).")
        (sol,) = e.solve(parse_goal("t"), parse_database("p(a)."))
        assert sol.database == parse_database("q(a).")

    def test_failure(self):
        e = engine("t <- p(zz).")
        assert not e.succeeds(parse_goal("t"), parse_database("p(a)."))

    def test_rejects_concurrent_program(self):
        with pytest.raises(UnsupportedProgramError):
            engine("t <- a | b.")

    def test_rejects_concurrent_goal(self):
        e = engine("t <- ins.p(a).")
        with pytest.raises(UnsupportedProgramError):
            list(e.solve(parse_goal("t | t"), Database()))

    def test_iso_is_identity_sequentially(self):
        e = engine("t <- iso(ins.p(a) * del.p(a)).")
        (sol,) = e.solve(parse_goal("t"), Database())
        assert sol.database == Database()


class TestRecursionTermination:
    def test_query_only_recursion_transitive_closure(self, tc_program, chain_db):
        e = SequentialEngine(tc_program)
        sols = list(e.solve(parse_goal("path(a, X)"), chain_db))
        values = sorted(str(t) for s in sols for t in s.bindings.values())
        assert values == ["b", "c", "d"]

    def test_cyclic_graph_terminates(self, tc_program):
        e = SequentialEngine(tc_program)
        db = parse_database("e(a, b). e(b, a).")
        assert e.succeeds(parse_goal("path(a, a)"), db)

    def test_recursion_with_updates_terminates(self):
        # tail recursion through deletion -- finite state space, tabled
        e = engine(
            """
            drain <- item(X) * del.item(X) * drain.
            drain <- not item(_).
            """
        )
        (sol,) = e.solve(parse_goal("drain"), parse_database("item(a). item(b)."))
        assert sol.database == Database()

    def test_nontail_recursion_decides(self):
        # Non-tail recursion (push then pop around the recursive call)
        # diverges top-down but the table closes the loop.
        e = engine(
            """
            bounce <- ins.down * bounce * ins.up.
            bounce <- stop.
            """
        )
        finals = e.final_databases(parse_goal("bounce"), parse_database("stop."))
        # Base case commits unchanged; any positive recursion depth
        # leaves the same (idempotent) marks.  Crucially: finite answer.
        assert finals == {
            parse_database("stop."),
            parse_database("stop. down. up."),
        }

    def test_unsatisfiable_recursion_fails_finitely(self):
        e = engine("loop <- loop.")
        assert not e.succeeds(parse_goal("loop"), Database())

    def test_mutual_recursion(self):
        e = engine(
            """
            even(X) <- zero(X).
            even(X) <- pred(X, Y) * odd(Y).
            odd(X) <- pred(X, Y) * even(Y).
            """
        )
        db = parse_database("zero(n0). pred(n1, n0). pred(n2, n1). pred(n3, n2).")
        assert e.succeeds(parse_goal("even(n2)"), db)
        assert not e.succeeds(parse_goal("even(n3)"), db)
        assert e.succeeds(parse_goal("odd(n3)"), db)


class TestAgreementWithInterpreter:
    PROGRAMS = [
        ("t <- p(X) * ins.q(X).", "t", "p(a). p(b)."),
        ("t <- p(X) * del.p(X) * t.\nt <- not p(_).", "t", "p(a). p(b)."),
        ("t(X) <- s(X) * flag.\nt(X) <- s(X) * not flag * ins.flag.", "t(Y)", "s(v)."),
    ]

    @pytest.mark.parametrize("prog_text,goal_text,db_text", PROGRAMS)
    def test_same_final_databases(self, prog_text, goal_text, db_text):
        prog = parse_program(prog_text)
        goal = parse_goal(goal_text)
        db = parse_database(db_text)
        seq_finals = SequentialEngine(prog).final_databases(goal, db)
        bfs_finals = Interpreter(prog).final_databases(goal, db)
        assert seq_finals == bfs_finals


class TestTableBehaviour:
    def test_table_persists_across_queries(self, tc_program, chain_db):
        e = SequentialEngine(tc_program)
        e.succeeds(parse_goal("path(a, d)"), chain_db)
        keys1, answers1 = e.table_size
        e.succeeds(parse_goal("path(a, d)"), chain_db)
        keys2, answers2 = e.table_size
        assert (keys2, answers2) == (keys1, answers1)

    def test_answers_deduplicated(self):
        e = engine(
            """
            dup <- p(X).
            dup <- p(X).
            """
        )
        sols = list(e.solve(parse_goal("dup"), parse_database("p(a).")))
        assert len(sols) == 1
