"""Failure diagnosis: *why* can a goal not commit?

``engine.succeeds(...) == False`` is the right semantics but a poor
error message.  :func:`diagnose` explores the configuration space and
summarizes what every stuck branch was waiting for -- the missing fact,
the unsatisfied guard -- ranked by how often it blocks.  For workflow
programs this typically reads like "waiting for: available(A) with
qualified(A, sequencer)" -- i.e. a staffing hole -- turning a silent
failure into an actionable report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..core.database import Database
from ..core.formulas import (
    Builtin,
    Conc,
    Formula,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
)
from ..core.parser import parse_goal
from ..core.program import Program
from .statespace import StateGraph, explore

__all__ = ["Diagnosis", "diagnose"]


@dataclass
class Diagnosis:
    """Summary of the blocking frontiers across all stuck states."""

    committed: bool
    states: int
    stuck_states: int
    blockers: Tuple[Tuple[str, int], ...]  # (description, occurrences)
    example_trace: Optional[List[str]]

    def summary(self) -> str:
        if self.committed:
            return "the goal can commit (explored %d states)" % self.states
        lines = [
            "the goal cannot commit (%d states, %d stuck)"
            % (self.states, self.stuck_states)
        ]
        for description, count in self.blockers:
            lines.append("  blocked %3dx on: %s" % (count, description))
        if self.example_trace is not None:
            lines.append("  one stuck run: " + "; ".join(self.example_trace))
        return "\n".join(lines)


def _frontier_blockers(proc: Formula, db: Database) -> List[str]:
    """Human-readable reasons the frontier of *proc* cannot fire."""
    out: List[str] = []
    if isinstance(proc, Truth):
        return out
    if isinstance(proc, Test):
        if not db.holds(proc.atom):
            out.append("waiting for fact %s" % (proc.atom,))
    elif isinstance(proc, Neg):
        if db.holds(proc.atom):
            out.append("waiting for absence of %s" % (proc.atom,))
    elif isinstance(proc, Builtin):
        try:
            if proc.evaluate({}) is None:
                out.append("guard fails: %s" % (proc,))
        except ValueError:
            out.append("unbound builtin: %s" % (proc,))
    elif isinstance(proc, Seq):
        out.extend(_frontier_blockers(proc.parts[0], db))
    elif isinstance(proc, Conc):
        for part in proc.parts:
            out.extend(_frontier_blockers(part, db))
    elif isinstance(proc, Isol):
        inner = _frontier_blockers(proc.body, db)
        out.extend("inside iso: %s" % reason for reason in inner)
    return out


def _iso_frontiers(proc: Formula) -> List[Isol]:
    """Isolation formulas sitting at the frontier of *proc*."""
    if isinstance(proc, Isol):
        return [proc]
    if isinstance(proc, Seq):
        return _iso_frontiers(proc.parts[0])
    if isinstance(proc, Conc):
        out: List[Isol] = []
        for part in proc.parts:
            out.extend(_iso_frontiers(part))
        return out
    return []


def _iso_blockers(
    program: Program, proc: Formula, db: Database, max_states: int
) -> List[str]:
    """Blocking reasons inside frontier iso bodies, by nested exploration
    of each body (the body is its own bounded sub-problem)."""
    reasons: List[str] = []
    for isol in _iso_frontiers(proc):
        try:
            sub = diagnose(program, isol.body, db, max_states=max_states // 10 or 100)
        except Exception:  # pragma: no cover - budget blowups degrade softly
            reasons.append("iso body could not be analyzed")
            continue
        if sub.committed:
            continue  # not this iso (should not happen for a stuck node)
        if sub.blockers:
            reasons.extend(
                "inside iso: %s" % description for description, _n in sub.blockers
            )
        else:
            reasons.append("iso body has no successful execution")
    return reasons


def diagnose(
    program: Program,
    goal: Union[str, Formula],
    db: Database,
    max_states: int = 100_000,
    top: int = 5,
) -> Diagnosis:
    """Explain why *goal* commits or fails from *db*.

    Explores the configuration graph (decidable for bounded programs;
    budget-guarded otherwise) and aggregates blocking reasons over the
    stuck states.
    """
    if isinstance(goal, str):
        goal = parse_goal(goal)
    graph = explore(program, goal, db, max_states=max_states)
    committed = bool(graph.final_ids)
    stuck = [
        node
        for node in graph.nodes
        if not node.final and not graph.edges.get(node.node_id)
    ]
    reasons: Counter = Counter()
    for node in stuck:
        node_reasons = _frontier_blockers(node.process, node.database)
        if not node_reasons:
            # The blocker hides deeper than the frontier -- typically an
            # iso(...) whose body fails mid-way.  Recurse into every iso
            # frontier with a nested exploration of its body.
            node_reasons = _iso_blockers(
                program, node.process, node.database, max_states
            )
        for reason in node_reasons:
            reasons[reason] += 1
    example = graph.path_to(stuck[0].node_id) if (stuck and not committed) else None
    return Diagnosis(
        committed=committed,
        states=len(graph),
        stuck_states=len(stuck),
        blockers=tuple(reasons.most_common(top)),
        example_trace=example,
    )
