"""Tabled big-step evaluator for *sequential* Transaction Datalog.

Sequential TD is the sublanguage without concurrent composition.  The
paper (Theorem 4.5) shows it is data complete for EXPTIME -- in sharp
contrast to full TD's RE-completeness -- and in particular *decidable*.
This module is the decision procedure.

The semantic insight it implements: the meaning of a sequential TD
predicate is a binary relation on database states.  For a fixed program
and initial state, the reachable states are subsets of a finite Herbrand
base (TD is safe: no new constants are invented), so the relation

    (call atom, input state)  -->  { (answer bindings, output state) }

has a finite table, computable as a least fixpoint.  We compute it by
*tabling* with a dependency-driven worklist: evaluation registers every
call it encounters as a table key and records which keys consulted it;
when a key's answer set grows, only its recorded dependents are
re-evaluated.  Termination is guaranteed by the finiteness of keys and
answers; completeness by the monotone least-fixpoint argument, lifted
from Datalog to state pairs -- this is exactly the sense in which the
paper says Datalog optimization techniques like tabling apply to TD.

Recursion depth is *not* bounded here, which matters: sequential TD can
still use recursion-as-storage (a counter encoded in recursion depth),
and top-down evaluation would diverge on it.  The table is what restores
termination -- recursion that revisits a (call, state) pair contributes
nothing new and closes the loop.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..obs import hotspots as _hot
from ..obs.context import Instrumentation, NOOP, active
from ..obs.provenance import active_recorder, db_delta, render_bindings
from .database import Database
from .errors import SafetyError, UnsupportedProgramError
from .formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
    formula_variables,
    walk_formulas,
)
from .interpreter import Solution, _resolve_store
from .parser import as_goal
from .program import Program
from .terms import Atom, Constant, Term, Variable
from .unify import Substitution, apply_atom, unify_atoms, walk

__all__ = ["SequentialEngine"]

#: A table key: the canonicalized call atom plus the input state.
_Key = Tuple[Atom, Database]
#: A table answer: constants for the canonical variables, plus the output
#: state.
_Answer = Tuple[Tuple[Constant, ...], Database]


def _canonical_call(atom: Atom) -> Tuple[Atom, List[Variable]]:
    """Rename the atom's variables to V0, V1, ... in order of occurrence.

    Returns the canonical atom and the original variables in index order
    so answers can be mapped back onto the caller's substitution.
    """
    mapping: Dict[Variable, Variable] = {}
    originals: List[Variable] = []
    args: List[Term] = []
    for t in atom.args:
        if isinstance(t, Variable):
            if t not in mapping:
                mapping[t] = Variable("V%d" % len(mapping))
                originals.append(t)
            args.append(mapping[t])
        else:
            args.append(t)
    return Atom(atom.pred, tuple(args)), originals


class SequentialEngine:
    """Decision procedure for sequential TD via tabled evaluation.

    Raises :class:`UnsupportedProgramError` if the program or goal uses
    concurrent composition.  ``iso(a)`` is accepted and equals ``a``:
    with no siblings to interleave, isolation is a no-op.
    """

    def __init__(
        self,
        program: Program,
        max_rounds: int = 10_000_000,
        join_order: bool = True,
        provenance=None,
        attribution=None,
        *,
        store=None,
    ):
        self.program = program
        self.max_rounds = max_rounds
        #: Optional storage backend (see :class:`repro.store.Store` and
        #: docs/STORAGE.md), duck-typed; supplies the initial state when
        #: ``solve`` is called without a database.  Explicit beats the
        #: ambient provider, as for ``provenance``.
        self.store = store
        #: Derivation recorder (see :mod:`repro.obs.provenance`); falls
        #: back to the ambient recorder when unset, costs nothing when
        #: neither is attached.
        self.provenance = provenance
        #: Cost attributor (see :mod:`repro.obs.hotspots`); same
        #: explicit-beats-ambient resolution as ``provenance``.
        self.attribution = attribution
        #: Reorder maximal runs of consecutive tuple tests inside each
        #: sequence by bound-argument selectivity before evaluating.
        #: Sound because tests read but never write: a contiguous test
        #: run is a conjunctive query, and any join order enumerates the
        #: same substitutions.  Updates, negation, and builtins are
        #: never moved.  Disable to pin the textual order.
        self.join_order = join_order
        self._check_sequential()
        # Persistent across queries: the table only ever grows, and its
        # entries are valid independently of which goal asked for them.
        self._table: Dict[_Key, Set[_Answer]] = {}
        # Dependency graph for the worklist driver: callee -> callers.
        self._dependents: Dict[_Key, Set[_Key]] = {}
        # Keys whose rules have been evaluated at least once (a key can
        # be computed and still have an empty answer set).
        self._computed: Set[_Key] = set()
        # Per-evaluation scratch: keys consulted / newly registered.
        self._consulted: Set[_Key] = set()
        self._new_keys: List[_Key] = []
        # Instrumentation for the current solve (NOOP when inactive).
        self._obs: Instrumentation = NOOP
        # Provenance scratch for the current solve.
        self._prov_rec = None
        self._prov_root: Optional[int] = None
        self._prov_key_nodes: Dict[_Key, Optional[int]] = {}
        # Cost attributor scratch for the current solve (None when off).
        self._attr_cur = None

    def _check_sequential(self) -> None:
        for rule in self.program.rules:
            for sub in walk_formulas(rule.body):
                if isinstance(sub, Conc):
                    raise UnsupportedProgramError(
                        "rule for %s uses concurrent composition; "
                        "the sequential engine cannot evaluate it"
                        % (rule.head,)
                    )

    # -- public API -------------------------------------------------------------

    def solve(
        self, goal: "str | Formula", db: Optional[Database] = None
    ) -> Iterator[Solution]:
        """Enumerate all (bindings, final state) pairs for *goal*.

        *goal* may be a formula or concrete syntax.  Complete and
        terminating: this is a decision procedure.  With ``db=None``
        the initial state comes from the attached store (explicit
        ``store=`` or the ambient provider); the evaluation is a
        read-only query on it.
        """
        _, db = _resolve_store(self.store, db)
        goal = self.program.resolve_goal(as_goal(goal))
        for sub in walk_formulas(goal):
            if isinstance(sub, Conc):
                raise UnsupportedProgramError(
                    "goal uses concurrent composition; use the full interpreter"
                )
        goal_vars = _ordered_vars(goal)
        obs = self._obs = active()
        prov = self._prov_rec = (
            self.provenance if self.provenance is not None else active_recorder()
        )
        attr = self._attr_cur = (
            self.attribution
            if self.attribution is not None
            else _hot.active_attributor()
        )
        self._prov_root = (
            prov.record("config", str(goal), disposition="root")
            if prov is not None
            else None
        )
        # Key nodes are per-recorder; the table persists across solves
        # but node ids do not.
        self._prov_key_nodes = {}

        def _search():
            with obs.span("solve", engine="seqeval", goal=str(goal)):
                with obs.span("table-fixpoint"):
                    if attr is not None:
                        with attr.frame(phase="fixpoint"):
                            self._run_fixpoint(goal, db)
                    else:
                        self._run_fixpoint(goal, db)
                if obs.enabled:
                    keys, answers = self.table_size
                    obs.metrics.set_gauge("table.keys", keys)
                    obs.metrics.set_gauge("table.answers", answers)
                emitted = set()
                for theta, final_db in self._eval(goal, db, {}):
                    bindings = {v: walk(v, theta) for v in goal_vars}
                    key = (tuple(sorted(bindings.items())), final_db)
                    if key not in emitted:
                        emitted.add(key)
                        if obs.enabled:
                            obs.metrics.inc("search.solutions")
                        if prov is not None:
                            ins, dels = db_delta(db, final_db)
                            # Label the answer with the bindings applied, so
                            # the proof reads `path(a, b)` rather than the
                            # open goal `path(a, X)`.
                            label = (
                                str(apply_atom(goal.atom, bindings))
                                if isinstance(goal, Call)
                                else str(goal)
                            )
                            prov.record(
                                "answer",
                                label,
                                parent=self._prov_root,
                                disposition="solution",
                                bindings=render_bindings(bindings),
                                inserted=ins,
                                deleted=dels,
                            )
                        yield Solution(bindings, final_db)

        yield from _hot.meter_engine(attr, _search(), "seqeval")

    def succeeds(self, goal: Formula, db: Database) -> bool:
        for _ in self.solve(goal, db):
            return True
        return False

    def final_databases(self, goal: Formula, db: Database) -> Set[Database]:
        return {sol.database for sol in self.solve(goal, db)}

    @property
    def table_size(self) -> Tuple[int, int]:
        """(number of keys, number of answers) -- exposed for the
        EXPTIME scaling benchmark."""
        return len(self._table), sum(len(v) for v in self._table.values())

    # -- fixpoint driver ----------------------------------------------------------
    #
    # Dependency-driven (semi-naive) tabling: evaluating a key records
    # which callee keys it consulted; when a key's answer set grows, only
    # its recorded dependents are re-evaluated.  Far cheaper than naive
    # rounds -- work is proportional to actual answer propagation, the
    # classical tabling argument.

    def _run_fixpoint(self, goal: Formula, db: Database) -> None:
        worklist: List[_Key] = []
        in_worklist: Set[_Key] = set()

        def enqueue(key: _Key) -> None:
            if key not in in_worklist:
                in_worklist.add(key)
                worklist.append(key)

        def drain() -> None:
            steps = 0
            while worklist:
                steps += 1
                if steps > self.max_rounds:  # pragma: no cover - bound
                    raise SearchExhausted_impossible()
                key = worklist.pop()
                in_worklist.discard(key)
                self._computed.add(key)
                before = len(self._table.get(key, ()))
                self._consulted = set()
                self._new_keys = []
                self._recompute(key)
                for callee in self._consulted:
                    self._dependents.setdefault(callee, set()).add(key)
                for fresh in self._new_keys:
                    enqueue(fresh)
                if len(self._table.get(key, ())) != before:
                    for dependent in self._dependents.get(key, ()):
                        enqueue(dependent)

        # Alternate goal-seeding passes with worklist drains: a drain can
        # grow answers that let the *goal* reach call patterns it could
        # not instantiate before, so re-seed until the goal discovers
        # nothing new.
        for _ in range(self.max_rounds):  # pragma: no branch - returns inside
            self._consulted = set()
            self._new_keys = []
            for _ in self._eval(goal, db, {}):
                pass
            for key in self._new_keys:
                enqueue(key)
            for key in self._consulted:
                if key not in self._computed:
                    enqueue(key)
            if not worklist:
                self._consulted = set()
                self._new_keys = []
                return
            drain()
        raise SearchExhausted_impossible()  # pragma: no cover - loop bound

    def _recompute(self, key: _Key) -> None:
        if self._obs.enabled:
            self._obs.metrics.inc("table.recomputes")
        canon_atom, db_in = key
        answers = self._table[key]
        prov = self._prov_rec
        call_node: Optional[int] = None
        if prov is not None:
            if key not in self._prov_key_nodes:
                self._prov_key_nodes[key] = prov.record(
                    "call", str(canon_atom), parent=self._prov_root
                )
            call_node = self._prov_key_nodes[key]
        canon_vars = [t for t in canon_atom.args if isinstance(t, Variable)]
        # Deduplicate canonical variables preserving order.
        seen: Dict[Variable, None] = {}
        for v in canon_vars:
            seen.setdefault(v, None)
        canon_vars = list(seen)
        attr = self._attr_cur
        # Indexed dispatch: head matching for this canonical call shape
        # is memoized on the program (see Program.match_rules).
        for rule, theta in self.program.match_rules(canon_atom):
            # One attribution frame per rule-body evaluation: _recompute
            # runs eagerly (never suspends), so push/pop bracket exactly.
            rule_token = (
                attr.push(rule=_hot.rule_label(rule.head), predicate=canon_atom.pred)
                if attr is not None
                else None
            )
            try:
                for theta_out, db_out in self._eval(rule.body, db_in, theta):
                    values = []
                    ground = True
                    for v in canon_vars:
                        t = walk(v, theta_out)
                        if isinstance(t, Variable):
                            ground = False
                            break
                        values.append(t)
                    if not ground:
                        raise SafetyError(
                            "rule for %s does not bind all head variables"
                            % (canon_atom,)
                        )
                    entry = (tuple(values), db_out)
                    if entry in answers:
                        continue
                    answers.add(entry)
                    if attr is not None:
                        attr.charge("steps.expansions", 1)
                        ins_a, dels_a = db_delta(db_in, db_out)
                        delta = len(ins_a) + len(dels_a)
                        if delta:
                            attr.charge("db.delta", delta)
                    if prov is not None:
                        ins, dels = db_delta(db_in, db_out)
                        prov.record(
                            "answer",
                            str(
                                apply_atom(
                                    canon_atom, dict(zip(canon_vars, values))
                                )
                            ),
                            parent=call_node,
                            bindings=render_bindings(
                                dict(zip(canon_vars, values))
                            ),
                            inserted=ins,
                            deleted=dels,
                            witness={"rule": str(rule.head)},
                        )
            finally:
                if rule_token is not None:
                    attr.pop(rule_token)

    # -- big-step evaluation ---------------------------------------------------------

    def _eval(
        self, f: Formula, db: Database, theta: Substitution
    ) -> Iterator[Tuple[Substitution, Database]]:
        if isinstance(f, Truth):
            yield theta, db
            return
        if isinstance(f, Test):
            yield from ((t, db) for t in db.match(f.atom, theta))
            return
        if isinstance(f, Neg):
            if not db.holds(f.atom, theta):
                yield theta, db
            return
        if isinstance(f, Ins):
            a = apply_atom(f.atom, theta)
            if not a.is_ground():
                raise SafetyError("ins with unbound variables: %s" % (a,))
            yield theta, db.insert(a)
            return
        if isinstance(f, Del):
            a = apply_atom(f.atom, theta)
            if not a.is_ground():
                raise SafetyError("del with unbound variables: %s" % (a,))
            yield theta, db.delete(a)
            return
        if isinstance(f, Builtin):
            try:
                out = f.evaluate(theta)
            except ValueError as exc:
                raise SafetyError(str(exc)) from exc
            if out is not None:
                yield out, db
            return
        if isinstance(f, Seq):
            parts = f.parts
            if self.join_order:
                parts = self._plan_seq(parts, db, theta)
            yield from self._eval_seq(parts, 0, db, theta)
            return
        if isinstance(f, Isol):
            # Sequential execution has no siblings; isolation is identity.
            yield from self._eval(f.body, db, theta)
            return
        if isinstance(f, Call):
            yield from self._eval_call(f.atom, db, theta)
            return
        if isinstance(f, Conc):
            raise UnsupportedProgramError(
                "concurrent composition reached the sequential evaluator"
            )
        raise TypeError("cannot evaluate formula %r" % type(f).__name__)

    def _plan_seq(
        self, parts: Tuple[Formula, ...], db: Database, theta: Substitution
    ) -> Tuple[Formula, ...]:
        """Join-order each maximal run of consecutive ``Test`` parts.

        Only tests are moved, and only within their contiguous run: a
        test neither updates the database nor can fail for safety
        reasons, so the run is a conjunctive query whose answer set is
        order-independent.  Negation stays put (its meaning depends on
        which variables the *preceding* conjuncts bound) and so do
        builtins (which raise :class:`SafetyError` on unbound input).
        Selectivity uses the database at sequence entry -- a heuristic
        only; correctness never depends on the plan.
        """
        out: List[Formula] = []
        changed = False
        i, n = 0, len(parts)
        while i < n:
            j = i
            while j < n and isinstance(parts[j], Test):
                j += 1
            if j - i > 1:
                run = list(parts[i:j])
                ordered = self._order_tests(run, db, theta)
                if ordered != run:
                    changed = True
                out.extend(ordered)
                i = j
            elif j > i:
                out.append(parts[i])
                i = j
            else:
                out.append(parts[i])
                i += 1
        if not changed:
            return parts
        if self._obs.enabled:
            self._obs.metrics.inc("join.reorders")
        return tuple(out)

    def _order_tests(
        self, run: List[Formula], db: Database, theta: Substitution
    ) -> List[Formula]:
        """Greedy selectivity order for a contiguous test run: fewest
        still-unbound variable arguments first (bound arguments probe the
        per-position index), ties by relation size, then textual
        position."""
        bound: Set[Variable] = set()

        def unbound(test: Formula) -> int:
            count = 0
            for arg in test.atom.args:
                resolved = walk(arg, theta)
                if isinstance(resolved, Variable) and resolved not in bound:
                    count += 1
            return count

        remaining = list(enumerate(run))
        chosen: List[Formula] = []
        while remaining:
            pos, test = min(
                remaining,
                key=lambda item: (
                    unbound(item[1]),
                    len(db.facts(item[1].atom.pred)),
                    item[0],
                ),
            )
            remaining.remove((pos, test))
            chosen.append(test)
            for arg in test.atom.args:
                resolved = walk(arg, theta)
                if isinstance(resolved, Variable):
                    bound.add(resolved)
        return chosen

    def _eval_seq(
        self, parts: Tuple[Formula, ...], idx: int, db: Database, theta: Substitution
    ) -> Iterator[Tuple[Substitution, Database]]:
        if idx == len(parts):
            yield theta, db
            return
        for theta2, db2 in self._eval(parts[idx], db, theta):
            yield from self._eval_seq(parts, idx + 1, db2, theta2)

    def _eval_call(
        self, atom: Atom, db: Database, theta: Substitution
    ) -> Iterator[Tuple[Substitution, Database]]:
        instantiated = apply_atom(atom, theta)
        canon_atom, originals = _canonical_call(instantiated)
        key = (canon_atom, db)
        self._consulted.add(key)
        answers = self._table.get(key)
        obs = self._obs
        if answers is None:
            # Register the key; the worklist driver will compute it.
            if obs.enabled:
                obs.metrics.inc("table.misses")
            self._table[key] = set()
            self._new_keys.append(key)
            return
        if obs.enabled:
            obs.metrics.inc("table.hits")
        for values, db_out in sorted(answers, key=_answer_order):
            out = dict(theta)
            consistent = True
            for v, value in zip(originals, values):
                bound = walk(v, out)
                if isinstance(bound, Variable):
                    out[bound] = value
                elif bound != value:
                    consistent = False
                    break
            if consistent:
                yield out, db_out


def _answer_order(answer: _Answer):
    values, db = answer
    return (tuple(str(v) for v in values), tuple(str(f) for f in db))


def _ordered_vars(goal: Formula) -> List[Variable]:
    seen: Dict[Variable, None] = {}
    for v in formula_variables(goal):
        seen.setdefault(v, None)
    return list(seen)


class SearchExhausted_impossible(RuntimeError):
    """Internal guard: the fixpoint loop bound was reached.  The table is
    finite for safe programs, so hitting this indicates a safety bug."""
