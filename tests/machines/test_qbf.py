"""Tests for QBF evaluation and its sequential-TD encoding."""

import pytest

from repro import Sublanguage, classify, select_engine
from repro.machines.qbf import QBF, evaluate_qbf, qbf_to_td


def q(*prefix):
    return tuple(prefix)


class TestNativeEvaluator:
    def test_simple_exists(self):
        # exists x. (x)
        f = QBF((("exists", "x"),), ((("x", True),),))
        assert evaluate_qbf(f)

    def test_unsatisfiable(self):
        # exists x. (x) and (not x)
        f = QBF((("exists", "x"),), ((("x", True),), (("x", False),)))
        assert not evaluate_qbf(f)

    def test_forall_tautology(self):
        # forall x. (x or not x)
        f = QBF((("forall", "x"),), ((("x", True), ("x", False)),))
        assert evaluate_qbf(f)

    def test_forall_contingent(self):
        # forall x. (x) -- false
        f = QBF((("forall", "x"),), ((("x", True),),))
        assert not evaluate_qbf(f)

    def test_alternation(self):
        # forall x exists y. (x or y) and (not x or not y) -- y = not x
        f = QBF(
            (("forall", "x"), ("exists", "y")),
            ((("x", True), ("y", True)), (("x", False), ("y", False))),
        )
        assert evaluate_qbf(f)

    def test_alternation_false(self):
        # exists y forall x. (x or y) and (not x or not y) -- no single y
        f = QBF(
            (("exists", "y"), ("forall", "x")),
            ((("x", True), ("y", True)), (("x", False), ("y", False))),
        )
        assert not evaluate_qbf(f)

    def test_validation(self):
        with pytest.raises(ValueError):
            QBF((("exists", "x"),), ((("z", True),),))
        with pytest.raises(ValueError):
            QBF((("some", "x"),), ())
        with pytest.raises(ValueError):
            QBF((("exists", "x"), ("forall", "x")), ())


class TestTDEncoding:
    CASES = [
        QBF((("exists", "x"),), ((("x", True),),)),
        QBF((("exists", "x"),), ((("x", True),), (("x", False),))),
        QBF((("forall", "x"),), ((("x", True), ("x", False)),)),
        QBF((("forall", "x"),), ((("x", True),),)),
        QBF(
            (("forall", "x"), ("exists", "y")),
            ((("x", True), ("y", True)), (("x", False), ("y", False))),
        ),
        QBF(
            (("exists", "y"), ("forall", "x")),
            ((("x", True), ("y", True)), (("x", False), ("y", False))),
        ),
        QBF(
            (("forall", "x"), ("forall", "y"), ("exists", "z")),
            (
                (("x", True), ("y", True), ("z", True)),
                (("z", False), ("x", True), ("y", False)),
            ),
        ),
    ]

    @pytest.mark.parametrize(
        "qbf",
        CASES,
        ids=lambda f: "-".join("%s_%s" % (q[0], q[1]) for q in f.prefix),
    )
    def test_td_agrees_with_native(self, qbf):
        program, goal, db = qbf_to_td(qbf)
        engine = select_engine(program, goal)
        assert engine.succeeds(goal, db) == evaluate_qbf(qbf)

    def test_encoding_is_sequential(self):
        program, goal, _db = qbf_to_td(self.CASES[4])
        # non-tail recursion through the quantifier levels: sequential TD
        assert classify(program, goal) in (
            Sublanguage.SEQUENTIAL,
            Sublanguage.FULLY_BOUNDED,
            Sublanguage.NONRECURSIVE,
        )

    def test_matrix_is_data(self):
        f1 = QBF((("exists", "x"),), ((("x", True),),))
        f2 = QBF((("exists", "x"),), ((("x", False),),))
        p1, _g1, d1 = qbf_to_td(f1)
        p2, _g2, d2 = qbf_to_td(f2)
        assert str(p1) == str(p2)  # same rules, different database
        assert d1 != d2
