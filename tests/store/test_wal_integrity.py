"""Checksummed record framing and hostile-byte recovery.

PR 9's contract for the durable store: every ``wal``/``snapshot`` blob
carries a verified frame (magic, record version, payload length, CRC32),
recovery distinguishes a *torn tail* (incomplete final WAL record --
truncate and continue, counting ``store.wal_truncated``) from *damage*
(anything else -- raise a structured :class:`StoreCorrupt`, never a raw
pickle traceback), and ``readonly=True`` opens degraded instead of
raising so damaged stores stay inspectable.
"""

import pickle
import sqlite3

import pytest

from repro import SqliteStore, StoreCorrupt, parse_atom, parse_database
from repro.obs import Instrumentation, instrumented
from repro.store import open_store
from repro.store.sqlite import (
    RECORD_VERSION,
    SCHEMA_VERSION,
    TornRecord,
    content_digest,
    decode_record,
    frame_record,
)


def build_store(path, n=6, checkpoint=False):
    with SqliteStore(path) as store:
        for i in range(n):
            store.insert(parse_atom("p(%d)" % i))
        if checkpoint:
            store.checkpoint()


def wal_rows(path):
    conn = sqlite3.connect(path)
    try:
        return list(conn.execute("SELECT seq, fact FROM wal ORDER BY seq"))
    finally:
        conn.close()


def rewrite_wal(path, seq, blob):
    conn = sqlite3.connect(path, isolation_level=None)
    try:
        conn.execute("UPDATE wal SET fact=? WHERE seq=?", (blob, seq))
    finally:
        conn.close()


class TestFrame:
    def test_round_trip(self):
        fact = parse_atom("acct(alice, 100)")
        blob = frame_record(fact)
        assert decode_record(blob, path="x", table="wal", rowid=1) == fact

    def test_header_is_twelve_bytes_plus_pickle(self):
        fact = parse_atom("p(1)")
        blob = frame_record(fact)
        assert len(blob) == 12 + len(pickle.dumps(fact, protocol=4))

    def test_bad_magic(self):
        blob = b"\x00\x00" + frame_record(parse_atom("p(1)"))[2:]
        with pytest.raises(StoreCorrupt, match="magic"):
            decode_record(blob, path="x", table="wal", rowid=1)

    def test_bad_record_version(self):
        blob = bytearray(frame_record(parse_atom("p(1)")))
        blob[2] = RECORD_VERSION + 1
        with pytest.raises(StoreCorrupt, match="record version"):
            decode_record(bytes(blob), path="x", table="wal", rowid=1)

    def test_payload_flip_is_crc_mismatch(self):
        blob = bytearray(frame_record(parse_atom("p(1)")))
        blob[-1] ^= 0xFF
        with pytest.raises(StoreCorrupt, match="CRC32"):
            decode_record(bytes(blob), path="x", table="wal", rowid=1)

    def test_short_payload_is_torn_not_corrupt(self):
        blob = frame_record(parse_atom("p(1)"))
        with pytest.raises(TornRecord):
            decode_record(blob[:-3], path="x", table="wal", rowid=1)

    def test_short_header_is_torn(self):
        with pytest.raises(TornRecord):
            decode_record(b"\x10\x7d\x01", path="x", table="wal", rowid=1)

    def test_trailing_garbage_is_corrupt(self):
        blob = frame_record(parse_atom("p(1)")) + b"xx"
        with pytest.raises(StoreCorrupt, match="trailing garbage"):
            decode_record(blob, path="x", table="wal", rowid=1)

    def test_guarded_unpickle_never_leaks_a_traceback(self):
        # A frame whose checksum is *valid* but whose payload is not a
        # pickled atom: the CRC passes, the decode must still be
        # structured.
        import struct
        import zlib

        payload = b"not a pickle at all"
        blob = struct.Struct("<HBxII").pack(
            0x7D10, RECORD_VERSION, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(StoreCorrupt, match="does not unpickle"):
            decode_record(blob, path="x", table="wal", rowid=7)

    def test_valid_pickle_of_wrong_type_is_corrupt(self):
        import struct
        import zlib

        payload = pickle.dumps([1, 2, 3], protocol=4)
        blob = struct.Struct("<HBxII").pack(
            0x7D10, RECORD_VERSION, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(StoreCorrupt, match="expected a ground atom"):
            decode_record(blob, path="x", table="wal", rowid=7)

    def test_corrupt_error_carries_location(self):
        blob = bytearray(frame_record(parse_atom("p(1)")))
        blob[-1] ^= 1
        with pytest.raises(StoreCorrupt) as err:
            decode_record(bytes(blob), path="s.tdlog", table="wal", rowid=42)
        assert err.value.path == "s.tdlog"
        assert err.value.table == "wal"
        assert err.value.rowid == 42
        assert "wal row 42" in str(err.value)


class TestContentDigest:
    def test_order_independent(self):
        a, b = parse_atom("p(1)"), parse_atom("q(2)")
        assert content_digest([a, b]) == content_digest([b, a])

    def test_sensitive_to_content(self):
        assert content_digest([parse_atom("p(1)")]) != content_digest(
            [parse_atom("p(2)")]
        )

    def test_fits_sqlite_integer(self):
        digest = content_digest(parse_database("p(1). q(2). r(3)."))
        assert 0 <= digest < 2 ** 63

    def test_stable_across_processes(self):
        # hash() randomization must not leak into the digest: recompute
        # in a subprocess with a different PYTHONHASHSEED.
        import os
        import subprocess
        import sys

        here = content_digest(parse_database("p(1). q(foo)."))
        env = dict(os.environ, PYTHONHASHSEED="12345",
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro import parse_database;"
             "from repro.store.sqlite import content_digest;"
             "print(content_digest(parse_database('p(1). q(foo).')))"],
            env=env, capture_output=True, text=True, check=True,
        )
        assert int(out.stdout.strip()) == here


class TestTornTail:
    def test_torn_final_record_is_truncated(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=5)
        rows = wal_rows(path)
        seq, blob = rows[-1]
        rewrite_wal(path, seq, bytes(blob[:-4]))
        with SqliteStore(path) as recovered:
            assert set(recovered) == {parse_atom("p(%d)" % i) for i in range(4)}

    def test_truncation_counts_and_heals_the_file(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=3)
        seq, blob = wal_rows(path)[-1]
        rewrite_wal(path, seq, bytes(blob[:14]))
        inst = Instrumentation.create()
        with instrumented(inst):
            SqliteStore(path).close()
        assert inst.metrics.counters.get("store.wal_truncated") == 1
        # The torn row was deleted: a second open sees a clean log.
        inst2 = Instrumentation.create()
        with instrumented(inst2):
            SqliteStore(path).close()
        assert "store.wal_truncated" not in inst2.metrics.counters

    def test_torn_mid_log_record_is_damage(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=5)
        rows = wal_rows(path)
        seq, blob = rows[1]
        rewrite_wal(path, seq, bytes(blob[:-4]))
        with pytest.raises(StoreCorrupt, match="before end of log"):
            SqliteStore(path)

    def test_crc_damage_raises_structured_error(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=4)
        seq, blob = wal_rows(path)[2]
        bad = bytearray(blob)
        bad[-1] ^= 0x40
        rewrite_wal(path, seq, bytes(bad))
        with pytest.raises(StoreCorrupt) as err:
            SqliteStore(path)
        assert err.value.table == "wal"
        assert err.value.rowid == seq

    def test_failed_open_releases_the_lease(self, tmp_path):
        from repro.store.lease import read_lease

        path = str(tmp_path / "s.tdlog")
        build_store(path, n=4)
        seq, blob = wal_rows(path)[1]
        rewrite_wal(path, seq, b"\x00" * len(blob))
        with pytest.raises(StoreCorrupt):
            SqliteStore(path)
        assert read_lease(path) is None  # no wedged lease left behind


class TestSnapshotIntegrity:
    def test_snapshot_damage_is_never_torn(self, tmp_path):
        # Snapshot rows are rewritten atomically, so even a
        # short-payload snapshot row reports as corruption.
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=4, checkpoint=True)
        conn = sqlite3.connect(path, isolation_level=None)
        rowid, blob = conn.execute(
            "SELECT rowid, fact FROM snapshot LIMIT 1"
        ).fetchone()
        conn.execute(
            "UPDATE snapshot SET fact=? WHERE rowid=?", (blob[:-5], rowid)
        )
        conn.close()
        with pytest.raises(StoreCorrupt) as err:
            SqliteStore(path)
        assert err.value.table == "snapshot"

    def test_checkpoint_records_content_digest(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=4, checkpoint=True)
        conn = sqlite3.connect(path)
        recorded = conn.execute(
            "SELECT value FROM meta WHERE key='snapshot_digest'"
        ).fetchone()[0]
        conn.close()
        assert recorded == content_digest(
            parse_atom("p(%d)" % i) for i in range(4)
        )


class TestReadonlyDegradedOpen:
    def test_readonly_refuses_mutation(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=2)
        with open_store(path, readonly=True) as ro:
            assert len(ro) == 2
            with pytest.raises(Exception, match="read-only"):
                ro.insert(parse_atom("p(9)"))

    def test_readonly_missing_file_does_not_create(self, tmp_path):
        from repro import StoreError

        path = str(tmp_path / "absent.tdlog")
        with pytest.raises(StoreError, match="no such store"):
            open_store(path, readonly=True)
        assert not (tmp_path / "absent.tdlog").exists()

    def test_readonly_takes_no_lease(self, tmp_path):
        from repro.store.lease import read_lease

        path = str(tmp_path / "s.tdlog")
        build_store(path, n=2)
        with open_store(path, readonly=True):
            assert read_lease(path) is None

    def test_damaged_store_opens_degraded(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=5)
        rows = wal_rows(path)
        seq, blob = rows[1]
        rewrite_wal(path, seq, b"\x00" * len(blob))
        with open_store(path, readonly=True) as ro:
            stats = ro.stats()
            assert stats["degraded"] is not None
            assert "wal row %d" % seq in stats["degraded"]
            # Replay stopped at the damage: only the prefix is visible.
            assert set(ro) == {parse_atom("p(0)")}

    def test_mem_readonly_is_an_error(self):
        from repro import StoreError

        with pytest.raises(StoreError, match="readonly"):
            open_store("mem", readonly=True)

    def test_schema_version_mismatch_readonly_is_degraded(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build_store(path, n=2)
        conn = sqlite3.connect(path, isolation_level=None)
        conn.execute(
            "UPDATE meta SET value=? WHERE key='schema_version'",
            (SCHEMA_VERSION + 7,),
        )
        conn.close()
        with open_store(path, readonly=True) as ro:
            assert "schema version" in ro.stats()["degraded"]
