"""Aborted terminations are recorded distinctly: compiler abort rules,
monitor queries, event-log records, and abort-aware analytics."""

import json

import pytest

from repro.core.database import Database
from repro.core.terms import atom
from repro.datalog import evaluate
from repro.faults import AgentOutage, FaultPlan, Window
from repro.workflow import (
    Agent,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)
from repro.workflow.analytics import (
    render_analytics,
    task_aborts,
    task_executions,
)
from repro.workflow.compiler import compile_workflows
from repro.workflow.eventlog import event_log, timeline, to_json
from repro.workflow.monitor import (
    aborted_tasks,
    failed_items,
    history_program,
    in_progress,
    status_report,
)


def spec():
    return WorkflowSpec(
        "flow",
        SeqFlow(Step("prep"), Step("scan")),
        (Task("prep", role="t"), Task("scan", None)),
    )


@pytest.fixture
def outage_result():
    """One item run while the only qualified agent is permanently out:
    ``prep`` aborts (graceful degradation), ``scan`` still completes."""
    sim = WorkflowSimulator(
        [spec()], agents=[Agent("ada", ("t",))], abortable=True
    )
    plan = FaultPlan(0, outages=(AgentOutage("ada", Window(0, None)),))
    return sim.run(["w1"], fault_plan=plan)


class TestCompiler:
    def test_abortable_adds_a_last_resort_rule_per_task(self):
        plain = compile_workflows([spec()])
        degraded = compile_workflows([spec()], abortable=True)
        assert len(degraded.rules) == len(plain.rules) + 2
        rendered = [str(r) for r in degraded.rules]
        assert any("aborted" in r for r in rendered)
        assert not any("aborted" in str(r) for r in plain.rules)

    def test_abort_rule_listed_after_the_normal_rule(self):
        # DFS honors program order, so the normal rule must come first
        # or every task would abort even with agents available.
        rules = compile_workflows([spec()], abortable=True).rules
        prep = [str(r) for r in rules if str(r.head).startswith("task_prep")]
        assert len(prep) == 2
        assert "done" in prep[0] and "aborted" in prep[1]

    def test_unfaulted_abortable_run_never_aborts(self):
        sim = WorkflowSimulator(
            [spec()], agents=[Agent("ada", ("t",))], abortable=True
        )
        result = sim.run(["w1", "w2"])
        assert not list(result.history.facts("aborted"))
        assert result.completed("prep") == ["w1", "w2"]


class TestOutageRun:
    def test_aborted_recorded_distinctly_from_done(self, outage_result):
        history = outage_result.history
        assert aborted_tasks(history) == [("prep", "w1")]
        done = {str(f.args[0]) for f in history.facts("done")}
        assert "prep" not in done and "scan" in done

    def test_aborted_attempts_are_not_in_progress(self, outage_result):
        assert in_progress(outage_result.history) == []

    def test_failed_items_require_no_later_completion(self, outage_result):
        assert failed_items(outage_result.history) == ["w1"]

    def test_status_report_lists_aborts_and_failures(self, outage_result):
        text = status_report(outage_result.history)
        assert "aborted attempts: prep/w1" in text
        assert "failed items: w1" in text


class TestMonitorQueries:
    def test_completion_of_the_same_task_recovers_the_item(self):
        db = Database([
            atom("started", "prep", "w1"),
            atom("aborted", "prep", "w1"),
            atom("started", "prep", "w1"),
            atom("done", "prep", "w1", "ada"),
        ])
        assert aborted_tasks(db) == [("prep", "w1")]
        assert failed_items(db) == []

    def test_history_program_derives_failed_view(self):
        failed_db = Database([
            atom("started", "prep", "w1"),
            atom("aborted", "prep", "w1"),
        ])
        facts = evaluate(history_program(), failed_db)
        assert atom("failed", "w1") in facts
        recovered_db = failed_db.insert(atom("done", "prep", "w1", "ada"))
        assert atom("failed", "w1") not in evaluate(
            history_program(), recovered_db
        )


class TestEventLog:
    def test_task_aborted_record_closes_the_started_pair(self, outage_result):
        records = event_log(outage_result)
        kinds = [(r.kind, r.task, r.item) for r in records]
        assert ("task_aborted", "prep", "w1") in kinds
        start = next(
            r.seq for r in records
            if r.kind == "task_started" and r.task == "prep"
        )
        abort = next(r.seq for r in records if r.kind == "task_aborted")
        assert start < abort

    def test_timeline_and_json_render_aborts(self, outage_result):
        assert "task_aborted" in timeline(outage_result)
        payload = json.loads(to_json(outage_result))
        assert any(r["kind"] == "task_aborted" for r in payload)


class TestAnalytics:
    def test_aborted_attempts_do_not_mispair_latency(self, outage_result):
        records = event_log(outage_result)
        executions = task_executions(records)
        # Only the completed task yields an interval; the aborted
        # attempt must not be paired with some other task's done event.
        assert {e.task for e in executions} == {"scan"}
        assert all(e.done_seq > e.start_seq for e in executions)

    def test_task_aborts_counts_per_task(self, outage_result):
        assert task_aborts(event_log(outage_result)) == {"prep": 1}

    def test_render_analytics_reports_aborts(self, outage_result):
        text = render_analytics(event_log(outage_result))
        assert "aborted attempts" in text
        assert "prep" in text


class TestRetryRecovery:
    def test_transient_outage_commits_via_retry(self):
        sim = WorkflowSimulator([spec()], agents=[Agent("ada", ("t",))])
        plan = FaultPlan(0, outages=(AgentOutage("ada", Window(0, 8)),))
        result = sim.run(
            ["w1"], fault_plan=plan, retry_attempts=10, retry_budget=50_000
        )
        assert result.completed("prep") == ["w1"]
        assert not list(result.history.facts("aborted"))
