"""Rules and rulebases (TD programs).

A TD program (the paper says *rulebase*) is a finite set of rules

    head <- body

where ``head`` is an atom over a *derived* predicate and ``body`` is a TD
formula.  Predicates split into two disjoint classes, exactly as in the
paper:

* *base* predicates -- stored in the database; accessed only through the
  elementary operations (tuple testing, ``ins``, ``del``);
* *derived* predicates -- defined by rules; invoking one unfolds its
  rules (nondeterministically, when several rules match).

The parser emits every body atom as a generic :class:`~repro.core.formulas.Call`;
:meth:`Program.resolve` rewrites calls to base predicates into
:class:`~repro.core.formulas.Test` once the base/derived split is known.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .database import Schema
from .formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
    apply_subst,
    formula_variables,
    walk_formulas,
)
from .terms import Atom, Signature, Term, Variable
from .unify import Substitution, unify_atoms

__all__ = ["Rule", "Program", "ProgramError"]


class ProgramError(ValueError):
    """Raised for ill-formed rulebases (e.g. updating a derived predicate)."""


def _canon_call(atom: Atom) -> Tuple[Atom, Dict[Variable, Variable]]:
    """Abstract a call atom to its shape: variables are renamed to
    reserved names by first occurrence (``\\x00`` cannot appear in source
    variable names), constants are kept.  Two calls with the same shape
    match the same rules with α-equivalent unifiers."""
    mapping: Dict[Variable, Variable] = {}
    args = []
    changed = False
    for t in atom.args:
        if isinstance(t, Variable):
            c = mapping.get(t)
            if c is None:
                c = Variable("\x00%d" % len(mapping))
                mapping[t] = c
            args.append(c)
            changed = True
        else:
            args.append(t)
    if not changed:
        return atom, mapping
    return Atom(atom.pred, tuple(args)), mapping


@dataclass(frozen=True)
class Rule:
    """A single TD rule ``head <- body``."""

    head: Atom
    body: Formula

    def _var_set(self) -> frozenset:
        """Cached variable set; rules are immutable and renamed often."""
        cached = getattr(self, "_vars", None)
        if cached is None:
            cached = frozenset(self.head.variables()).union(
                formula_variables(self.body)
            )
            object.__setattr__(self, "_vars", cached)
        return cached

    def variables(self) -> Set[Variable]:
        return set(self._var_set())

    def rename(self, suffix: str) -> "Rule":
        """Freshen every variable by appending *suffix*."""
        variables = self._var_set()
        if not variables:
            return self
        renaming = {v: Variable(v.name + suffix) for v in variables}
        new_head = Atom(
            self.head.pred,
            tuple(renaming.get(t, t) if isinstance(t, Variable) else t for t in self.head.args),
        )
        return Rule(new_head, apply_subst(self.body, renaming))

    def __str__(self) -> str:
        if isinstance(self.body, Truth):
            return "%s." % (self.head,)
        return "%s <- %s." % (self.head, self.body)


class Program:
    """A TD rulebase together with its base-predicate schema.

    Parameters
    ----------
    rules:
        The rules.  Body atoms may still be unresolved generic calls; the
        constructor resolves them (base-predicate calls become tests).
    base:
        Extra base-predicate signatures to declare beyond those inferred
        from ``ins``/``del``/``not`` occurrences.
    strict:
        If true (default), using an undeclared predicate that is neither
        a rule head nor inferable as base raises; if false, such
        predicates are treated as base on first use.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        base: Iterable[Signature] = (),
        strict: bool = False,
    ):
        self._rules: List[Rule] = list(rules)
        self._derived: Dict[Signature, List[Rule]] = {}
        for rule in self._rules:
            self._derived.setdefault(rule.head.signature, []).append(rule)

        self.schema = Schema(base, strict=False)
        self._infer_base_predicates()
        self.strict = strict
        self._rules = [self._resolve_rule(r) for r in self._rules]
        self._derived = {}
        for rule in self._rules:
            self._derived.setdefault(rule.head.signature, []).append(rule)
        self._fresh_counter = itertools.count(1)
        self._match_cache: Dict[Atom, list] = {}
        self._footprint: Optional[Tuple[frozenset, frozenset]] = None
        self._validate()

    # -- construction internals ------------------------------------------------

    def _infer_base_predicates(self) -> None:
        for rule in self._rules:
            for sub in walk_formulas(rule.body):
                if isinstance(sub, (Ins, Del, Neg)):
                    self.schema.declare(sub.atom.pred, sub.atom.arity)
                elif isinstance(sub, Test):
                    self.schema.declare(sub.atom.pred, sub.atom.arity)

    def is_derived(self, sig: Signature) -> bool:
        return sig in self._derived

    def is_base(self, sig: Signature) -> bool:
        return sig in self.schema and not self.is_derived(sig)

    def _resolve_formula(self, f: Formula) -> Formula:
        if isinstance(f, Call):
            sig = f.atom.signature
            if self.is_derived(sig):
                return f
            # Not a rule head: it is a tuple test on a base predicate.
            if sig not in self.schema:
                if self.strict:
                    raise ProgramError(
                        "predicate %s/%d is neither defined by rules nor "
                        "declared as a base predicate" % sig
                    )
                self.schema.declare(*sig)
            return Test(f.atom)
        if isinstance(f, Seq):
            return Seq(tuple(self._resolve_formula(p) for p in f.parts))
        if isinstance(f, Conc):
            return Conc(tuple(self._resolve_formula(p) for p in f.parts))
        if isinstance(f, Isol):
            return Isol(self._resolve_formula(f.body), f.budget)
        return f

    def _resolve_rule(self, rule: Rule) -> Rule:
        return Rule(rule.head, self._resolve_formula(rule.body))

    def _validate(self) -> None:
        for rule in self._rules:
            if (
                rule.head.signature in self.schema
                and not self.is_derived(rule.head.signature)
            ):
                raise ProgramError(
                    "predicate %s/%d is both base and derived"
                    % rule.head.signature
                )
            for sub in walk_formulas(rule.body):
                if isinstance(sub, (Ins, Del)) and self.is_derived(sub.atom.signature):
                    raise ProgramError(
                        "cannot update derived predicate %s/%d"
                        % sub.atom.signature
                    )
                if isinstance(sub, Test) and self.is_derived(sub.atom.signature):
                    raise ProgramError(
                        "internal error: derived predicate %s/%d resolved "
                        "as a tuple test" % sub.atom.signature
                    )

    # -- public API ---------------------------------------------------------------

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    def derived_signatures(self) -> Tuple[Signature, ...]:
        return tuple(sorted(self._derived))

    def rules_for(self, sig: Signature) -> Sequence[Rule]:
        """Rules whose head matches *sig*, in program order."""
        return self._derived.get(sig, ())

    def fresh_rules_for(self, sig: Signature) -> Iterator[Rule]:
        """Rules for *sig*, each with variables freshly renamed."""
        for rule in self._derived.get(sig, ()):
            yield rule.rename("#%d" % next(self._fresh_counter))

    def match_rules(self, call_atom: Atom) -> Iterator[Tuple[Rule, Substitution]]:
        """Indexed call dispatch: ``(fresh rule, unifier)`` for every rule
        whose head unifies with *call_atom*, in program order.

        Equivalent to scanning :meth:`fresh_rules_for` and unifying each
        renamed head, but which heads match -- and with what unifier, up
        to renaming -- depends only on the call's *shape* (its constants
        and variable-sharing pattern), so the result is memoized per
        canonicalized call atom.  Repeated unfoldings of the same call
        shape then skip head unification entirely: only the matching
        rules are renamed and their cached unifier templates are
        instantiated with the call's actual variables.
        """
        sig = call_atom.signature
        canon, mapping = _canon_call(call_atom)
        entry = self._match_cache.get(canon)
        rules = self._derived.get(sig, ())
        if entry is None:
            entry = []
            for idx, rule in enumerate(rules):
                # Base (unrenamed) rule vars cannot collide with the
                # reserved canonical names, so this one unification
                # stands in for every future call of this shape.
                theta = unify_atoms(rule.head, canon)
                if theta is not None:
                    entry.append((idx, theta))
            self._match_cache[canon] = entry
        if not entry:
            return
        inv: Dict[Variable, Term] = {c: v for v, c in mapping.items()}
        for idx, ctheta in entry:
            suffix = "#%d" % next(self._fresh_counter)
            theta: Dict[Variable, Term] = {}
            for v, t in ctheta.items():
                if isinstance(t, Variable):
                    t = inv[t]
                actual = inv.get(v)
                if actual is None:
                    actual = Variable(v.name + suffix)
                theta[actual] = t
            yield rules[idx].rename(suffix), theta

    def update_footprint(self) -> Tuple[frozenset, frozenset]:
        """Predicates any rule body can insert / delete (cached)."""
        cached = self._footprint
        if cached is None:
            insertable = set()
            deletable = set()
            for rule in self._rules:
                for sub in walk_formulas(rule.body):
                    if isinstance(sub, Ins):
                        insertable.add(sub.atom.pred)
                    elif isinstance(sub, Del):
                        deletable.add(sub.atom.pred)
            cached = (frozenset(insertable), frozenset(deletable))
            self._footprint = cached
        return cached

    def resolve_goal(self, goal: Formula) -> Formula:
        """Resolve generic calls in a parsed goal against this program."""
        return self._resolve_formula(goal)

    def extend(self, rules: Iterable[Rule]) -> "Program":
        """A new program with extra rules (programs are immutable)."""
        return Program(
            list(self._rules) + list(rules),
            base=self.schema.signatures(),
            strict=self.strict,
        )

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)
