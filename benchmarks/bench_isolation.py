"""Experiment E1: isolation, serializability, and their cost.

Paper artifact: Examples 2.1-2.2 and the discussion of isolation --
``iso(t1) | iso(t2) | ... `` executes transactions serializably.  We
measure:

* correctness: concurrent isolated register bumps admit only the serial
  outcome, while unisolated ones exhibit the lost-update anomaly;
* cost: the price of isolation (nested atomic searches) as concurrency
  grows.
"""

import pytest

from repro import Interpreter, parse_database, parse_goal, parse_program
from repro.complexity import measure, print_series

ISO_BUMP = "bump <- iso(reg(V) * del.reg(V) * V2 is V + 1 * ins.reg(V2))."
RAW_BUMP = "bump <- reg(V) * del.reg(V) * V2 is V + 1 * ins.reg(V2)."


def _final_regs(program_text, k, max_configs=2_000_000):
    """The set of observable register outcomes, each a sorted tuple of
    the reg values in one reachable final state.  (Unisolated bumps can
    leave *several* reg facts behind -- two processes that both read 0
    write divergent successors.  That splitting is part of the anomaly.)
    """
    prog = parse_program(program_text)
    interp = Interpreter(prog, max_configs=max_configs)
    goal = parse_goal(" | ".join(["bump"] * k))
    db = parse_database("reg(0).")
    finals = interp.final_databases(goal, db)
    outcomes = set()
    for final in finals:
        outcomes.add(tuple(sorted(f.args[0].value for f in final.facts("reg"))))
    return outcomes


def test_isolated_bumps_are_serializable(benchmark):
    rows = []
    for k in (2, 3):
        iso_values, iso_s = measure(lambda: _final_regs(ISO_BUMP, k))
        raw_values, raw_s = measure(lambda: _final_regs(RAW_BUMP, k))
        assert iso_values == {(k,)}  # the one serializable outcome
        assert (k,) in raw_values  # the serial schedule exists too...
        anomalies = raw_values - {(k,)}
        assert anomalies  # ...alongside lost updates / split registers
        rows.append([k, sorted(iso_values), sorted(raw_values), iso_s, raw_s])
    print_series(
        "E1: concurrent register bumps -- reachable final values",
        ["processes", "iso outcomes", "raw outcomes", "iso s", "raw s"],
        rows,
    )
    benchmark.pedantic(lambda: _final_regs(ISO_BUMP, 3), rounds=3, iterations=1)


def test_concurrent_transfers_conserve_money(benchmark, bank_text=None):
    program = parse_program(
        """
        transfer(F, T, Amt) <- iso(
            balance(F, B1) * B1 >= Amt *
            del.balance(F, B1) * B1n is B1 - Amt * ins.balance(F, B1n) *
            balance(T, B2) *
            del.balance(T, B2) * B2n is B2 + Amt * ins.balance(T, B2n)
        ).
        """
    )
    rows = []
    for k in (1, 2, 3):
        interp = Interpreter(program, max_configs=4_000_000)
        goal = parse_goal(
            " | ".join("transfer(a, b, %d)" % (i + 1) for i in range(k))
        )
        db = parse_database("balance(a, 100). balance(b, 0).")

        def run():
            return interp.final_databases(goal, db)

        finals, seconds = measure(run)
        for final in finals:
            total = sum(f.args[1].value for f in final.facts("balance"))
            assert total == 100
        rows.append([k, len(finals), seconds])
    print_series(
        "E1: concurrent isolated transfers -- money conserved",
        ["transfers", "distinct finals", "seconds"],
        rows,
    )
    interp = Interpreter(program, max_configs=4_000_000)
    goal = parse_goal("transfer(a, b, 1) | transfer(a, b, 2)")
    db = parse_database("balance(a, 100). balance(b, 0).")
    benchmark.pedantic(lambda: interp.final_databases(goal, db), rounds=3, iterations=1)


def test_nested_transaction_rollback(benchmark):
    """Example 2.2's relative commit: deposit failure undoes the
    committed withdraw -- measured as plain failure of the parent."""
    program = parse_program(
        """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
    )
    interp = Interpreter(program)
    db = parse_database("balance(a, 100).")
    rows = []
    ok, s1 = measure(
        lambda: interp.succeeds(parse_goal("transfer(a, ghost, 10)"), db)
    )
    rows.append(["deposit target missing", ok, s1])
    ok2, s2 = measure(
        lambda: interp.succeeds(parse_goal("transfer(a, a, 10)"), db)
    )
    rows.append(["self transfer", ok2, s2])
    print_series(
        "E1: nested transaction outcomes",
        ["case", "commits", "seconds"],
        rows,
    )
    assert not ok  # aborted atomically
    benchmark.pedantic(
        lambda: interp.succeeds(parse_goal("transfer(a, ghost, 10)"), db),
        rounds=3,
        iterations=1,
    )
