"""Seeded, fully deterministic fault plans.

A :class:`FaultPlan` is *data*: a frozen description of every
perturbation a run will suffer, decided before the run starts.  The
injector (:mod:`repro.faults.inject`) merely reads it against a tick
counter, so the same plan applied to the same workload produces the
same perturbed execution on every machine -- no wall clock, no global
RNG, no hash-order dependence.

Time is measured in **ticks**: one tick per configuration expansion the
interpreter performs (nested isolation searches tick too).  A
:class:`Window` ``[start, stop)`` over ticks bounds each fault; a
window with ``stop=None`` never closes (a *permanent* fault), anything
else is *transient* -- it expires as the search proceeds, which is what
makes ``retry`` recover.

Plans are built either explicitly or by :func:`generate_plan`, which
derives everything from a single integer seed via ``random.Random``
(Python's Mersenne generator is specified and stable across versions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = [
    "Window",
    "StepFault",
    "AgentOutage",
    "AdversarialOrder",
    "Exhaustion",
    "StoreCrash",
    "CRASH_POINTS",
    "FaultPlan",
    "generate_plan",
]


@dataclass(frozen=True)
class Window:
    """A half-open tick interval ``[start, stop)``; ``stop=None`` means
    the fault never expires."""

    start: int
    stop: Optional[int] = None

    def active(self, tick: int) -> bool:
        return tick >= self.start and (self.stop is None or tick < self.stop)

    @property
    def transient(self) -> bool:
        return self.stop is not None

    def __str__(self) -> str:
        return "[%d, %s)" % (self.start, "inf" if self.stop is None else self.stop)


@dataclass(frozen=True)
class StepFault:
    """Force matching enabled steps to fail while the window is open.

    A dropped step is exactly the paper's *failed elementary operation*:
    the transition is simply not enabled, so the execution must find
    another way or fail -- and a failed (sub)execution leaves no trace.

    ``kind``
        Action kind to match: ``ins``, ``del``, ``call``, ``test``,
        ``iso``, or ``*`` for any.
    ``pred``
        Predicate name the action's atom must have (``None`` = any).
    ``arg``
        When set, some argument of the atom must render equal to
        ``str(arg)``.
    ``scan_iso``
        Also match an ``iso`` commit step whose subtrace *contains* a
        matching elementary action -- vetoing the atomic commit as a
        whole (never a part of it).
    """

    kind: str
    pred: Optional[str]
    window: Window
    arg: Optional[object] = None
    scan_iso: bool = False

    def __str__(self) -> str:
        target = self.pred or "*"
        if self.arg is not None:
            target += "(%s)" % self.arg
        return "fail %s.%s during %s" % (self.kind, target, self.window)


@dataclass(frozen=True)
class AgentOutage:
    """An agent is unavailable while the window is open.

    Matches the workflow compilation scheme, where claiming an agent is
    the elementary step ``del.available(agent)`` (see
    :mod:`repro.workflow.compiler`): dropping that step means no task
    can claim the agent until the window closes.
    """

    agent: object
    window: Window
    predicate: str = "available"

    def __str__(self) -> str:
        return "agent %s out during %s" % (self.agent, self.window)


@dataclass(frozen=True)
class AdversarialOrder:
    """While open, the injector reorders enabled steps *worst first*:
    steps whose residual frontier is blocked come before immediately
    runnable ones, and program order is reversed within each group --
    the exact inverse of the simulator's own heuristic."""

    window: Window

    def __str__(self) -> str:
        return "adversarial order during %s" % (self.window,)


@dataclass(frozen=True)
class Exhaustion:
    """Force budget or deadline exhaustion at one tick.

    ``kind`` is ``budget`` (raises
    :class:`~repro.core.errors.SearchBudgetExceeded`) or ``deadline``
    (raises :class:`~repro.core.errors.DeadlineExceeded`).  Raised
    between expansions, so the interpreter's checkpoint machinery
    treats it exactly like the real thing.
    """

    at_tick: int
    kind: str = "budget"

    def __str__(self) -> str:
        return "%s exhaustion at tick %d" % (self.kind, self.at_tick)


#: The named crash points a :class:`StoreCrash` can fire at, in the
#: order of a write's life cycle.  Each point ticks its own counter in
#: the store (appends for the fsync pair, checkpoints for the fold,
#: releases for the savepoint commit), so windows compose per family.
CRASH_POINTS = (
    "pre-fsync",             # before the WAL row is written: nothing durable
    "post-fsync",            # row durable, mirror not updated (the torn moment)
    "mid-checkpoint-fold",   # inside the snapshot rewrite, before COMMIT
    "mid-savepoint-release", # scope popped, SQL RELEASE never executed
)


@dataclass(frozen=True)
class StoreCrash:
    """Kill the durable store at a named crash point while the window
    is open.

    Ticks here count store events of the point's family, not
    interpreter expansions: ``pre-fsync``/``post-fsync`` count *WAL
    appends* (effective inserts/deletes), ``mid-checkpoint-fold``
    counts checkpoint attempts, ``mid-savepoint-release`` counts
    savepoint releases.  The store keeps these counters itself and the
    first event whose tick falls inside the window crashes the store at
    that point -- ``post-fsync`` (the default, and the only point
    before PR 9) is the classic torn moment a write-ahead log exists to
    survive: the row is durable but the in-memory mirror never sees it.
    Every later operation on the crashed instance raises
    :class:`repro.store.StoreCrashed`; recovery is reopening the file,
    which replays the verified WAL tail into the last snapshot (see
    docs/STORAGE.md's failure matrix for what each point may and may
    not lose).
    """

    window: Window
    point: str = "post-fsync"

    def __post_init__(self):
        if self.point not in CRASH_POINTS:
            raise ValueError(
                "unknown crash point %r (expected one of %s)"
                % (self.point, ", ".join(CRASH_POINTS))
            )

    def __str__(self) -> str:
        return "store crash at %s during %s" % (self.point, self.window)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, decided up front."""

    seed: int
    step_faults: Tuple[StepFault, ...] = ()
    outages: Tuple[AgentOutage, ...] = ()
    adversarial: Tuple[AdversarialOrder, ...] = ()
    exhaustion: Tuple[Exhaustion, ...] = ()
    store_crashes: Tuple[StoreCrash, ...] = ()

    @property
    def transient(self) -> bool:
        """True when every fault expires: all windows are bounded and
        nothing forces exhaustion.  Transient plans are the ones
        ``retry`` must beat (the chaos suite's headline property)."""
        if self.exhaustion:
            return False
        # A crashed store stays dead until the file is reopened, so any
        # store crash makes the plan non-transient for the run it hits.
        if self.store_crashes:
            return False
        for fault in self.step_faults:
            if not fault.window.transient:
                return False
        for outage in self.outages:
            if not outage.window.transient:
                return False
        return True

    @property
    def horizon(self) -> int:
        """First tick from which no window is active any more (0 for an
        empty plan; meaningless when the plan is not transient)."""
        stops = [f.window.stop or 0 for f in self.step_faults]
        stops += [o.window.stop or 0 for o in self.outages]
        stops += [a.window.stop or 0 for a in self.adversarial]
        return max(stops, default=0)

    def describe(self) -> str:
        lines = ["fault plan (seed %d)%s:" % (
            self.seed, " [transient]" if self.transient else "")]
        for group in (self.step_faults, self.outages, self.adversarial,
                      self.exhaustion, self.store_crashes):
            for fault in group:
                lines.append("  - %s" % fault)
        if len(lines) == 1:
            lines.append("  - (no faults)")
        return "\n".join(lines)


def generate_plan(
    seed: int,
    *,
    predicates: Sequence[str] = (),
    agents: Sequence[object] = (),
    max_window: int = 30,
    max_start: int = 20,
    allow_permanent: bool = False,
    allow_exhaustion: bool = False,
    exhaustion_tick_range: Tuple[int, int] = (5, 200),
) -> FaultPlan:
    """Derive a fault plan deterministically from *seed*.

    ``predicates`` are candidate targets for step faults (use the
    workload's own update predicates); ``agents`` are candidates for
    outages.  Windows open within ``[0, max_start)`` and last at most
    ``max_window`` ticks, so transient plans expire early enough for a
    modestly sized ``retry`` to outlive them.  With
    ``allow_permanent``/``allow_exhaustion`` the generator also emits
    never-closing windows and forced exhaustion (such plans are not
    transient, and the chaos harness expects only aborts from them --
    never atomicity violations).
    """
    rng = random.Random(seed)
    step_faults = []
    outages = []
    adversarial = []
    exhaustion = []

    def window() -> Window:
        start = rng.randrange(max_start)
        if allow_permanent and rng.random() < 0.15:
            return Window(start, None)
        return Window(start, start + 1 + rng.randrange(max_window))

    if predicates:
        for _ in range(rng.randrange(3)):  # 0-2 step faults
            pred = rng.choice(list(predicates))
            kind = rng.choice(["ins", "del", "call"])
            scan = rng.random() < 0.5
            step_faults.append(
                StepFault(kind, pred, window(), scan_iso=scan)
            )
    if agents and rng.random() < 0.6:
        outages.append(AgentOutage(rng.choice(list(agents)), window()))
    if rng.random() < 0.35:
        adversarial.append(AdversarialOrder(window()))
    if allow_exhaustion and rng.random() < 0.3:
        lo, hi = exhaustion_tick_range
        exhaustion.append(
            Exhaustion(lo + rng.randrange(max(1, hi - lo)),
                       rng.choice(["budget", "deadline"]))
        )
    return FaultPlan(
        seed=seed,
        step_faults=tuple(step_faults),
        outages=tuple(outages),
        adversarial=tuple(adversarial),
        exhaustion=tuple(exhaustion),
    )
