"""Interactive Transaction Datalog session (``tdlog repl``).

A small read-eval loop for exploratory TD programming::

    td> rule move(X) <- src(X) * del.src(X) * ins.dst(X).
    td> fact src(a).
    td> fact src(b).
    td> ?- move(X).
    X = a   leaving {dst(a), src(b)}
    X = b   leaving {dst(b), src(a)}
    td> run move(a).
    ... trace ...
    td> commit move(a).
    td> db

Commands:

``rule <rule>``      add a rule to the session program
``fact <atom>.``     insert a fact into the session database
``load <file>``      load rules from a .td file
``loaddb <file>``    load facts from a facts file
``?- <goal>.``       enumerate solutions (database unchanged)
``run <goal>.``      simulate one execution, show its trace
``commit <goal>.``   simulate and *apply* the final state to the session
``why <goal>.``      explain why a goal can or cannot commit
``classify``         sublanguage analysis of the session program
``program`` / ``db`` show the session rulebase / database
``reset``            clear everything
``quit``             leave

The session database only changes through ``fact``, ``loaddb`` and
``commit`` -- queries and runs are transactional, as the language
intends.
"""

from __future__ import annotations

import sys
from typing import IO, List, Optional

from .core import (
    Database,
    TDError,
    analyze,
    format_database,
    format_program,
    format_trace,
    parse_database,
    parse_goal,
    parse_rules,
    select_engine,
)
from .core.parser import ParseError
from .core.program import Program, Rule

__all__ = ["Repl", "main"]

_PROMPT = "td> "
_MAX_SOLUTIONS = 10


class Repl:
    """The interactive session state and command dispatcher."""

    def __init__(self, out: IO[str] = sys.stdout):
        self.out = out
        self.rules: List[Rule] = []
        self.db = Database()

    # -- helpers ---------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        self.out.write(text + "\n")

    def _program(self) -> Program:
        return Program(self.rules)

    # -- command handlers -----------------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the session ends."""
        line = line.strip()
        if not line or line.startswith("%"):
            return True
        try:
            return self._dispatch(line)
        except (ParseError, TDError, ValueError) as exc:
            self._print("error: %s" % exc)
            return True

    def _dispatch(self, line: str) -> bool:
        if line in ("quit", "exit"):
            self._print("bye.")
            return False
        if line == "reset":
            self.rules = []
            self.db = Database()
            self._print("session cleared.")
            return True
        if line == "program":
            self._print(format_program(self._program()) or "(no rules)")
            return True
        if line == "db":
            self._print(format_database(self.db) or "(empty database)")
            return True
        if line == "classify":
            self._print(analyze(self._program()).report())
            return True
        if line == "help":
            self._print(__doc__.strip())
            return True
        if line.startswith("rule "):
            new_rules = parse_rules(line[len("rule "):])
            self.rules.extend(new_rules)
            self._print("added %d rule(s)." % len(new_rules))
            return True
        if line.startswith("fact "):
            facts = parse_database(line[len("fact "):])
            self.db = self.db.insert_all(facts)
            self._print("inserted %d fact(s)." % len(facts))
            return True
        if line.startswith("load "):
            with open(line[len("load "):].strip()) as handle:
                new_rules = parse_rules(handle.read())
            self.rules.extend(new_rules)
            self._print("loaded %d rule(s)." % len(new_rules))
            return True
        if line.startswith("loaddb "):
            with open(line[len("loaddb "):].strip()) as handle:
                facts = parse_database(handle.read())
            self.db = self.db.insert_all(facts)
            self._print("loaded %d fact(s)." % len(facts))
            return True
        if line.startswith("?-"):
            self._solve(line[2:].strip().rstrip("."))
            return True
        if line.startswith("run "):
            self._run(line[len("run "):].strip().rstrip("."), commit=False)
            return True
        if line.startswith("commit "):
            self._run(line[len("commit "):].strip().rstrip("."), commit=True)
            return True
        if line.startswith("why "):
            self._diagnose(line[len("why "):].strip().rstrip("."))
            return True
        self._print("unknown command (try 'help').")
        return True

    def _solve(self, goal_text: str) -> None:
        goal = parse_goal(goal_text)
        engine = select_engine(self._program(), goal)
        count = 0
        for solution in engine.solve(goal, self.db):
            count += 1
            bindings = ", ".join(
                "%s = %s" % (v, t) for v, t in sorted(solution.bindings.items())
            )
            delta_plus = solution.database.difference(self.db)
            delta_minus = self.db.difference(solution.database)
            delta_bits = []
            if delta_plus:
                delta_bits.append("+{%s}" % ", ".join(str(f) for f in sorted(delta_plus)))
            if delta_minus:
                delta_bits.append("-{%s}" % ", ".join(str(f) for f in sorted(delta_minus)))
            delta = " ".join(delta_bits) if delta_bits else "(no change)"
            self._print("  %s%s" % (bindings + "   " if bindings else "", delta))
            if count >= _MAX_SOLUTIONS:
                self._print("  ... (stopping at %d solutions)" % _MAX_SOLUTIONS)
                break
        if count == 0:
            self._print("  no.")

    def _diagnose(self, goal_text: str) -> None:
        from .verify import diagnose

        report = diagnose(self._program(), parse_goal(goal_text), self.db)
        self._print(report.summary())

    def _run(self, goal_text: str, commit: bool) -> None:
        goal = parse_goal(goal_text)
        engine = select_engine(self._program(), goal)
        execution = engine.simulate(goal, self.db)
        if execution is None:
            self._print("  cannot commit.")
            return
        self._print(format_trace(execution.trace, indent="  "))
        if commit:
            self.db = execution.database
            self._print("  committed.")

    # -- loop -------------------------------------------------------------------------

    def loop(self, in_stream: IO[str] = sys.stdin, banner: bool = True) -> None:
        if banner:
            self._print("Transaction Datalog repl -- 'help' for commands.")
        while True:
            self.out.write(_PROMPT)
            self.out.flush()
            line = in_stream.readline()
            if not line:
                self._print("")
                return
            if not self.handle(line):
                return


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.repl``.

    Takes the same profiling flags as every other entry point
    (``tdlog repl --profile`` routes through :mod:`repro.cli` and gets
    them there; this covers direct module invocation).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.repl", description="interactive Transaction Datalog session"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print an engine metrics summary when the session ends",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write the session's span trace as JSON lines to FILE (overwrites)",
    )
    parser.add_argument(
        "--trace-append", action="store_true",
        help="append to --trace-out instead of overwriting it",
    )
    args = parser.parse_args(argv)
    if not (args.profile or args.trace_out):
        Repl(out=sys.stdout).loop(in_stream=sys.stdin)
        return 0

    from .obs import Instrumentation, instrumented, render_report

    inst = Instrumentation.create()
    try:
        with instrumented(inst):
            Repl(out=sys.stdout).loop(in_stream=sys.stdin)
    finally:
        if args.trace_out:
            inst.tracer.write_jsonl(args.trace_out, append=args.trace_append)
        if args.profile:
            print(render_report(inst))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    sys.exit(main())
