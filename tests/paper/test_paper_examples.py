"""Integration tests reproducing the paper's worked examples.

Each test corresponds to a numbered example from the paper and checks
the behaviour the paper describes ("each example ... performs exactly as
described").  Where the paper's rule text survives only in fragments,
DESIGN.md records the reconstruction.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    Sublanguage,
    atom,
    classify,
    parse_database,
    parse_goal,
    parse_program,
)


class TestExample21BankingTransactions:
    """Example 2.1: flat transactions with preconditions."""

    PROGRAM = """
    withdraw(Acct, Amt) <-
        balance(Acct, Bal) * Bal >= Amt *
        del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
    deposit(Acct, Amt) <-
        balance(Acct, Bal) *
        del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
    """

    def test_withdraw_updates_balance(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        (sol,) = interp.solve(
            parse_goal("withdraw(acct1, 30)"), parse_database("balance(acct1, 100).")
        )
        assert sol.database == parse_database("balance(acct1, 70).")

    def test_precondition_balance_too_small(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        assert not interp.succeeds(
            parse_goal("withdraw(acct1, 300)"), parse_database("balance(acct1, 100).")
        )

    def test_precondition_invalid_account(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        assert not interp.succeeds(
            parse_goal("withdraw(ghost, 1)"), parse_database("balance(acct1, 100).")
        )


class TestExample22NestedTransactions:
    """Example 2.2: transfer = iso(withdraw * deposit) -- subtransaction
    failure aborts the parent even after the sibling 'committed'."""

    def test_transfer_all_or_nothing(self, bank_program, bank_db):
        interp = Interpreter(bank_program)
        # deposit target missing: withdraw must not leave a trace
        assert not interp.succeeds(parse_goal("transfer(a, ghost, 10)"), bank_db)
        (sol,) = interp.solve(parse_goal("transfer(a, b, 25)"), bank_db)
        assert sol.database == parse_database("balance(a, 75). balance(b, 35).")

    def test_serializability_between_transfers(self, bank_program):
        interp = Interpreter(bank_program, max_configs=500_000)
        db = parse_database("balance(a, 50). balance(b, 50).")
        finals = interp.final_databases(
            parse_goal("transfer(a, b, 10) | transfer(b, a, 20)"), db
        )
        assert finals == {parse_database("balance(a, 60). balance(b, 40).")}


class TestExample31WorkflowSpecification:
    """Example 3.1: a workflow made of tasks and a sub-workflow."""

    PROGRAM = """
    workflow(W) <- task1(W) * (subflow(W) | task2(W)) * task5(W).
    subflow(W) <- task3(W) * task4(W).
    task1(W) <- ins.done(t1, W).
    task2(W) <- ins.done(t2, W).
    task3(W) <- ins.done(t3, W).
    task4(W) <- ins.done(t4, W).
    task5(W) <- ins.done(t5, W).
    """

    def test_all_tasks_performed(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        exe = interp.simulate(parse_goal("workflow(w1)"), Database())
        done = {str(f.args[0]) for f in exe.database.facts("done")}
        assert done == {"t1", "t2", "t3", "t4", "t5"}

    def test_ordering_constraints(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        exe = interp.simulate(parse_goal("workflow(w1)"), Database())
        order = [ev for ev in exe.events if ev.startswith("ins.done")]
        # task1 first, task5 last, task3 before task4 inside the subflow
        assert order[0].startswith("ins.done(t1")
        assert order[-1].startswith("ins.done(t5")
        assert order.index("ins.done(t3, w1)") < order.index("ins.done(t4, w1)")


class TestExample32SchedulerSimulate:
    """Example 3.2: dynamic creation of workflow instances, and the
    environment as just another process."""

    def test_one_instance_per_work_item(self, simulate_program):
        interp = Interpreter(simulate_program)
        db = parse_database("workitem(w1). workitem(w2). workitem(w3).")
        exe = interp.simulate(parse_goal("simulate"), db)
        assert exe.database == parse_database("done(w1). done(w2). done(w3).")

    def test_environment_process(self):
        prog = parse_program(
            """
            simulate <- workitem(W) * del.workitem(W) * (workflow(W) | simulate).
            simulate <- iso(not workitem(_) * not feed(_)).
            workflow(W) <- ins.done(W).
            environment <- feed(W) * ins.workitem(W) * del.feed(W) * environment.
            environment <- not feed(_).
            """
        )
        interp = Interpreter(prog)
        db = parse_database("feed(w1). feed(w2).")
        exe = interp.simulate(parse_goal("simulate | environment"), db)
        assert atom("done", "w1") in exe.database
        assert atom("done", "w2") in exe.database

    def test_classified_as_full_td(self, simulate_program):
        # recursion through | : the Turing-complete regime
        assert classify(simulate_program) is Sublanguage.FULL


class TestExample33SharedResources:
    """Example 3.3: tasks acquire qualified agents from a shared pool."""

    PROGRAM = """
    task1(W) <-
        available(A) * qualified(A, task1) * del.available(A) *
        ins.done(task1, W, A) * ins.available(A).
    """

    def test_qualified_agent_assigned(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        db = parse_database(
            "available(anne). available(rob). "
            "qualified(rob, task1)."
        )
        (sol,) = interp.solve(parse_goal("task1(w1)"), db)
        assert atom("done", "task1", "w1", "rob") in sol.database

    def test_no_qualified_agent_blocks(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        db = parse_database("available(anne).")
        assert not interp.succeeds(parse_goal("task1(w1)"), db)

    def test_agent_pool_limits_concurrency(self):
        # one qualified agent, two concurrent instances: the busy-wait
        # interleavings resolve into some serial agent schedule.
        interp = Interpreter(parse_program(self.PROGRAM), max_configs=500_000)
        db = parse_database("available(rob). qualified(rob, task1).")
        exe = interp.simulate(parse_goal("task1(w1) | task1(w2)"), db)
        assert exe is not None
        done = {str(f) for f in exe.database.facts("done")}
        assert done == {"done(task1, w1, rob)", "done(task1, w2, rob)"}
        # the pool is restored afterwards
        assert atom("available", "rob") in exe.database


class TestExample34SynchronizedWorkflows:
    """Example 3.4: networks of cooperating workflows synchronizing
    through the database, iterated with tail recursion."""

    PROGRAM = """
    mapper(W) <- measure(W) * ins.mapdata(W).
    assembler(W) <- mapdata(W) * assemble(W).
    measure(W) <- ins.done(measure, W).
    assemble(W) <- ins.done(assemble, W).
    """

    def test_assembler_waits_for_mapper(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        exe = interp.simulate(parse_goal("assembler(s1) | mapper(s1)"), Database())
        events = list(exe.events)
        assert events.index("ins.mapdata(s1)") < events.index(
            "ins.done(assemble, s1)"
        )

    def test_assembler_alone_cannot_proceed(self):
        interp = Interpreter(parse_program(self.PROGRAM))
        assert not interp.succeeds(parse_goal("assembler(s1)"), Database())

    def test_iterated_protocol_until_conclusive(self):
        # "an experimental protocol may be repeated until a conclusive
        # result is achieved"
        prog = parse_program(
            """
            protocol(W) <- conclusive(W).
            protocol(W) <- not conclusive(W) * experiment(W) * protocol(W).
            experiment(W) <- attempts(W, N) * del.attempts(W, N) *
                             N2 is N + 1 * ins.attempts(W, N2) * check(W, N2).
            check(W, N) <- N >= 3 * ins.conclusive(W).
            check(W, N) <- N < 3.
            """
        )
        interp = Interpreter(prog)
        exe = interp.simulate(
            parse_goal("protocol(s1)"), parse_database("attempts(s1, 0).")
        )
        assert atom("attempts", "s1", 3) in exe.database
        assert atom("conclusive", "s1") in exe.database
