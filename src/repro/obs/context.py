"""Activation context: which instrumentation (if any) is live.

The engines do not take an instrumentation argument through every call;
they consult a single module-level slot at operation entry and hold the
reference for the duration of the search.  Hot loops then guard each
increment behind one ``enabled`` attribute check, so with
instrumentation off (the default) the cost is one ``is``-comparison per
entry point and nothing in the inner loops.

::

    inst = Instrumentation.create()
    with instrumented(inst):
        engine.solve(goal, db)
    inst.metrics.counter("search.configs_expanded")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import Metrics
from .tracer import Span, Tracer

__all__ = ["Instrumentation", "NOOP", "active", "instrumented"]


class Instrumentation:
    """A metrics registry plus a tracer, with one ``enabled`` switch.

    ``iso_depth`` tracks the *current* isolation nesting depth of the
    running search (``iso.depth_peak`` gauges its high-water mark); it
    lives here rather than in :class:`Metrics` because it is transient
    search state, not a reported value.
    """

    __slots__ = ("metrics", "tracer", "enabled", "iso_depth")

    def __init__(self, metrics: Metrics, tracer: Tracer, enabled: bool = True):
        self.metrics = metrics
        self.tracer = tracer
        self.enabled = enabled
        self.iso_depth = 0

    @classmethod
    def create(cls) -> "Instrumentation":
        """A fresh, enabled instrumentation bundle."""
        return cls(Metrics(), Tracer())

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Optional[Span]]:
        """Open a tracer span, or do nothing when disabled."""
        if not self.enabled:
            yield None
            return
        with self.tracer.span(name, **attrs) as span:
            yield span

    def enter_iso(self) -> None:
        """Record entry into a nested isolation search."""
        self.iso_depth += 1
        self.metrics.inc("iso.searches")
        self.metrics.gauge_max("iso.depth_peak", self.iso_depth)

    def exit_iso(self) -> None:
        self.iso_depth -= 1


#: The disabled singleton.  Engines hold either this or a live bundle;
#: either way the hot-path guard is the same ``.enabled`` check.
NOOP = Instrumentation(Metrics(), Tracer(), enabled=False)

#: The live instrumentation, or None when off.  Read directly (as
#: ``context._ACTIVE``) only by the hottest call sites; everyone else
#: goes through :func:`active`.
_ACTIVE: Optional[Instrumentation] = None


def active() -> Instrumentation:
    """The live instrumentation, or :data:`NOOP` when none is active."""
    return _ACTIVE if _ACTIVE is not None else NOOP


@contextmanager
def instrumented(
    instrumentation: Optional[Instrumentation] = None,
) -> Iterator[Instrumentation]:
    """Activate *instrumentation* (a fresh bundle if none) for a block.

    Nests: the previous activation is restored on exit.
    """
    global _ACTIVE
    inst = instrumentation if instrumentation is not None else Instrumentation.create()
    previous = _ACTIVE
    _ACTIVE = inst
    try:
        yield inst
    finally:
        _ACTIVE = previous
