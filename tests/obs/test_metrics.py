"""Metrics registry: counters, gauges, histograms, merge, snapshot."""

from repro.obs.metrics import RESERVOIR_CAP, HistogramSummary, Metrics


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        m = Metrics()
        assert m.counter("x") == 0
        m.inc("x")
        m.inc("x", 4)
        assert m.counter("x") == 5

    def test_counters_independent(self):
        m = Metrics()
        m.inc("a")
        m.inc("b", 2)
        assert (m.counter("a"), m.counter("b")) == (1, 2)


class TestGauges:
    def test_gauge_max_is_high_water_mark(self):
        m = Metrics()
        m.gauge_max("frontier", 3)
        m.gauge_max("frontier", 7)
        m.gauge_max("frontier", 5)
        assert m.gauge("frontier") == 7

    def test_set_gauge_overwrites(self):
        m = Metrics()
        m.set_gauge("limit", 100)
        m.set_gauge("limit", 50)
        assert m.gauge("limit") == 50


class TestHistograms:
    def test_observe_summarizes(self):
        m = Metrics()
        for v in (1.0, 3.0, 2.0):
            m.observe("answers", v)
        h = m.histograms["answers"]
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_percentiles_exact_under_cap(self):
        h = HistogramSummary()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentiles_in_as_dict(self):
        h = HistogramSummary()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        d = h.as_dict()
        assert d["p50"] == 2.0
        assert d["p95"] == 4.0

    def test_empty_percentile_is_zero(self):
        assert HistogramSummary().percentile(50) == 0.0

    def test_reservoir_bounded_and_deterministic(self):
        a, b = HistogramSummary(), HistogramSummary()
        for v in range(10 * RESERVOIR_CAP):
            a.observe(float(v))
            b.observe(float(v))
        assert len(a._samples) <= RESERVOIR_CAP
        assert a._samples == b._samples
        assert a.percentile(50) == b.percentile(50)
        # Decimation keeps the estimate near the true median.
        true_median = (10 * RESERVOIR_CAP - 1) / 2.0
        assert abs(a.percentile(50) - true_median) / true_median < 0.05

    def test_merge_combines_reservoirs(self):
        a, b = HistogramSummary(), HistogramSummary()
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (100.0, 200.0):
            b.observe(v)
        ma, mb = Metrics(), Metrics()
        ma.histograms["h"] = a
        mb.histograms["h"] = b
        ma.merge(mb)
        merged = ma.histograms["h"]
        assert merged.count == 4
        assert merged.percentile(100) == 200.0
        assert len(merged._samples) == 4


class TestSnapshotAndMerge:
    def test_snapshot_excludes_timers_on_request(self):
        m = Metrics()
        m.inc("c")
        m.add_time("t", 1.5)
        snap = m.snapshot(include_timers=False)
        assert "timers" not in snap
        assert snap["counters"] == {"c": 1}

    def test_snapshot_is_a_copy(self):
        m = Metrics()
        m.inc("c")
        snap = m.snapshot()
        snap["counters"]["c"] = 99
        assert m.counter("c") == 1

    def test_merge_adds_counters_maxes_gauges(self):
        a, b = Metrics(), Metrics()
        a.inc("c", 2)
        b.inc("c", 3)
        a.gauge_max("g", 10)
        b.gauge_max("g", 4)
        b.set_info("engine", "seqeval")
        b.observe("h", 2.0)
        a.observe("h", 5.0)
        a.merge(b)
        assert a.counter("c") == 5
        assert a.gauge("g") == 10
        assert a.info["engine"] == "seqeval"
        assert a.histograms["h"].count == 2
        assert a.histograms["h"].max == 5.0

    def test_reset_clears_everything(self):
        m = Metrics()
        m.inc("c")
        m.set_gauge("g", 1)
        m.set_info("i", "v")
        m.add_time("t", 0.1)
        m.reset()
        assert m.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "info": {},
            "timers": {},
        }


class TestTimers:
    def test_timer_accumulates(self):
        m = Metrics()
        with m.timer("t"):
            pass
        with m.timer("t"):
            pass
        assert m.timers["t"] >= 0.0
        # Two timed blocks accumulate into one entry.
        assert len(m.timers) == 1
