"""Tests for pretty-printing: output is readable and re-parseable."""

import pytest

from repro import (
    Database,
    Interpreter,
    parse_database,
    parse_goal,
    parse_program,
)
from repro.core.pretty import (
    format_database,
    format_goal,
    format_program,
    format_rule,
    format_trace,
)


class TestProgramFormatting:
    ROUND_TRIP_PROGRAMS = [
        "p(X) <- q(X) * ins.r(X).",
        "p <- a | b * c.",
        "t <- iso(del.x(a) * not y(b)).",
        "w(A, B) <- v(A, B) * A != B.",
        "f(X) <- g(X, Y) * Z is Y + 1 * ins.h(Z).",
        "p <- q.\np <- r.\ns(a).",
    ]

    @pytest.mark.parametrize("text", ROUND_TRIP_PROGRAMS)
    def test_round_trip(self, text):
        prog = parse_program(text)
        reparsed = parse_program(format_program(prog))
        assert [str(r) for r in reparsed.rules] == [str(r) for r in prog.rules]

    def test_base_directives_emitted(self):
        prog = parse_program("p <- ins.log(a).")
        out = format_program(prog, declare_base=True)
        assert "#base log/1." in out
        parse_program(out)  # still parseable

    def test_rules_grouped_by_head(self):
        prog = parse_program("p <- a.\np <- b.\nq <- c.")
        out = format_program(prog)
        assert "\n\n" in out  # blank line between p-group and q-group

    def test_format_rule_fact(self):
        prog = parse_program("axiom(a).")
        assert format_rule(prog.rules[0]) == "axiom(a)."


class TestGoalAndDatabase:
    def test_format_goal(self):
        g = parse_goal("p(X) * q(X)")
        assert format_goal(g) == "?- p(X) * q(X)."

    def test_database_round_trip(self):
        db = parse_database("p(a). q(b, 3). flag.")
        assert parse_database(format_database(db)) == db

    def test_empty_database(self):
        assert format_database(Database()) == ""


class TestTraceFormatting:
    def test_trace_lines(self):
        interp = Interpreter(parse_program("t <- ins.p(a) * iso(del.p(a))."))
        exe = interp.simulate(parse_goal("t"), Database())
        out = format_trace(exe.trace)
        assert "ins.p(a)" in out
        assert "iso:" in out
        assert "    del.p(a)" in out  # nested indentation
