"""OTLP/JSON export: wire-format shape, id rules, parent consistency."""

import json

import pytest

from repro import Database, parse_database, parse_goal, parse_program, select_engine
from repro.obs import (
    Instrumentation,
    Metrics,
    Tracer,
    instrumented,
    read_jsonl,
)
from repro.obs.otlp import export_otlp, metrics_to_otlp, spans_to_otlp


def _fixed_clock():
    ticks = iter(range(100))
    return lambda: float(next(ticks))


@pytest.fixture
def nested_tracer():
    tracer = Tracer(clock=_fixed_clock())
    with tracer.span("root", goal="g"):
        with tracer.span("child-a", depth=1):
            with tracer.span("leaf", ok=True):
                pass
        with tracer.span("child-b", weight=0.5):
            pass
    with tracer.span("second-root"):
        pass
    return tracer


def _spans(payload):
    return payload["resourceSpans"][0]["scopeSpans"][0]["spans"]


class TestSpanShape:
    def test_required_fields_present(self, nested_tracer):
        for span in _spans(spans_to_otlp(nested_tracer, epoch=0.0)):
            assert set(span) >= {
                "traceId", "spanId", "name", "kind",
                "startTimeUnixNano", "endTimeUnixNano", "attributes",
            }
            assert span["kind"] == 1  # SPAN_KIND_INTERNAL

    def test_id_encoding(self, nested_tracer):
        for span in _spans(spans_to_otlp(nested_tracer, epoch=0.0)):
            assert len(span["traceId"]) == 32
            assert len(span["spanId"]) == 16
            int(span["traceId"], 16)  # valid lowercase hex
            int(span["spanId"], 16)
            assert span["spanId"] != "0" * 16
            assert span["traceId"] != "0" * 32

    def test_parent_links_consistent(self, nested_tracer):
        spans = _spans(spans_to_otlp(nested_tracer, epoch=0.0))
        by_id = {s["spanId"]: s for s in spans}
        roots = [s for s in spans if "parentSpanId" not in s]
        assert len(roots) == 2
        for span in spans:
            parent_id = span.get("parentSpanId")
            if parent_id is None:
                continue
            parent = by_id[parent_id]  # parent must exist in the export
            # ... and trace membership must follow the parent chain.
            assert span["traceId"] == parent["traceId"]

    def test_roots_open_distinct_traces(self, nested_tracer):
        spans = _spans(spans_to_otlp(nested_tracer, epoch=0.0))
        roots = [s for s in spans if "parentSpanId" not in s]
        assert len({s["traceId"] for s in roots}) == 2

    def test_timestamps_are_nano_strings(self, nested_tracer):
        for span in _spans(spans_to_otlp(nested_tracer, epoch=0.0)):
            start = int(span["startTimeUnixNano"])
            end = int(span["endTimeUnixNano"])
            assert end >= start
            # fixed clock ticks are whole seconds
            assert start % 1_000_000_000 == 0

    def test_attributes_any_value_encoding(self, nested_tracer):
        spans = _spans(spans_to_otlp(nested_tracer, epoch=0.0))
        attrs = {s["name"]: s["attributes"] for s in spans}
        assert attrs["root"] == [
            {"key": "goal", "value": {"stringValue": "g"}}
        ]
        assert attrs["child-a"] == [{"key": "depth", "value": {"intValue": "1"}}]
        assert attrs["leaf"] == [{"key": "ok", "value": {"boolValue": True}}]
        assert attrs["child-b"] == [{"key": "weight", "value": {"doubleValue": 0.5}}]

    def test_deterministic_with_epoch(self, nested_tracer):
        one = spans_to_otlp(nested_tracer, epoch=0.0)
        two = spans_to_otlp(nested_tracer, epoch=0.0)
        assert one == two

    def test_accepts_parsed_jsonl(self, nested_tracer):
        parsed = read_jsonl(nested_tracer.to_jsonl())
        from_dicts = spans_to_otlp(parsed, epoch=0.0)
        from_tracer = spans_to_otlp(nested_tracer, epoch=0.0)
        assert from_dicts == from_tracer

    def test_resource_attributes(self, nested_tracer):
        payload = spans_to_otlp(nested_tracer, resource={"run.id": "r7"}, epoch=0.0)
        attrs = payload["resourceSpans"][0]["resource"]["attributes"]
        keys = {a["key"]: a["value"] for a in attrs}
        assert keys["service.name"] == {"stringValue": "repro-tdlog"}
        assert keys["run.id"] == {"stringValue": "r7"}


class TestMetricsShape:
    @pytest.fixture
    def metrics(self):
        m = Metrics()
        m.inc("search.steps", 7)
        m.set_gauge("budget.spent", 7.0)
        m.observe("answers.per_key", 2.0)
        m.observe("answers.per_key", 4.0)
        m.add_time("time.full", 0.25)
        m.set_info("engine.backend", "Interpreter")
        return m

    def _metrics(self, payload):
        return payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]

    def test_counter_becomes_monotonic_sum(self, metrics):
        out = {m["name"]: m for m in self._metrics(metrics_to_otlp(metrics, epoch=0.0))}
        sum_ = out["search.steps"]["sum"]
        assert sum_["isMonotonic"] is True
        assert sum_["aggregationTemporality"] == 2  # CUMULATIVE
        assert sum_["dataPoints"][0]["asInt"] == "7"

    def test_gauge_becomes_gauge(self, metrics):
        out = {m["name"]: m for m in self._metrics(metrics_to_otlp(metrics, epoch=0.0))}
        assert out["budget.spent"]["gauge"]["dataPoints"][0]["asDouble"] == 7.0

    def test_histogram_summary_fields(self, metrics):
        out = {m["name"]: m for m in self._metrics(metrics_to_otlp(metrics, epoch=0.0))}
        point = out["answers.per_key"]["histogram"]["dataPoints"][0]
        assert point["count"] == "2"
        assert point["sum"] == 6.0
        assert point["min"] == 2.0 and point["max"] == 4.0

    def test_timer_becomes_seconds_sum(self, metrics):
        out = {m["name"]: m for m in self._metrics(metrics_to_otlp(metrics, epoch=0.0))}
        assert out["time.full"]["unit"] == "s"
        assert out["time.full"]["sum"]["dataPoints"][0]["asDouble"] == 0.25

    def test_info_lands_on_resource(self, metrics):
        payload = metrics_to_otlp(metrics, epoch=0.0)
        attrs = payload["resourceMetrics"][0]["resource"]["attributes"]
        keys = {a["key"]: a["value"] for a in attrs}
        assert keys["repro.engine.backend"] == {"stringValue": "Interpreter"}

    def test_accepts_snapshot_dict(self, metrics):
        assert metrics_to_otlp(metrics.snapshot(), epoch=0.0) == metrics_to_otlp(
            metrics, epoch=0.0
        )


class TestExportFromRealRun:
    def test_combined_export_round_trips_through_json(self):
        program = parse_program(
            """
            transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
            withdraw(Acct, Amt) <-
                balance(Acct, Bal) * Bal >= Amt *
                del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
            deposit(Acct, Amt) <-
                balance(Acct, Bal) *
                del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
            """
        )
        db = parse_database("balance(a, 100). balance(b, 10).")
        engine = select_engine(program, "transfer(a, b, 30)")
        inst = Instrumentation.create()
        with instrumented(inst):
            list(engine.solve(parse_goal("transfer(a, b, 30)"), db))
        payload = json.loads(json.dumps(export_otlp(inst, epoch=0.0)))
        assert _spans(payload), "expected at least one span"
        names = [
            m["name"]
            for m in payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        ]
        assert "unify.attempts" in names
        assert "table.misses" in names
