"""Static analysis of TD programs: the sublanguage classifier.

Section 4-5 of the paper locates the complexity of workflows in three
modeling features -- *concurrency*, *recursion*, and *deletion* -- and
carves out sublanguages by controlling them:

* **query-only TD** (tuple testing only): classical Datalog;
* **insert-only TD** (no deletion): the natural language of scientific
  workflows whose experiment histories only grow;
* **nonrecursive TD**: data complexity below PTIME (Theorem 4.7);
* **sequential TD** (no ``|``): EXPTIME-complete (Theorem 4.5);
* **fully bounded TD** (Section 5): bounded concurrency plus sequential
  tail recursion -- processes may be created and destroyed but their
  number never grows with recursion depth, so the configuration space is
  finite and execution is decidable with a practical procedure.

This module computes the call graph, its strongly connected components,
which features each rule uses, whether every recursive call is a
*sequential tail call* (the fully-bounded condition), and a conservative
variable-boundedness (safety) check.  :func:`analyze` produces a report;
:func:`classify` names the smallest sublanguage containing the program.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
    formula_variables,
    walk_formulas,
)
from .program import Program, Rule
from .terms import Signature, Variable

__all__ = ["Sublanguage", "Analysis", "analyze", "classify"]


class Sublanguage(enum.Enum):
    """The sublanguages studied by the paper, smallest-first."""

    QUERY_ONLY = "query-only TD (classical Datalog)"
    NONRECURSIVE = "nonrecursive TD"
    FULLY_BOUNDED = "fully bounded TD"
    SEQUENTIAL = "sequential TD"
    FULL = "full TD"


@dataclass
class Analysis:
    """Everything the classifier learned about a program."""

    uses_conc: bool
    uses_ins: bool
    uses_del: bool
    uses_neg: bool
    uses_builtin: bool
    uses_iso: bool
    recursive: bool
    recursion_in_conc: bool
    recursion_in_iso: bool
    tail_recursive_only: bool
    sccs: Tuple[Tuple[Signature, ...], ...]
    recursive_signatures: FrozenSet[Signature]
    safety_warnings: Tuple[str, ...]

    @property
    def insert_only(self) -> bool:
        """No deletion: the scientific-workflow fragment."""
        return not self.uses_del

    @property
    def query_only(self) -> bool:
        return not (self.uses_ins or self.uses_del)

    @property
    def sequential(self) -> bool:
        return not self.uses_conc

    @property
    def fully_bounded(self) -> bool:
        """Bounded concurrency + sequential tail recursion.

        Recursion never occurs inside ``|`` or ``iso`` and every
        recursive call is the final step of its rule body, so unfolding
        never grows the process: the number of concurrent processes is
        fixed by the goal, and each runs in bounded space over a finite
        set of residual programs.
        """
        if not self.recursive:
            return True
        return (
            not self.recursion_in_conc
            and not self.recursion_in_iso
            and self.tail_recursive_only
        )

    def classify(self) -> Sublanguage:
        if self.query_only and not self.uses_conc:
            return Sublanguage.QUERY_ONLY
        if not self.recursive:
            return Sublanguage.NONRECURSIVE
        if self.fully_bounded:
            return Sublanguage.FULLY_BOUNDED
        if self.sequential:
            return Sublanguage.SEQUENTIAL
        return Sublanguage.FULL

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly summary (for tooling and dashboards)."""
        return {
            "sublanguage": self.classify().name,
            "uses_conc": self.uses_conc,
            "uses_ins": self.uses_ins,
            "uses_del": self.uses_del,
            "uses_neg": self.uses_neg,
            "uses_builtin": self.uses_builtin,
            "uses_iso": self.uses_iso,
            "recursive": self.recursive,
            "recursion_in_conc": self.recursion_in_conc,
            "recursion_in_iso": self.recursion_in_iso,
            "tail_recursive_only": self.tail_recursive_only,
            "fully_bounded": self.fully_bounded,
            "insert_only": self.insert_only,
            "query_only": self.query_only,
            "recursive_predicates": sorted(
                "%s/%d" % sig for sig in self.recursive_signatures
            ),
            "safety_warnings": list(self.safety_warnings),
        }

    def report(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            "sublanguage:        %s" % self.classify().value,
            "concurrency:        %s" % _yn(self.uses_conc),
            "insertion:          %s" % _yn(self.uses_ins),
            "deletion:           %s" % _yn(self.uses_del),
            "absence tests:      %s" % _yn(self.uses_neg),
            "builtins:           %s" % _yn(self.uses_builtin),
            "isolation:          %s" % _yn(self.uses_iso),
            "recursive:          %s" % _yn(self.recursive),
        ]
        if self.recursive:
            lines += [
                "recursion in '|':   %s" % _yn(self.recursion_in_conc),
                "recursion in iso:   %s" % _yn(self.recursion_in_iso),
                "tail recursion only:%s" % _yn(self.tail_recursive_only),
                "fully bounded:      %s" % _yn(self.fully_bounded),
            ]
        for warning in self.safety_warnings:
            lines.append("warning: %s" % warning)
        return "\n".join(lines)


def _yn(flag: bool) -> str:
    return "yes" if flag else "no"


# ---------------------------------------------------------------------------
# Call graph and SCCs
# ---------------------------------------------------------------------------


def _call_graph(program: Program) -> Dict[Signature, Set[Signature]]:
    graph: Dict[Signature, Set[Signature]] = {
        sig: set() for sig in program.derived_signatures()
    }
    for rule in program.rules:
        for sub in walk_formulas(rule.body):
            if isinstance(sub, Call):
                graph[rule.head.signature].add(sub.atom.signature)
    return graph


def _tarjan_sccs(graph: Dict[Signature, Set[Signature]]) -> List[List[Signature]]:
    """Tarjan's algorithm, iterative (programs can define many predicates)."""
    index: Dict[Signature, int] = {}
    lowlink: Dict[Signature, int] = {}
    on_stack: Set[Signature] = set()
    stack: List[Signature] = []
    sccs: List[List[Signature]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue  # call to a base predicate already resolved
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def _recursive_signatures(
    graph: Dict[Signature, Set[Signature]], sccs: Sequence[Sequence[Signature]]
) -> Set[Signature]:
    recursive: Set[Signature] = set()
    for component in sccs:
        if len(component) > 1:
            recursive.update(component)
        else:
            (only,) = component
            if only in graph.get(only, ()):
                recursive.add(only)
    return recursive


# ---------------------------------------------------------------------------
# Tail-position analysis (the fully-bounded condition)
# ---------------------------------------------------------------------------


def _recursive_calls_positioned(
    body: Formula, recursive_sigs: Set[Signature], scc_of: Dict[Signature, int], head_scc: int
) -> Iterator[Tuple[Call, bool, bool, bool]]:
    """Yield (call, is_tail, inside_conc, inside_iso) for every call in
    *body* that is recursive with respect to the head's SCC."""

    def walk(f: Formula, tail: bool, in_conc: bool, in_iso: bool):
        if isinstance(f, Call):
            sig = f.atom.signature
            if sig in recursive_sigs and scc_of.get(sig) == head_scc:
                yield f, tail, in_conc, in_iso
            return
        if isinstance(f, Seq):
            last = len(f.parts) - 1
            for i, p in enumerate(f.parts):
                yield from walk(p, tail and i == last, in_conc, in_iso)
            return
        if isinstance(f, Conc):
            for p in f.parts:
                yield from walk(p, False, True, in_iso)
            return
        if isinstance(f, Isol):
            yield from walk(f.body, False, in_conc, True)
            return
        # Elementary formulas contain no calls.

    yield from walk(body, True, False, False)


# ---------------------------------------------------------------------------
# Conservative safety (boundedness of update arguments)
# ---------------------------------------------------------------------------


def _safety_warnings(program: Program) -> List[str]:
    warnings: List[str] = []
    for rule in program.rules:
        bound = {v for v in rule.head.variables()}
        after = _bound_after(rule.body, frozenset(bound), warnings, str(rule.head))
        missing = [v for v in rule.head.variables() if v not in after]
        # Head variables bound neither by the call pattern nor the body
        # would produce non-ground answers at runtime; flag them here.
        del missing  # head vars are in `bound` already; nothing to check
    return warnings


def _bound_after(
    f: Formula, bound: FrozenSet[Variable], warnings: List[str], where: str
) -> FrozenSet[Variable]:
    if isinstance(f, Truth):
        return bound
    if isinstance(f, Test):
        return bound | set(f.atom.variables())
    if isinstance(f, Neg):
        return bound
    if isinstance(f, (Ins, Del)):
        unbound = [v for v in f.atom.variables() if v not in bound]
        if unbound:
            op = "ins" if isinstance(f, Ins) else "del"
            warnings.append(
                "in rule for %s: %s.%s may run with unbound %s"
                % (where, op, f.atom, ", ".join(str(v) for v in unbound))
            )
        return bound
    if isinstance(f, Call):
        return bound | set(f.atom.variables())
    if isinstance(f, Builtin):
        out = set(bound)
        needed = set(formula_variables(f))
        if f.op == "is" and isinstance(f.left, Variable):
            needed.discard(f.left)
            out.add(f.left)
        unbound = needed - bound
        if unbound:
            warnings.append(
                "in rule for %s: builtin '%s' may run with unbound %s"
                % (where, f, ", ".join(sorted(str(v) for v in unbound)))
            )
        return frozenset(out)
    if isinstance(f, Seq):
        current = bound
        for p in f.parts:
            current = _bound_after(p, current, warnings, where)
        return current
    if isinstance(f, Conc):
        # A branch may rely on bindings produced by a sibling at runtime;
        # be optimistic (warn less) by granting each branch the variables
        # any sibling could bind.
        sibling_bound = [frozenset(_bound_after(p, bound, [], where)) for p in f.parts]
        out = set(bound)
        for i, p in enumerate(f.parts):
            granted = set(bound)
            for j, sb in enumerate(sibling_bound):
                if j != i:
                    granted |= sb
            out |= _bound_after(p, frozenset(granted), warnings, where)
        return frozenset(out)
    if isinstance(f, Isol):
        return _bound_after(f.body, bound, warnings, where)
    return bound


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze(program: Program, goal: Optional[Formula] = None) -> Analysis:
    """Analyze *program* (and optionally a goal executed against it)."""
    formulas: List[Formula] = [r.body for r in program.rules]
    if goal is not None:
        formulas.append(program.resolve_goal(goal))

    uses = {"conc": False, "ins": False, "del": False, "neg": False,
            "builtin": False, "iso": False}
    for body in formulas:
        for sub in walk_formulas(body):
            if isinstance(sub, Conc):
                uses["conc"] = True
            elif isinstance(sub, Ins):
                uses["ins"] = True
            elif isinstance(sub, Del):
                uses["del"] = True
            elif isinstance(sub, Neg):
                uses["neg"] = True
            elif isinstance(sub, Builtin):
                uses["builtin"] = True
            elif isinstance(sub, Isol):
                uses["iso"] = True

    graph = _call_graph(program)
    sccs = _tarjan_sccs(graph)
    recursive_sigs = _recursive_signatures(graph, sccs)
    scc_of: Dict[Signature, int] = {}
    for i, component in enumerate(sccs):
        for sig in component:
            scc_of[sig] = i

    recursion_in_conc = False
    recursion_in_iso = False
    tail_only = True
    for rule in program.rules:
        head_scc = scc_of.get(rule.head.signature)
        if head_scc is None:
            continue
        for _call, tail, in_conc, in_iso in _recursive_calls_positioned(
            rule.body, recursive_sigs, scc_of, head_scc
        ):
            if in_conc:
                recursion_in_conc = True
            if in_iso:
                recursion_in_iso = True
            if not tail:
                tail_only = False

    return Analysis(
        uses_conc=uses["conc"],
        uses_ins=uses["ins"],
        uses_del=uses["del"],
        uses_neg=uses["neg"],
        uses_builtin=uses["builtin"],
        uses_iso=uses["iso"],
        recursive=bool(recursive_sigs),
        recursion_in_conc=recursion_in_conc,
        recursion_in_iso=recursion_in_iso,
        tail_recursive_only=tail_only,
        sccs=tuple(tuple(sorted(c)) for c in sccs),
        recursive_signatures=frozenset(recursive_sigs),
        safety_warnings=tuple(_safety_warnings(program)),
    )


def classify(program: Program, goal: Optional[Formula] = None) -> Sublanguage:
    """The smallest paper sublanguage containing *program* (and *goal*)."""
    return analyze(program, goal).classify()
