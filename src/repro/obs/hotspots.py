"""Per-rule cost attribution: where did the work go?

The metrics registry (:mod:`repro.obs.metrics`) answers *how much* work
an execution did -- ``unify.attempts``, ``search.steps``, ``por.steps_pruned``
-- but not *where* it went.  This module adds the missing dimension: a
:class:`CostAttributor` maintains an explicit stack of attribution
frames, each optionally naming a ``rule``, ``predicate``, and ``phase``
(missing fields inherit from enclosing frames), and every charge --
wall time, unify attempts, step expansions, database delta sizes,
POR pruning credits -- lands on both

* the *effective key* ``(rule, predicate, phase)`` in force at the
  charge site (drives the ranked hotspot table), and
* the full *frame path* (drives the folded-stack / speedscope exports),

so the flame view and the table are two projections of one stream and
their totals agree by construction.

Discipline (same as :mod:`repro.obs.provenance`): attribution is **off
by default**; every engine hot loop pays exactly one ``is not None``
check when it is off, and the engine counters are byte-identical either
way.  Engines accept an explicit ``attribution=`` argument that beats
the ambient attributor installed by :func:`attributing` -- explicit
beats ambient, ambient beats nothing.

Wall-time accounting is settle-based: the attributor keeps one global
mark (`perf_counter` timestamp of the last attribution event) and every
push/pop/:meth:`settle_into` charges the elapsed interval to exactly one
context, so intervals partition the profiled wall clock and no time is
double counted even across nested engines and suspended generators.
Frames are popped by *token* (removed wherever they sit in the stack),
so non-LIFO teardown of abandoned generators cannot corrupt the stack.

This module deliberately imports nothing from :mod:`repro.core` --
``repro.core.unify`` reads the ambient slot at module level, so the
dependency must point one way only.
"""

from __future__ import annotations

import json
import re
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "CostAttributor",
    "active_attributor",
    "attributing",
    "engine_frame",
    "meter_engine",
    "rule_label",
    "UNATTRIBUTED",
]

#: Placeholder for a key field no enclosing frame supplies.
UNATTRIBUTED = "(unattributed)"

#: Cost kinds every attributor tracks (time is in seconds).
COST_KINDS = (
    "time",
    "unify.attempts",
    "steps.expansions",
    "db.delta",
    "por.pruned_credit",
)

_SENTINEL = object()


class _Frame:
    __slots__ = ("token", "rule", "predicate", "phase", "key", "path")

    def __init__(self, token, rule, predicate, phase, key, path):
        self.token = token
        self.rule = rule
        self.predicate = predicate
        self.phase = phase
        self.key = key          # effective (rule, predicate, phase)
        self.path = path        # tuple of (kind, label) pairs, root first


def _new_costs() -> Dict[str, float]:
    return {}


def _charge_into(bucket: Dict[str, float], kind: str, amount: float) -> None:
    bucket[kind] = bucket.get(kind, 0.0) + amount


def _sanitize(label: str) -> str:
    # Folded-stack frames are ";"-separated; speedscope is safe either
    # way but one sanitizer keeps the two exports in agreement.
    return label.replace(";", ",").replace("\n", " ")


class CostAttributor:
    """Explicit-stack cost profiler (see module docstring).

    ``clock`` is injectable for deterministic tests; it must be a
    monotonically non-decreasing zero-argument callable.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._stack: List[_Frame] = []
        self._next_token = 0
        self._mark: Optional[float] = None
        # (rule, predicate, phase) -> {kind: amount}
        self.by_key: Dict[Tuple[str, str, str], Dict[str, float]] = {}
        # frame path (tuple of (frame-kind, label)) -> {kind: amount}
        self.by_path: Dict[Tuple[Tuple[str, str], ...], Dict[str, float]] = {}

    # -- stack ------------------------------------------------------------------

    def _top(self) -> Optional[_Frame]:
        return self._stack[-1] if self._stack else None

    def push(
        self,
        rule: Optional[str] = None,
        predicate: Optional[str] = None,
        phase: Optional[str] = None,
        label: Optional[str] = None,
    ) -> int:
        """Push an attribution frame; returns a token for :meth:`pop`.

        Missing key fields inherit from the enclosing frame.  ``label``
        overrides the frame's display name in path exports (defaults to
        the most specific field supplied).
        """
        self._settle(None)
        top = self._top()
        eff_rule = rule if rule is not None else (top.rule if top else None)
        eff_pred = predicate if predicate is not None else (
            top.predicate if top else None
        )
        eff_phase = phase if phase is not None else (top.phase if top else None)
        key = (
            eff_rule if eff_rule is not None else UNATTRIBUTED,
            eff_pred if eff_pred is not None else UNATTRIBUTED,
            eff_phase if eff_phase is not None else UNATTRIBUTED,
        )
        if rule is not None:
            fkind, flabel = "rule", rule
        elif predicate is not None:
            fkind, flabel = "pred", predicate
        elif phase is not None:
            fkind, flabel = "phase", phase
        else:
            fkind, flabel = "frame", label or "(frame)"
        if label is not None:
            flabel = label
        parent_path = top.path if top else ()
        path = parent_path + ((fkind, _sanitize(flabel)),)
        token = self._next_token
        self._next_token += 1
        self._stack.append(
            _Frame(token, eff_rule, eff_pred, eff_phase, key, path)
        )
        return token

    def pop(self, token: int) -> None:
        """Remove the frame identified by *token*, wherever it sits.

        Tolerating non-LIFO pops keeps abandoned generators (isolation
        runners, deferred DFS expansions) from corrupting attribution
        for their surviving siblings.
        """
        self._settle(None)
        for i in range(len(self._stack) - 1, -1, -1):
            if self._stack[i].token == token:
                del self._stack[i]
                return

    @contextmanager
    def frame(self, rule=None, predicate=None, phase=None, label=None):
        token = self.push(rule=rule, predicate=predicate, phase=phase, label=label)
        try:
            yield
        finally:
            self.pop(token)

    # -- charging ---------------------------------------------------------------

    def _context(self, predicate: Optional[str]):
        """Resolve the (key, path) a charge should land on."""
        top = self._top()
        if top is None:
            base_key = (UNATTRIBUTED, UNATTRIBUTED, UNATTRIBUTED)
            base_path: Tuple[Tuple[str, str], ...] = ()
        else:
            base_key, base_path = top.key, top.path
        if predicate is None:
            return base_key, base_path
        key = (base_key[0], predicate, base_key[2])
        path = base_path + (("pred", _sanitize(predicate)),)
        return key, path

    def _settle(self, predicate: Optional[str]) -> None:
        now = self._clock()
        if self._mark is not None:
            dt = now - self._mark
            if dt > 0:
                key, path = self._context(predicate)
                _charge_into(self.by_key.setdefault(key, _new_costs()), "time", dt)
                _charge_into(self.by_path.setdefault(path, _new_costs()), "time", dt)
        self._mark = now

    def mark(self) -> None:
        """Settle elapsed wall time into the current frame context."""
        self._settle(None)

    def settle_into(self, predicate: str) -> None:
        """Settle elapsed wall time into the current context refined by
        *predicate* (used by step metering: time to *produce* a step is
        charged to the predicate the step turned out to act on)."""
        self._settle(predicate)

    def charge(self, kind: str, amount: float = 1, predicate: Optional[str] = None):
        """Charge *amount* of counter-kind cost to the current context,
        optionally refined by a site-supplied *predicate* leaf."""
        key, path = self._context(predicate)
        _charge_into(self.by_key.setdefault(key, _new_costs()), kind, float(amount))
        _charge_into(self.by_path.setdefault(path, _new_costs()), kind, float(amount))

    # -- engine helpers ---------------------------------------------------------

    def meter_steps(self, steps) -> Iterator:
        """Wrap a small-step ``Step`` iterator with per-step attribution.

        Time to produce each step -- and the consumer's processing time
        until it pulls the next one -- is charged to the predicate of
        the step's action; one ``steps.expansions`` is charged per step,
        plus the action's database delta size.  Sentinel-based ``next``
        keeps the wrapper exception-transparent for ``StopIteration``.
        """
        self.mark()
        pred = None
        while True:
            step = next(steps, _SENTINEL)
            if step is _SENTINEL:
                self.mark()
                return
            pred = _action_predicate(step.action)
            self.settle_into(pred)
            self.charge("steps.expansions", 1, predicate=pred)
            delta = _action_delta_size(step.action)
            if delta:
                self.charge("db.delta", delta, predicate=pred)
            yield step
            self.settle_into(pred)

    def meter_phase(self, gen, phase_name: str) -> Iterator:
        """Wrap a generator so that time spent *producing* its items is
        attributed under a ``phase_name`` frame, while consumer time
        between pulls stays with the caller's context.  This is how
        suspended generators (isolation sub-searches) are bracketed
        without leaking their frame over the consumer's work."""
        while True:
            token = self.push(phase=phase_name)
            try:
                item = next(gen, _SENTINEL)
            finally:
                self.pop(token)
            if item is _SENTINEL:
                return
            yield item

    def predicate_rollup(self) -> Dict[str, Dict[str, float]]:
        """Aggregate costs per predicate (for why-not cost citation)."""
        out: Dict[str, Dict[str, float]] = {}
        for (rule, pred, phase), costs in self.by_key.items():
            bucket = out.setdefault(pred, _new_costs())
            for kind, amount in costs.items():
                _charge_into(bucket, kind, amount)
        return out

    def rule_rollup(self) -> Dict[str, Dict[str, float]]:
        """Aggregate *self* costs per rule."""
        out: Dict[str, Dict[str, float]] = {}
        for (rule, pred, phase), costs in self.by_key.items():
            bucket = out.setdefault(rule, _new_costs())
            for kind, amount in costs.items():
                _charge_into(bucket, kind, amount)
        return out

    def cumulative_rollup(self, frame_kind: str = "rule") -> Dict[str, Dict[str, float]]:
        """Aggregate cumulative costs per frame label of *frame_kind*:
        every path's costs are credited to each distinct ``frame_kind``
        frame on it (so a rule that calls itself is counted once)."""
        out: Dict[str, Dict[str, float]] = {}
        for path, costs in self.by_path.items():
            labels = {label for kind, label in path if kind == frame_kind}
            for label in labels:
                bucket = out.setdefault(label, _new_costs())
                for kind, amount in costs.items():
                    _charge_into(bucket, kind, amount)
        return out

    def merge(self, other: "CostAttributor") -> None:
        """Fold *other*'s aggregated costs into this attributor.

        Used to combine per-workload attributors into one suite-wide
        flame view; stacks are not merged (only finished aggregates),
        so merge only quiescent attributors.
        """
        for key, costs in other.by_key.items():
            bucket = self.by_key.setdefault(key, _new_costs())
            for kind, amount in costs.items():
                _charge_into(bucket, kind, amount)
        for path, costs in other.by_path.items():
            bucket = self.by_path.setdefault(path, _new_costs())
            for kind, amount in costs.items():
                _charge_into(bucket, kind, amount)

    # -- totals / coverage ------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        out = _new_costs()
        for costs in self.by_key.values():
            for kind, amount in costs.items():
                _charge_into(out, kind, amount)
        return out

    def path_totals(self) -> Dict[str, float]:
        out = _new_costs()
        for costs in self.by_path.values():
            for kind, amount in costs.items():
                _charge_into(out, kind, amount)
        return out

    def coverage(self) -> Dict[str, float]:
        """Fraction of each cost kind attributed to *named* keys.

        A key field is named when some frame (or charge site) supplied
        it; ``time`` coverage requires a named ``phase``, counter
        coverage requires a named ``predicate``.
        """
        total = _new_costs()
        named = _new_costs()
        for (rule, pred, phase), costs in self.by_key.items():
            for kind, amount in costs.items():
                _charge_into(total, kind, amount)
                field = phase if kind == "time" else pred
                if field != UNATTRIBUTED:
                    _charge_into(named, kind, amount)
        return {
            kind: (named.get(kind, 0.0) / total[kind]) if total.get(kind) else 1.0
            for kind in COST_KINDS
        }

    # -- reporting --------------------------------------------------------------

    def table(self, top: int = 20) -> str:
        """Ranked self/cumulative hotspot table per rule and predicate."""
        lines: List[str] = []
        totals = self.totals()
        lines.append(
            "total: %.1fms  %d unify  %d expansions  %d db-delta  %d pruned"
            % (
                totals.get("time", 0.0) * 1e3,
                totals.get("unify.attempts", 0),
                totals.get("steps.expansions", 0),
                totals.get("db.delta", 0),
                totals.get("por.pruned_credit", 0),
            )
        )
        cov = self.coverage()
        lines.append(
            "coverage: %.1f%% time / %.1f%% unify attributed to named keys"
            % (cov["time"] * 100.0, cov["unify.attempts"] * 100.0)
        )
        for title, kind in (("rule", "rule"), ("predicate", "pred")):
            self_costs = (
                self.rule_rollup() if kind == "rule" else self.predicate_rollup()
            )
            cum = self.cumulative_rollup(kind)
            lines.append("")
            lines.append(
                "%-40s %10s %10s %10s %10s"
                % ("by " + title, "self-ms", "cum-ms", "unify", "expand")
            )
            ranked = sorted(
                self_costs.items(),
                key=lambda kv: (
                    -kv[1].get("time", 0.0),
                    -kv[1].get("unify.attempts", 0.0),
                    kv[0],
                ),
            )
            for label, costs in ranked[:top]:
                lines.append(
                    "%-40s %10.2f %10.2f %10d %10d"
                    % (
                        label[:40],
                        costs.get("time", 0.0) * 1e3,
                        cum.get(label, {}).get("time", costs.get("time", 0.0))
                        * 1e3,
                        costs.get("unify.attempts", 0),
                        costs.get("steps.expansions", 0),
                    )
                )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-friendly dump of keys, rollups, totals, and coverage."""
        return {
            "totals": self.totals(),
            "coverage": self.coverage(),
            "keys": [
                {"rule": k[0], "predicate": k[1], "phase": k[2], "costs": costs}
                for k, costs in sorted(self.by_key.items())
            ],
            "rules": self.rule_rollup(),
            "predicates": self.predicate_rollup(),
        }

    def folded(self, kind: str = "time") -> str:
        """flamegraph.pl-compatible folded stacks.

        ``time`` is emitted in integer microseconds; counter kinds are
        emitted as integer counts.  Zero-weight stacks are dropped.
        """
        scale = 1e6 if kind == "time" else 1.0
        lines = []
        for path, costs in sorted(self.by_path.items()):
            amount = costs.get(kind, 0.0) * scale
            weight = int(round(amount))
            if weight <= 0:
                continue
            frames = [label for _fk, label in path] or ["(root)"]
            lines.append("%s %d" % (";".join(frames), weight))
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, kind: str = "time", name: str = "tdlog hotspots") -> dict:
        """Speedscope ``sampled`` profile built from the same path
        aggregation as :meth:`folded` (weights in microseconds for
        ``time``, raw counts otherwise)."""
        scale = 1e6 if kind == "time" else 1.0
        frame_index: Dict[str, int] = {}
        frames: List[dict] = []
        samples: List[List[int]] = []
        weights: List[float] = []
        for path, costs in sorted(self.by_path.items()):
            weight = costs.get(kind, 0.0) * scale
            if weight <= 0:
                continue
            stack = []
            for _fk, label in path or (("frame", "(root)"),):
                idx = frame_index.get(label)
                if idx is None:
                    idx = frame_index[label] = len(frames)
                    frames.append({"name": label})
                stack.append(idx)
            samples.append(stack)
            weights.append(weight)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "microseconds" if kind == "time" else "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": "tdlog profile hotspots",
        }

    def speedscope_json(self, kind: str = "time", name: str = "tdlog hotspots") -> str:
        return json.dumps(self.speedscope(kind=kind, name=name), indent=2)


_RENAME_SUFFIX = re.compile(r"#\d+")


def rule_label(head: object) -> str:
    """Stable display label for a rule head: strips the ``#N`` suffixes
    variable freshening appends (see ``Program.fresh_rules_for``), so
    every unfolding of one source rule lands on one attribution key."""
    return _RENAME_SUFFIX.sub("", str(head))


def _action_predicate(action) -> str:
    """Best-effort predicate name for a transition-step action (duck
    typed -- this module cannot import :mod:`repro.core`)."""
    atom = getattr(action, "atom", None)
    pred = getattr(atom, "pred", None)
    if pred is not None:
        return str(pred)
    kind = getattr(action, "kind", None)
    return str(kind) if kind else UNATTRIBUTED


def _action_delta_size(action) -> int:
    """Database-delta size of an action: 1 for ``ins``/``del``, the
    flattened subtrace update count for ``iso``, else 0."""
    kind = getattr(action, "kind", None)
    if kind in ("ins", "del"):
        return 1
    if kind == "iso":
        total = 0
        for sub in getattr(action, "subtrace", None) or ():
            total += _action_delta_size(sub)
        return total
    return 0


# -- ambient attributor ------------------------------------------------------------
#
# Same shape as provenance's ambient recorder: a module-level slot the
# engines consult through one ``is not None`` guard, plus a context
# manager that installs/restores it.  Explicit ``attribution=`` engine
# arguments always win over the ambient slot.

_ACTIVE: Optional[CostAttributor] = None


def active_attributor() -> Optional[CostAttributor]:
    """The ambient attributor installed by :func:`attributing`, or None."""
    return _ACTIVE


@contextmanager
def attributing(attributor: Optional[CostAttributor] = None):
    """Install *attributor* (default: a fresh one) as the ambient
    attributor for the dynamic extent of the ``with`` block."""
    global _ACTIVE
    attr = attributor if attributor is not None else CostAttributor()
    previous = _ACTIVE
    _ACTIVE = attr
    try:
        yield attr
    finally:
        _ACTIVE = previous


@contextmanager
def engine_frame(attr: Optional[CostAttributor], phase: str):
    """Engine entry helper for *plain-function* engine bodies: install
    *attr* ambiently (so deep charge sites like unification see it) and
    push a phase frame for the block.  No-op when *attr* is None."""
    if attr is None:
        yield
        return
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = attr
    token = attr.push(phase=phase)
    try:
        yield
    finally:
        attr.pop(token)
        _ACTIVE = previous


def meter_engine(attr: Optional[CostAttributor], gen, phase: str) -> Iterator:
    """Engine entry helper for *generator* engine bodies: each pull of
    *gen* runs with *attr* installed ambiently and a phase frame pushed,
    so nothing leaks over the consumer while the generator is suspended.
    Passes *gen* through untouched when *attr* is None."""
    if attr is None:
        yield from gen
        return
    global _ACTIVE
    while True:
        previous = _ACTIVE
        _ACTIVE = attr
        token = attr.push(phase=phase)
        try:
            item = next(gen, _SENTINEL)
        finally:
            attr.pop(token)
            _ACTIVE = previous
        if item is _SENTINEL:
            return
        yield item
