"""Answer explanation on top of the provenance recorder.

Three tools, all consuming the derivation DAG a
:class:`~repro.obs.provenance.ProvenanceRecorder` captures:

* **Proof trees** (:func:`explain_goal` + :func:`render_proof_tree`):
  run a goal with a fresh recorder attached and render, for each
  solution, the chain of steps (or big-step rule applications) that
  produced it -- bindings and database deltas included.  Traces double
  as certificates: :func:`verify_execution` replays a small-step trace
  over the initial state and checks it reproduces the claimed final
  state (see :func:`repro.core.transitions.replay_actions`).

* **Why-not reports** (:func:`why_not_report`): when a goal has no
  (or fewer than expected) solutions, summarize where the search died
  -- the disposition histogram, which branches failed to unify, were
  pruned, or were subsumed, and the deepest partial derivations.

* **Pruning audit** (:func:`audit_por_goal`,
  :func:`audit_profile_config`): every ample-set decision the
  partial-order reducer records carries a witness -- the ample branch's
  frontier footprint, the deferred branches' closures, and the shared
  variables.  The audit re-checks each witness with an *independent*
  re-implementation of the commutation test, and replays the workload
  with reduction forced off (:func:`repro.core.por.por_disabled`) to
  confirm the solution set is unchanged.  A pruned step that fails
  either check is *unexplained* -- a reducer bug.

This module imports the core engines, so ``repro.obs`` does **not**
import it at package level (the core imports ``repro.obs``); import it
directly as ``from repro.obs import explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .context import Instrumentation, instrumented
from .provenance import ProvNode, ProvenanceRecorder, recording

__all__ = [
    "PorAudit",
    "audit_por_goal",
    "audit_profile_config",
    "check_ample_witness",
    "explain_goal",
    "render_proof_tree",
    "to_dot",
    "verify_execution",
    "why_not_report",
]

#: Dispositions that terminate a branch without contributing an answer.
_DEAD = (
    "failed-unify",
    "dead-config",
    "frontier-subsumed",
    "por-pruned",
    "budget-exhausted",
    "deadline-exhausted",
    "depth-limit",
    "backtracked",
)


# ---------------------------------------------------------------------------
# Running a goal under a recorder
# ---------------------------------------------------------------------------


def explain_goal(
    program,
    goal,
    db,
    *,
    mode: str = "auto",
    max_configs: int = 200_000,
):
    """Run *goal* with a fresh recorder attached.

    Returns ``(recorder, solutions)``.  *mode*:

    * ``"auto"`` -- route through :func:`repro.core.engine.select_engine`
      (big-step engines record rule-level derivations);
    * ``"bfs"`` -- force the small-step interpreter's fair search, with
      execution traces attached (each solution is an ``Execution``);
    * ``"dfs"`` -- force the backtracking scheduler; at most one
      solution, with the full action trace.
    """
    from ..core.engine import select_engine
    from ..core.interpreter import Interpreter
    from ..core.parser import as_goal

    goal = as_goal(goal)
    recorder = ProvenanceRecorder()
    if mode == "dfs":
        interp = Interpreter(program, max_configs=max_configs, provenance=recorder)
        execution = interp.simulate(goal, db)
        return recorder, [execution] if execution is not None else []
    if mode == "bfs":
        interp = Interpreter(program, max_configs=max_configs, provenance=recorder)
        return recorder, list(interp.run(goal, db))
    if mode != "auto":
        raise ValueError("mode must be auto, bfs, or dfs (got %r)" % (mode,))
    engine = select_engine(
        program, goal, max_configs=max_configs, provenance=recorder
    )
    return recorder, list(engine.solve(goal, db))


def verify_execution(execution, db) -> bool:
    """Replay *execution*'s trace over *db*; ``True`` iff the replay
    reproduces the execution's final database (the certificate check)."""
    from ..core.transitions import replay_actions

    return replay_actions(execution.trace, db) == execution.database


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _by_id(nodes: Sequence[ProvNode]) -> Dict[int, ProvNode]:
    return {n.node_id: n for n in nodes}


def _children(nodes: Sequence[ProvNode]) -> Dict[Optional[int], List[int]]:
    out: Dict[Optional[int], List[int]] = {}
    for n in nodes:
        out.setdefault(n.parent, []).append(n.node_id)
    return out

def _ancestor_closure(
    nodes: Sequence[ProvNode], targets: Sequence[ProvNode]
) -> Set[int]:
    by_id = _by_id(nodes)
    keep: Set[int] = set()
    for target in targets:
        nid: Optional[int] = target.node_id
        while nid is not None and nid not in keep:
            keep.add(nid)
            nid = by_id[nid].parent
    return keep


def _annotate(node: ProvNode) -> str:
    parts = [node.label]
    if node.bindings:
        parts.append(
            "{%s}" % ", ".join("%s=%s" % kv for kv in sorted(node.bindings.items()))
        )
    for fact in node.inserted:
        parts.append("+%s" % fact)
    for fact in node.deleted:
        parts.append("-%s" % fact)
    if node.disposition not in ("expanded", "root"):
        parts.append("[%s]" % node.disposition)
    return " ".join(parts)


def render_proof_tree(recorder: ProvenanceRecorder) -> str:
    """The sub-forest of solution nodes and their ancestors, indented.

    Each line is one derivation node: its label (the action or rule
    application), the unifier bindings, the database delta (``+fact`` /
    ``-fact``), and a ``[disposition]`` tag for non-plain nodes.
    """
    nodes = recorder.nodes
    solutions = recorder.solutions()
    if not solutions:
        return "no solution recorded (try `explain --why-not`)"
    keep = _ancestor_closure(nodes, solutions)
    children = _children(nodes)
    by_id = _by_id(nodes)
    lines: List[str] = []

    def walk(nid: int, depth: int) -> None:
        lines.append("  " * depth + _annotate(by_id[nid]))
        for child in children.get(nid, ()):
            if child in keep:
                walk(child, depth + 1)

    for n in nodes:
        if n.parent is None and n.node_id in keep:
            walk(n.node_id, 0)
    return "\n".join(lines)


def _predicate_of_label(label: str) -> str:
    """Best-effort predicate name behind a provenance node label
    (``"withdraw(a, 30)"`` → ``"withdraw"``, ``"del.balance(...)"`` →
    ``"balance"``)."""
    head = label.split("(", 1)[0].strip()
    if " " in head:  # node-kind prefixes: "call p(...)", "test q(...)"
        head = head.rsplit(" ", 1)[-1]
    if "." in head:  # update prefixes: "ins.p", "del.p"
        head = head.rsplit(".", 1)[-1]
    return head


def why_not_report(
    recorder: ProvenanceRecorder,
    top_k: int = 5,
    costs: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Summary of where the search died: disposition histogram, dead
    branch labels, and the *top_k* deepest failed partial derivations
    (rendered as root-to-leaf paths).

    *costs* is an optional per-predicate cost rollup (the shape
    :meth:`repro.obs.hotspots.CostAttributor.predicate_rollup` returns).
    When given, each dead-branch line cites what the search *spent*
    under that predicate -- a branch that failed cheaply is noise, one
    that burned the budget is the lead worth chasing.
    """
    nodes = recorder.nodes
    lines: List[str] = []
    hist = recorder.by_disposition()
    lines.append("derivation nodes: %d (%d dropped)" % (len(nodes), recorder.dropped))
    lines.append("dispositions:")
    for disp in sorted(hist, key=lambda d: (-hist[d], d)):
        lines.append("  %-20s %d" % (disp, hist[disp]))
    solutions = hist.get("solution", 0)
    if solutions:
        lines.append("note: %d solution(s) exist; below is the failure side" % solutions)

    # Dead leaves: no children, non-solution disposition.
    children = _children(nodes)
    by_id = _by_id(nodes)
    dead = [
        n
        for n in nodes
        if n.disposition in _DEAD and not children.get(n.node_id)
    ]
    if not dead:
        lines.append("no failed branches recorded")
        return "\n".join(lines)

    by_label: Dict[Tuple[str, str], int] = {}
    for n in dead:
        key = (n.disposition, n.label)
        by_label[key] = by_label.get(key, 0) + 1
    lines.append("dead branches (by step and disposition):")
    ranked = sorted(by_label.items(), key=lambda kv: (-kv[1], kv[0]))
    for (disp, label), count in ranked[: max(top_k, 5)]:
        suffix = ""
        if costs:
            spent = costs.get(_predicate_of_label(label))
            if spent:
                suffix = "  (cost: %.2fms, %d unify)" % (
                    spent.get("time", 0.0) * 1e3,
                    spent.get("unify.attempts", 0),
                )
        lines.append("  %4dx [%s] %s%s" % (count, disp, label, suffix))

    if costs:
        hot = sorted(
            costs.items(),
            key=lambda kv: (-kv[1].get("time", 0.0), kv[0]),
        )
        hot = [(p, c) for p, c in hot if p != "(unattributed)"][: max(top_k, 5)]
        if hot:
            lines.append("attributed cost by predicate (where the search spent):")
            for pred, spent in hot:
                lines.append(
                    "  %-20s %8.2fms %8d unify %8d expansions"
                    % (
                        pred,
                        spent.get("time", 0.0) * 1e3,
                        spent.get("unify.attempts", 0),
                        spent.get("steps.expansions", 0),
                    )
                )

    lines.append("deepest partial derivations:")
    deepest = sorted(dead, key=lambda n: -n.depth)[:top_k]
    for leaf in deepest:
        path = recorder.path_to(leaf.node_id)
        lines.append(
            "  depth %d [%s]: %s"
            % (leaf.depth, leaf.disposition, " -> ".join(n.label for n in path))
        )
    return "\n".join(lines)


def to_dot(recorder: ProvenanceRecorder, max_nodes: int = 400) -> str:
    """The derivation DAG in Graphviz DOT (truncated at *max_nodes*,
    keeping solution ancestry first)."""
    nodes = recorder.nodes
    if len(nodes) > max_nodes:
        keep = _ancestor_closure(nodes, recorder.solutions())
        for n in nodes:
            if len(keep) >= max_nodes:
                break
            keep.add(n.node_id)
        nodes = [n for n in nodes if n.node_id in keep]
    colors = {
        "solution": "palegreen",
        "root": "lightblue",
        "por-pruned": "orange",
        "frontier-subsumed": "gray80",
        "failed-unify": "mistyrose",
        "dead-config": "mistyrose",
    }
    lines = ["digraph provenance {", "  rankdir=TB;", "  node [shape=box];"]
    ids = {n.node_id for n in nodes}
    for n in nodes:
        label = _annotate(n).replace("\\", "\\\\").replace('"', '\\"')
        color = colors.get(n.disposition)
        style = ' style=filled fillcolor="%s"' % color if color else ""
        lines.append('  n%d [label="%s"%s];' % (n.node_id, label, style))
        if n.parent is not None and n.parent in ids:
            lines.append("  n%d -> n%d;" % (n.parent, n.node_id))
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Pruning audit
# ---------------------------------------------------------------------------


def _fp(section: Dict[str, object]) -> Tuple[Set[str], Set[str], Set[str]]:
    return (
        set(section.get("reads", ())),
        set(section.get("inserts", ())),
        set(section.get("deletes", ())),
    )


def _conflicts(frontier, future) -> bool:
    """Independent re-implementation of the reducer's commutation test
    (:func:`repro.core.por._conflicts`): read-vs-write in either
    direction, or insert-vs-delete of the same predicate."""
    fr, fi, fd = frontier
    tr, ti, td = future
    if fr & (ti | td):
        return True
    if tr & (fi | fd):
        return True
    if fi & td or fd & ti:
        return True
    return False


def check_ample_witness(witness: Optional[Dict[str, object]]) -> Optional[str]:
    """Re-verify one recorded ample-set decision.

    Returns ``None`` when the witness justifies the pruning, else a
    human-readable description of the violation.  The check mirrors the
    reducer's soundness argument: the ample branch's *frontier* must
    commute with the inherited competitors and with every deferred
    sibling's full *closure*, and must share no variables with them --
    unless the decision was *rescued* by the dynamic re-check, in which
    case the witness must show a bind-free frontier (``frontier_vars``
    empty: sharing is confined to parts behind the next step, so no
    binding can flow either way; see ``por.recheck_rescued``).
    """
    if not witness:
        return "pruned step carries no witness"
    # A witness that predates the re-check (no ``frontier_vars`` field)
    # must still satisfy the strict variable-disjointness condition.
    bind_free = "frontier_vars" in witness and not witness["frontier_vars"]
    shared = witness.get("competitor_shared_vars") or ()
    if shared and not bind_free:
        return (
            "ample shares variables with competitors (%s) and its "
            "frontier is not bind-free: %s"
            % (
                ", ".join(shared),
                ", ".join(witness.get("frontier_vars") or ()),
            )
        )
    frontier = _fp(witness.get("ample_frontier") or {})
    future = _fp(witness.get("competitors") or {})
    for entry in witness.get("pruned") or ():
        entry_shared = entry.get("shared_vars") or ()
        if entry_shared and not bind_free:
            return (
                "ample shares variables with deferred branch %s (%s) and "
                "its frontier is not bind-free"
                % (entry.get("branch"), ", ".join(entry_shared))
            )
        closure = _fp(entry.get("closure") or {})
        future = (
            future[0] | closure[0],
            future[1] | closure[1],
            future[2] | closure[2],
        )
    if _conflicts(frontier, future):
        return (
            "ample frontier %r conflicts with deferred closures %r"
            % (witness.get("ample_frontier"), witness.get("pruned"))
        )
    return None


@dataclass
class PorAudit:
    """Outcome of one pruning audit: witness re-checks plus the
    reduction-off replay oracle."""

    name: str
    pruned: int
    unexplained: List[str] = field(default_factory=list)
    solutions_reduced: Optional[int] = None
    solutions_full: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.unexplained

    def render(self) -> str:
        lines = [
            "audit %s: %d ample decision(s), %s"
            % (self.name, self.pruned, "OK" if self.ok else "FAILED"),
        ]
        if self.solutions_reduced is not None:
            lines.append(
                "  solutions: %s reduced vs %s unreduced"
                % (self.solutions_reduced, self.solutions_full)
            )
        for problem in self.unexplained:
            lines.append("  UNEXPLAINED: %s" % problem)
        return "\n".join(lines)


def _witness_problems(recorder: ProvenanceRecorder) -> Tuple[int, List[str]]:
    pruned_nodes = [n for n in recorder.nodes if n.disposition == "por-pruned"]
    problems = []
    for node in pruned_nodes:
        problem = check_ample_witness(node.witness)
        if problem is not None:
            problems.append("node p%d (%s): %s" % (node.node_id, node.label, problem))
    return len(pruned_nodes), problems


def audit_por_goal(program, goal, db, *, max_configs: int = 200_000) -> PorAudit:
    """Audit one goal: record a reduced run, re-check every ample-set
    witness, and replay without reduction to compare solution sets."""
    from ..core.interpreter import Interpreter
    from ..core.parser import as_goal

    goal = as_goal(goal)
    recorder = ProvenanceRecorder()
    # The audit targets the small-step reducer: run untabled so every
    # ample-set decision happens in the recorded top-level search
    # (tabling big-steps head calls into nested, unrecorded searches
    # and has its own differential oracle).
    reduced = Interpreter(
        program,
        max_configs=max_configs,
        por=True,
        provenance=recorder,
        tabling=False,
    )
    reduced_solutions = _normalized(reduced.solve(goal, db))
    full = Interpreter(program, max_configs=max_configs, por=False, tabling=False)
    full_solutions = _normalized(full.solve(goal, db))

    pruned, problems = _witness_problems(recorder)
    if reduced_solutions != full_solutions:
        problems.append(
            "solution sets differ: %d reduced vs %d unreduced"
            % (len(reduced_solutions), len(full_solutions))
        )
    return PorAudit(
        name=str(goal),
        pruned=pruned,
        unexplained=problems,
        solutions_reduced=len(reduced_solutions),
        solutions_full=len(full_solutions),
    )


def _normalized(solutions) -> List[tuple]:
    out = []
    for sol in solutions:
        out.append(
            (
                tuple(
                    sorted((str(v), str(t)) for v, t in sol.bindings.items())
                ),
                tuple(sorted(str(f) for f in sol.database)),
            )
        )
    return sorted(out)


def audit_profile_config(name: str) -> PorAudit:
    """Audit one committed profile workload (see
    :func:`repro.obs.analyze.profile_suite`).

    The workload runs twice -- once normally with a recorder attached,
    once with reduction globally forced off -- under fresh
    instrumentation each time.  The workloads' own internal assertions
    (expected solution counts) are the first oracle; the
    ``search.solutions`` counter equality across the two runs is the
    second; the witness re-check explains every individual prune.
    """
    from ..core.por import por_disabled
    from ..core.tabling import tabling_disabled

    from .analyze import suite_config

    # Untabled for the same reason as :func:`audit_por_goal`: the audit
    # explains the reducer's prunes, so every ample decision must land
    # in the recorded search.
    config = suite_config(name)
    recorder = ProvenanceRecorder()
    inst_reduced = Instrumentation.create()
    with tabling_disabled(), recording(recorder), instrumented(inst_reduced):
        config.run()
    inst_full = Instrumentation.create()
    with tabling_disabled(), por_disabled(), instrumented(inst_full):
        config.run()

    reduced_solutions = inst_reduced.metrics.snapshot(include_timers=False)[
        "counters"
    ].get("search.solutions", 0)
    full_solutions = inst_full.metrics.snapshot(include_timers=False)[
        "counters"
    ].get("search.solutions", 0)
    pruned, problems = _witness_problems(recorder)
    if reduced_solutions != full_solutions:
        problems.append(
            "search.solutions drifted: %d reduced vs %d unreduced"
            % (reduced_solutions, full_solutions)
        )
    return PorAudit(
        name=name,
        pruned=pruned,
        unexplained=problems,
        solutions_reduced=reduced_solutions,
        solutions_full=full_solutions,
    )
