"""Static staffing analysis for workflow specifications.

Before running (or model checking) anything, a designer can ask cheap
structural questions of a workflow + agent pool:

* are all task roles covered by at least one qualified agent?
* how many agents of each role can a single work item demand *at once*
  (the maximal parallel role demand, from the ``ParFlow`` structure)?
* which agents are irreplaceable (sole holders of a qualification)?

These checks are conservative approximations of the full verification
in :mod:`repro.verify` -- linear in the spec instead of exponential in
the state space -- and catch the most common misconfiguration (an
uncovered role) instantly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .model import (
    Agent,
    Choice,
    Consume,
    Emit,
    Iterate,
    Node,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WaitFor,
    WorkflowSpec,
)

__all__ = ["StaffingReport", "analyze_staffing", "peak_role_demand"]


@dataclass
class StaffingReport:
    """Outcome of the static staffing check."""

    uncovered_roles: Tuple[str, ...]
    peak_demand: Dict[str, int]
    capacity: Dict[str, int]
    bottleneck_roles: Tuple[str, ...]
    irreplaceable_agents: Dict[str, Tuple[str, ...]]

    @property
    def adequate(self) -> bool:
        """Every role covered and per-item peak demand satisfiable."""
        return not self.uncovered_roles and not self.bottleneck_roles

    def summary(self) -> str:
        lines = ["staffing adequate:   %s" % ("yes" if self.adequate else "no")]
        if self.uncovered_roles:
            lines.append("uncovered roles:     " + ", ".join(self.uncovered_roles))
        for role in sorted(self.peak_demand):
            lines.append(
                "role %-12s demand %d / capacity %d%s"
                % (
                    role,
                    self.peak_demand[role],
                    self.capacity.get(role, 0),
                    "  <-- bottleneck" if role in self.bottleneck_roles else "",
                )
            )
        for agent, roles in sorted(self.irreplaceable_agents.items()):
            lines.append(
                "irreplaceable:       %s (sole %s)" % (agent, ", ".join(roles))
            )
        return "\n".join(lines)


def peak_role_demand(
    spec: WorkflowSpec, all_specs: Sequence[WorkflowSpec] = ()
) -> Dict[str, int]:
    """The maximal number of simultaneously held agents per role that a
    *single* work item flowing through *spec* can require.

    Sequence takes the maximum over children; parallel composition sums;
    choice takes the maximum branch; iteration/non-vital inherit from
    their body.  Sub-workflows are resolved against *all_specs* (cycles
    are cut off conservatively at zero).
    """
    specs_by_name = {s.name: s for s in all_specs}
    specs_by_name.setdefault(spec.name, spec)
    role_of = {}
    for s in specs_by_name.values():
        for task in s.tasks:
            role_of[task.name] = task.role

    def walk(node: Node, visiting: frozenset) -> Counter:
        if isinstance(node, Step):
            role = role_of.get(node.task)
            return Counter({role: 1}) if role else Counter()
        if isinstance(node, SeqFlow):
            out: Counter = Counter()
            for child in node.children:
                child_demand = walk(child, visiting)
                for role, n in child_demand.items():
                    out[role] = max(out[role], n)
            return out
        if isinstance(node, ParFlow):
            out = Counter()
            for child in node.children:
                out.update(walk(child, visiting))
            return out
        if isinstance(node, Choice):
            out = Counter()
            for child in node.children:
                child_demand = walk(child, visiting)
                for role, n in child_demand.items():
                    out[role] = max(out[role], n)
            return out
        if isinstance(node, (Iterate, NonVital)):
            return walk(node.body, visiting)
        if isinstance(node, Subflow):
            if node.workflow in visiting:
                return Counter()  # recursive subflow: cut off
            sub = specs_by_name.get(node.workflow)
            if sub is None:
                return Counter()
            return walk(sub.body, visiting | {node.workflow})
        if isinstance(node, (WaitFor, Emit, Consume)):
            return Counter()
        raise TypeError("unknown node %r" % (node,))

    return dict(walk(spec.body, frozenset({spec.name})))


def analyze_staffing(
    specs: Sequence[WorkflowSpec], agents: Sequence[Agent]
) -> StaffingReport:
    """Static staffing check of *specs* against the agent pool."""
    capacity: Counter = Counter()
    holders: Dict[str, List[str]] = {}
    for agent in agents:
        for role in agent.qualifications:
            capacity[role] += 1
            holders.setdefault(role, []).append(agent.name)

    # Roles are "needed" only if some reachable Step uses a task with
    # that role -- declared-but-unused tasks do not constrain staffing.
    used_tasks: set = set()

    def collect(node: Node) -> None:
        if isinstance(node, Step):
            used_tasks.add(node.task)
        elif isinstance(node, (SeqFlow, ParFlow, Choice)):
            for child in node.children:
                collect(child)
        elif isinstance(node, (Iterate, NonVital)):
            collect(node.body)
        # Subflow bodies are covered because all specs are scanned.

    for spec in specs:
        collect(spec.body)
    role_by_task = {
        task.name: task.role for spec in specs for task in spec.tasks
    }
    needed_roles = {
        role_by_task[name]
        for name in used_tasks
        if role_by_task.get(name)
    }
    uncovered = tuple(sorted(r for r in needed_roles if capacity.get(r, 0) == 0))

    peak: Dict[str, int] = {}
    for spec in specs:
        for role, n in peak_role_demand(spec, specs).items():
            peak[role] = max(peak.get(role, 0), n)

    bottlenecks = tuple(
        sorted(
            role
            for role, demand in peak.items()
            if capacity.get(role, 0) < demand
        )
    )

    irreplaceable: Dict[str, Tuple[str, ...]] = {}
    for role, names in holders.items():
        if role in needed_roles and len(names) == 1:
            irreplaceable.setdefault(names[0], ())
            irreplaceable[names[0]] = irreplaceable[names[0]] + (role,)

    return StaffingReport(
        uncovered_roles=uncovered,
        peak_demand=peak,
        capacity=dict(capacity),
        bottleneck_roles=bottlenecks,
        irreplaceable_agents=irreplaceable,
    )
