"""Engine-wide instrumentation: metrics, tracing, profiling hooks.

Observability for the Transaction Datalog engines.  Three pieces:

* :class:`~repro.obs.metrics.Metrics` -- a registry of counters, gauges
  (high-water marks), histograms, and wall-clock timers.  Counters are
  deterministic (configurations expanded, table hits, unification
  attempts); timers are kept separate so tests can assert on counters
  without depending on wall time.
* :class:`~repro.obs.tracer.Tracer` -- lightweight span-based tracing.
  Engines open spans for ``solve`` / ``simulate`` / ``iso-subsearch`` /
  ``table-fixpoint``; finished spans serialize as JSON lines with parent
  ids so external tools can rebuild the search tree.
* :func:`~repro.obs.context.instrumented` -- the activation context.
  Instrumentation is **off by default**: the engines consult a single
  module-level slot, and every hot-path increment is guarded by one
  ``enabled`` check, so the uninstrumented paths stay at full speed.

Typical use::

    from repro.obs import Instrumentation, instrumented, render_report

    inst = Instrumentation.create()
    with instrumented(inst):
        list(engine.solve(goal, db))
    print(render_report(inst))

The CLI exposes the same machinery as ``--profile`` (print the report)
and ``--trace-out FILE`` (dump the span log as JSON lines).
"""

from .context import Instrumentation, NOOP, active, instrumented
from .hotspots import CostAttributor, active_attributor, attributing
from .metrics import Metrics
from .progress import ProgressReporter
from .provenance import ProvNode, ProvenanceRecorder, active_recorder, recording
from .report import render_report
from .tracer import Span, Tracer, read_jsonl
from .otlp import export_otlp, metrics_to_otlp, spans_to_otlp, write_otlp

# NOTE: repro.obs.explain is deliberately NOT imported here -- it depends
# on the core engines, which in turn import this package.  Import it
# directly: ``from repro.obs import explain``.

__all__ = [
    "CostAttributor",
    "Instrumentation",
    "Metrics",
    "NOOP",
    "ProgressReporter",
    "ProvNode",
    "ProvenanceRecorder",
    "Span",
    "Tracer",
    "active",
    "active_attributor",
    "active_recorder",
    "attributing",
    "export_otlp",
    "instrumented",
    "metrics_to_otlp",
    "read_jsonl",
    "recording",
    "render_report",
    "spans_to_otlp",
    "write_otlp",
]
