"""Explicit construction of a TD program's configuration graph.

Where the interpreter searches for *one* way to commit, verification
needs the *whole* reachable graph: every configuration, every
transition, including the stuck ones the engines prune away.  The
explorer below therefore runs the raw transition relation -- no
dead-configuration pruning -- and records edges.

Termination is guaranteed for fully bounded programs (finite space); for
anything else the ``max_states`` bound raises
:class:`~repro.core.errors.SearchBudgetExceeded`, mirroring the paper's
boundary: verification is exactly what boundedness buys you.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.database import Database
from ..core.errors import SearchBudgetExceeded
from ..obs import hotspots as _hot
from ..obs.context import active
from ..core.formulas import Formula, apply_subst
from ..core.interpreter import Interpreter
from ..core.parser import parse_goal
from ..core.program import Program
from ..core.transitions import canonical_key, enabled_steps, is_final

__all__ = ["StateNode", "StateGraph", "explore"]


@dataclass
class StateNode:
    """One reachable configuration."""

    node_id: int
    process: Formula
    database: Database
    final: bool

    def __str__(self) -> str:
        marker = " (final)" if self.final else ""
        return "state %d%s: %s  @  %s" % (
            self.node_id,
            marker,
            self.process,
            self.database,
        )


@dataclass
class StateGraph:
    """The reachable configuration graph.

    ``edges[i]`` lists ``(action label, successor id)`` pairs;
    ``parents[i]`` records one shortest-path predecessor for
    counterexample extraction.
    """

    nodes: List[StateNode]
    edges: Dict[int, List[Tuple[str, int]]]
    parents: Dict[int, Tuple[int, str]]
    initial: int = 0

    @property
    def final_ids(self) -> List[int]:
        return [n.node_id for n in self.nodes if n.final]

    def successors(self, node_id: int) -> List[int]:
        return [succ for _label, succ in self.edges.get(node_id, [])]

    def path_to(self, node_id: int) -> List[str]:
        """Action labels along one shortest path from the initial state."""
        labels: List[str] = []
        current = node_id
        while current != self.initial:
            parent, label = self.parents[current]
            labels.append(label)
            current = parent
        labels.reverse()
        return labels

    def __len__(self) -> int:
        return len(self.nodes)

    def to_dot(self, max_label: int = 40) -> str:
        """Graphviz rendering of the configuration graph.

        Final states are doubled circles, stuck states shaded; node
        labels show the database (truncated), edge labels the action.
        """
        lines = ["digraph configurations {", "  rankdir=LR;"]
        for node in self.nodes:
            label = str(node.database)
            if len(label) > max_label:
                label = label[: max_label - 3] + "..."
            attrs = ['label="%d: %s"' % (node.node_id, label.replace('"', "'"))]
            if node.final:
                attrs.append("shape=doublecircle")
            elif not self.edges.get(node.node_id):
                attrs.append("style=filled fillcolor=lightgray")
            lines.append("  n%d [%s];" % (node.node_id, " ".join(attrs)))
        for src, outs in sorted(self.edges.items()):
            for action, dst in outs:
                action = action.replace('"', "'")
                if len(action) > max_label:
                    action = action[: max_label - 3] + "..."
                lines.append('  n%d -> n%d [label="%s"];' % (src, dst, action))
        lines.append("}")
        return "\n".join(lines)


def explore(
    program: Program,
    goal: Union[str, Formula],
    db: Database,
    max_states: int = 100_000,
) -> StateGraph:
    """Build the configuration graph of ``(goal, db)`` under *program*.

    Raises :class:`SearchBudgetExceeded` if more than ``max_states``
    configurations are reachable -- for fully bounded programs pick a
    budget to taste; for full TD no budget is large enough in general.
    """
    if isinstance(goal, str):
        goal = parse_goal(goal)
    goal = program.resolve_goal(goal)

    # Isolation needs an executor for iso bodies; reuse the interpreter's
    # nested-search machinery with its own budget.
    obs = active()
    interp = Interpreter(program, max_configs=max_states * 10)
    budget = interp._make_budget(obs)

    nodes: List[StateNode] = []
    edges: Dict[int, List[Tuple[str, int]]] = {}
    parents: Dict[int, Tuple[int, str]] = {}
    ids: Dict[object, int] = {}
    edge_count = 0

    def intern(proc: Formula, state: Database) -> Tuple[int, bool]:
        key = (canonical_key(proc), state)
        existing = ids.get(key)
        if existing is not None:
            return existing, False
        node_id = len(nodes)
        if node_id >= max_states:
            raise SearchBudgetExceeded(node_id + 1, max_states, spent=budget.used)
        ids[key] = node_id
        nodes.append(StateNode(node_id, proc, state, is_final(proc)))
        edges[node_id] = []
        return node_id, True

    attr = _hot.active_attributor()
    with obs.span("statespace.explore", goal=str(goal)), \
            _hot.engine_frame(attr, "statespace"):
        start, _ = intern(goal, db)
        frontier = deque([start])
        while frontier:
            node_id = frontier.popleft()
            node = nodes[node_id]
            if node.final:
                continue
            if obs.enabled:
                obs.metrics.inc("statespace.expanded")
            steps = enabled_steps(
                program, node.process, node.database, interp._isol_runner(budget, obs)
            )
            if attr is not None:
                steps = attr.meter_steps(steps)
            for step in steps:
                new_proc = apply_subst(step.residual, step.subst)
                succ_id, fresh = intern(new_proc, step.database)
                label = str(step.action)
                edges[node_id].append((label, succ_id))
                edge_count += 1
                if fresh:
                    parents[succ_id] = (node_id, label)
                    frontier.append(succ_id)
        if obs.enabled:
            obs.metrics.set_gauge("statespace.states", len(nodes))
            obs.metrics.set_gauge("statespace.edges", edge_count)

    return StateGraph(nodes=nodes, edges=edges, parents=parents, initial=start)
