"""The full Transaction Datalog engine.

Full TD is data complete for RE (the paper's central expressibility
theorem), so no terminating evaluator exists; this engine provides the
two procedures that are possible:

* :meth:`Interpreter.solve` -- a breadth-first *semi-decision* procedure.
  BFS over the configuration graph is fair: if any execution of the goal
  exists it is found, even when other branches diverge (e.g. a runaway
  recursive process).  A configurable budget turns non-termination into a
  :class:`~repro.core.errors.SearchBudgetExceeded` report.

* :meth:`Interpreter.simulate` -- a depth-first backtracking scheduler
  that finds *one* successful execution and returns its full trace of
  elementary operations.  This is the mode in which the paper's workflow
  examples are "executed on the prototype and perform exactly as
  described"; a seed makes the interleaving choices reproducible, or
  deterministic left-to-right when no seed is given.

Isolated sub-processes (``iso(a)``) are executed by a nested search from
the current state; each complete sub-execution contributes one atomic
transition, which is precisely the paper's notion of isolation.
"""

from __future__ import annotations

import random
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..obs.context import Instrumentation, NOOP, active
from .database import Database
from .errors import SearchBudgetExceeded
from .formulas import Formula, apply_subst, formula_variables
from .parser import as_goal
from .program import Program
from .terms import Term, Variable
from .transitions import (
    Action,
    Configuration,
    Step,
    canonical_key,
    dead_config,
    enabled_steps,
    frontier_blocked,
    is_final,
    update_footprint,
)
from .unify import Substitution, walk

__all__ = ["Interpreter", "Solution", "Execution"]


@dataclass(frozen=True)
class Solution:
    """One way the goal can commit: answer bindings + final database."""

    bindings: Substitution
    database: Database


@dataclass(frozen=True)
class Execution:
    """A complete successful execution: solution plus the action trace."""

    bindings: Substitution
    database: Database
    trace: Tuple[Action, ...]

    @property
    def events(self) -> Tuple[str, ...]:
        """The trace rendered as strings (handy in tests and logs)."""
        return tuple(str(a) for a in self.trace)


class _Budget:
    """A mutable step budget shared by a search and its nested searches.

    When instrumentation is active the budget reports each spend as the
    ``search.steps`` counter and, on exhaustion, records the final
    figure in both the raised exception and the ``budget.spent`` gauge.
    The extra work is guarded by a single ``None`` check so the
    uninstrumented path stays two instructions.
    """

    __slots__ = ("limit", "used", "obs")

    def __init__(self, limit: int, obs: Optional[Instrumentation] = None):
        self.limit = limit
        self.used = 0
        self.obs = obs if (obs is not None and obs.enabled) else None

    def spend(self) -> None:
        self.used += 1
        obs = self.obs
        if obs is not None:
            obs.metrics.inc("search.steps")
        if self.used > self.limit:
            if obs is not None:
                obs.metrics.inc("budget.exceeded")
                obs.metrics.gauge_max("budget.spent", self.used)
            raise SearchBudgetExceeded(self.used, self.limit, spent=self.used)


class Interpreter:
    """Breadth-first semi-decision procedure and DFS simulator for full TD.

    Parameters
    ----------
    program:
        The rulebase.
    max_configs:
        Total configuration budget for one query (shared with nested
        isolation searches).  Exceeding it raises
        :class:`SearchBudgetExceeded`.
    sort_concurrent:
        Canonicalize configurations by sorting concurrent branches
        (better memoization; switchable for the ablation benchmark).
    """

    def __init__(
        self,
        program: Program,
        max_configs: int = 200_000,
        sort_concurrent: bool = True,
    ):
        self.program = program
        self.max_configs = max_configs
        self.sort_concurrent = sort_concurrent

    def _make_budget(self, obs: Optional[Instrumentation] = None) -> "_Budget":
        """A fresh step budget (used by the verifier, which drives the
        transition relation directly but reuses the isolation runner)."""
        return _Budget(self.max_configs, obs)

    # -- public API -------------------------------------------------------------

    def solve(self, goal: Union[str, Formula], db: Database) -> Iterator[Solution]:
        """Enumerate solutions fairly (BFS).

        *goal* may be a formula or concrete syntax (``"p(X) * q(X)"``).
        Yields each distinct (answer bindings, final database) pair once.
        Terminates iff the reachable configuration space is finite;
        otherwise enumeration is fair and the budget eventually fires.
        """
        goal = self.program.resolve_goal(as_goal(goal))
        obs = active()
        budget = _Budget(self.max_configs, obs)
        goal_vars = _ordered_vars(goal)
        with obs.span("solve", engine="interpreter", goal=str(goal)):
            try:
                for answers, final_db, _ in self._bfs(
                    goal, db, goal_vars, budget, want_trace=False, obs=obs
                ):
                    yield Solution(dict(zip(goal_vars, answers)), final_db)
            finally:
                _note_budget(obs, budget)

    def succeeds(self, goal: Union[str, Formula], db: Database) -> bool:
        """True iff some execution of *goal* from *db* commits."""
        for _ in self.solve(goal, db):
            return True
        return False

    def final_databases(self, goal: Union[str, Formula], db: Database) -> Set[Database]:
        """All final states reachable by executing *goal* from *db*."""
        return {sol.database for sol in self.solve(goal, db)}

    def run(self, goal: Union[str, Formula], db: Database) -> Iterator[Execution]:
        """Like :meth:`solve` but with execution traces attached."""
        goal = self.program.resolve_goal(as_goal(goal))
        obs = active()
        budget = _Budget(self.max_configs, obs)
        goal_vars = _ordered_vars(goal)
        with obs.span("solve", engine="interpreter", mode="run", goal=str(goal)):
            try:
                for answers, final_db, trace in self._bfs(
                    goal, db, goal_vars, budget, want_trace=True, obs=obs
                ):
                    yield Execution(dict(zip(goal_vars, answers)), final_db, trace)
            finally:
                _note_budget(obs, budget)

    def simulate(
        self,
        goal: Union[str, Formula],
        db: Database,
        *legacy,
        seed: Optional[int] = None,
        max_depth: int = 100_000,
    ) -> Optional[Execution]:
        """Find one successful execution by DFS with backtracking.

        With ``seed`` the interleaving choices are shuffled reproducibly;
        without it the scheduler is deterministic (program order, left
        branch first).  Returns ``None`` if the goal has no execution
        within the explored space.
        """
        seed, max_depth = _simulate_legacy_args(legacy, seed, max_depth)
        goal = self.program.resolve_goal(as_goal(goal))
        obs = active()
        budget = _Budget(self.max_configs, obs)
        rng = random.Random(seed) if seed is not None else None
        goal_vars = _ordered_vars(goal)
        with obs.span("simulate", engine="interpreter", goal=str(goal)):
            try:
                result = self._dfs(goal, db, goal_vars, budget, rng, max_depth, obs=obs)
            finally:
                _note_budget(obs, budget)
        if result is None:
            return None
        answers, final_db, trace = result
        return Execution(dict(zip(goal_vars, answers)), final_db, trace)

    # -- BFS core ---------------------------------------------------------------

    def _bfs(
        self,
        goal: Formula,
        db: Database,
        goal_vars: Sequence[Variable],
        budget: _Budget,
        want_trace: bool,
        obs: Instrumentation = NOOP,
    ) -> Iterator[Tuple[Tuple[Term, ...], Database, Tuple[Action, ...]]]:
        insertable, deletable = update_footprint(self.program, goal)
        start = Configuration(goal, db, tuple(goal_vars))
        start_key = self._key(start)
        frontier = deque([start])
        seen = {start_key}
        traces: Dict[object, Tuple[Action, ...]] = {start_key: ()}
        emitted = set()
        enabled = obs.enabled

        while frontier:
            config = frontier.popleft()
            config_key = self._key(config)
            if is_final(config.process):
                result = (config.answers, config.database)
                if result not in emitted:
                    emitted.add(result)
                    if enabled:
                        obs.metrics.inc("search.solutions")
                    yield config.answers, config.database, traces.get(config_key, ())
                continue
            if enabled:
                obs.metrics.inc("search.configs_expanded")
            for step in enabled_steps(
                self.program,
                config.process,
                config.database,
                self._isol_runner(budget, obs),
            ):
                budget.spend()
                new_proc = apply_subst(step.residual, step.subst)
                if dead_config(new_proc, step.database, insertable, deletable):
                    continue
                new_answers = tuple(walk(t, step.subst) for t in config.answers)
                succ = Configuration(new_proc, step.database, new_answers)
                key = self._key(succ)
                if key in seen:
                    continue
                seen.add(key)
                if want_trace:
                    traces[key] = traces.get(config_key, ()) + (step.action,)
                frontier.append(succ)
                if enabled:
                    obs.metrics.gauge_max("search.frontier_peak", len(frontier))

    def _key(self, config: Configuration):
        return (
            canonical_key(config.process, sort_conc=self.sort_concurrent),
            config.database,
            tuple(
                t if not isinstance(t, Variable) else None for t in config.answers
            ),
        )

    # -- DFS core ---------------------------------------------------------------

    def _dfs(
        self,
        goal: Formula,
        db: Database,
        goal_vars: Sequence[Variable],
        budget: _Budget,
        rng: Optional[random.Random],
        max_depth: int,
        obs: Instrumentation = NOOP,
    ) -> Optional[Tuple[Tuple[Term, ...], Database, Tuple[Action, ...]]]:
        insertable, deletable = update_footprint(self.program, goal)
        failed: Set[object] = set()
        limit_hits = 0  # depth-truncation events (blocks unsound fail-memo)
        trace: List[Action] = []

        def expand(proc: Formula, state: Database):
            """Successor (step, residual process) pairs, pruned of dead
            configurations and ordered so that children whose frontier is
            immediately enabled come before blocked ones (see
            :func:`frontier_blocked`)."""
            if obs.enabled:
                obs.metrics.inc("search.configs_expanded")
            ready = []
            deferred = []
            for step in enabled_steps(
                self.program, proc, state, self._isol_runner(budget, obs)
            ):
                budget.spend()
                new_proc = apply_subst(step.residual, step.subst)
                if dead_config(new_proc, step.database, insertable, deletable):
                    continue
                local = apply_subst(step.local, step.subst)
                if frontier_blocked(local, step.database):
                    deferred.append((step, new_proc))
                else:
                    ready.append((step, new_proc))
            if rng is not None:
                rng.shuffle(ready)
                rng.shuffle(deferred)
            return iter(ready + deferred)

        # Each frame: (key, step iterator, answers, hits_before).  The
        # explicit stack avoids Python recursion limits on long workflow
        # executions.
        start_key = (canonical_key(goal, self.sort_concurrent), db)
        stack: List[list] = [[start_key, expand(goal, db), tuple(goal_vars), 0]]

        while stack:
            frame = stack[-1]
            key, steps, answers, hits_before = frame
            advanced = False
            for step, new_proc in steps:
                new_answers = tuple(walk(t, step.subst) for t in answers)
                trace.append(step.action)
                if is_final(new_proc):
                    return new_answers, step.database, tuple(trace)
                if len(stack) >= max_depth:
                    limit_hits += 1
                    trace.pop()
                    continue
                new_key = (canonical_key(new_proc, self.sort_concurrent), step.database)
                if new_key in failed:
                    trace.pop()
                    continue
                stack.append(
                    [new_key, expand(new_proc, step.database), new_answers, limit_hits]
                )
                advanced = True
                break
            if not advanced:
                # Frame exhausted: memoize as failed only if no descendant
                # was truncated by the depth limit (soundness of the memo).
                if limit_hits == hits_before:
                    failed.add(key)
                stack.pop()
                if trace:
                    trace.pop()
        return None

    # -- isolation ----------------------------------------------------------------

    def _isol_runner(self, budget: _Budget, obs: Instrumentation = NOOP):
        def executions(body: Formula, db: Database):
            body_vars = _ordered_vars(body)
            for answers, final_db, trace in self._bfs(
                body, db, body_vars, budget, want_trace=True, obs=obs
            ):
                theta = {
                    v: t
                    for v, t in zip(body_vars, answers)
                    if not isinstance(t, Variable)
                }
                yield theta, final_db, trace

        def run_isolated(body: Formula, db: Database):
            if not obs.enabled:
                yield from executions(body, db)
                return
            obs.enter_iso()
            try:
                with obs.span("iso-subsearch", body=str(body)):
                    yield from executions(body, db)
            finally:
                obs.exit_iso()

        return run_isolated


def _simulate_legacy_args(legacy, seed, max_depth):
    """Map legacy positional ``simulate(goal, db, seed, max_depth)`` calls.

    ``seed`` and ``max_depth`` are keyword-only since the API unification;
    positional use keeps working for one deprecation cycle.
    """
    if not legacy:
        return seed, max_depth
    if len(legacy) > 2:
        raise TypeError(
            "simulate() takes 2 positional arguments (goal, db) but %d were given"
            % (2 + len(legacy))
        )
    warnings.warn(
        "passing seed/max_depth positionally to simulate() is deprecated; "
        "use keyword arguments (seed=..., max_depth=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    seed = legacy[0]
    if len(legacy) == 2:
        max_depth = legacy[1]
    return seed, max_depth


def _note_budget(obs: Instrumentation, budget: _Budget) -> None:
    """Record the final budget spend of a finished (or abandoned) search."""
    if obs.enabled:
        obs.metrics.gauge_max("budget.spent", budget.used)
        obs.metrics.set_gauge("budget.limit", budget.limit)


def _ordered_vars(goal: Formula) -> List[Variable]:
    """Free variables of the goal, first-occurrence order, deduplicated."""
    seen: Dict[Variable, None] = {}
    for v in formula_variables(goal):
        seen.setdefault(v, None)
    return list(seen)
