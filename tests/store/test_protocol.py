"""Store protocol conformance: every backend against the Database oracle.

The protocol's promise is that a store is semantically interchangeable
with the immutable :class:`Database` it mirrors -- same facts, same
match results, same content hash, same copy-on-write indexes -- plus a
savepoint discipline that maps the paper's ``iso`` construct.  These
tests run identically over every shipped backend.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    MemoryStore,
    SqliteStore,
    StoreError,
    open_store,
    parse_atom,
    parse_database,
    parse_program,
)
from repro.store import Savepoint, Store, replay_trace


@pytest.fixture(params=["memory", "sqlite"])
def make_store(request, tmp_path):
    """A factory minting a fresh store of the parametrized backend."""
    counter = [0]

    def factory(db=None):
        counter[0] += 1
        if request.param == "memory":
            return MemoryStore(db if db is not None else Database())
        store = SqliteStore(str(tmp_path / ("s%d.tdlog" % counter[0])))
        if db is not None:
            store.insert_all(db)
        return store

    return factory


@pytest.fixture
def db():
    return parse_database("e(a, b). e(b, c). e(c, d). color(a, red).")


class TestQuerySurface:
    def test_database_mirror_equals_seed(self, make_store, db):
        store = make_store(db)
        assert store.database() == db
        assert len(store) == len(db)
        assert set(store) == set(db)

    def test_facts_and_predicates(self, make_store, db):
        store = make_store(db)
        assert store.facts("e") == db.facts("e")
        assert store.facts("nothing") == frozenset()
        assert store.predicates() == db.predicates()

    def test_matching_agrees_with_database_match(self, make_store, db):
        store = make_store(db)
        pattern = parse_atom("e(a, X)")
        assert list(store.matching(pattern)) == list(db.match(pattern))
        assert store.holds(pattern)
        assert not store.holds(parse_atom("e(z, X)"))

    def test_contains(self, make_store, db):
        store = make_store(db)
        assert parse_atom("e(a, b)") in store
        assert parse_atom("e(b, a)") not in store

    def test_content_hash_tracks_state(self, make_store, db):
        store = make_store(db)
        assert store.content_hash() == hash(db)
        store.insert(parse_atom("e(d, e)"))
        assert store.content_hash() == hash(db.insert(parse_atom("e(d, e)")))

    def test_arg_index_is_the_databases(self, make_store, db):
        store = make_store(db)
        index = store.arg_index("e", 0)
        assert index == db.arg_index("e", 0)


class TestUpdates:
    def test_insert_returns_new_state(self, make_store, db):
        store = make_store(db)
        fact = parse_atom("e(d, e)")
        out = store.insert(fact)
        assert fact in out and fact in store

    def test_insert_present_fact_is_noop(self, make_store, db):
        store = make_store(db)
        before = store.database()
        assert store.insert(parse_atom("e(a, b)")) is before

    def test_delete_and_noop_delete(self, make_store, db):
        store = make_store(db)
        out = store.delete(parse_atom("e(a, b)"))
        assert parse_atom("e(a, b)") not in out
        before = store.database()
        assert store.delete(parse_atom("missing(x)")) is before

    def test_batch_updates(self, make_store):
        store = make_store()
        facts = [parse_atom("p(%d)" % i) for i in range(5)]
        store.insert_all(facts)
        assert len(store) == 5
        store.delete_all(facts[:3])
        assert set(store) == set(facts[3:])


class TestSavepoints:
    def test_rollback_restores_state(self, make_store, db):
        store = make_store(db)
        sp = store.savepoint()
        store.insert(parse_atom("tmp(1)"))
        store.delete(parse_atom("e(a, b)"))
        store.rollback(sp)
        assert store.database() == db

    def test_release_keeps_changes(self, make_store, db):
        store = make_store(db)
        sp = store.savepoint()
        store.insert(parse_atom("tmp(1)"))
        store.release(sp)
        assert parse_atom("tmp(1)") in store

    def test_nested_inner_rollback_outer_release(self, make_store, db):
        store = make_store(db)
        outer = store.savepoint()
        store.insert(parse_atom("keep(1)"))
        inner = store.savepoint()
        store.insert(parse_atom("drop(1)"))
        store.rollback(inner)
        store.release(outer)
        assert parse_atom("keep(1)") in store
        assert parse_atom("drop(1)") not in store

    def test_outer_rollback_discards_released_inner(self, make_store, db):
        store = make_store(db)
        outer = store.savepoint()
        inner = store.savepoint()
        store.insert(parse_atom("drop(1)"))
        store.release(inner)
        store.rollback(outer)
        assert store.database() == db

    def test_releasing_outer_closes_inner(self, make_store, db):
        # SQLite RELEASE semantics: releasing an outer savepoint
        # implicitly commits (and closes) every savepoint nested in it.
        store = make_store(db)
        outer = store.savepoint()
        inner = store.savepoint()
        store.insert(parse_atom("tmp(1)"))
        store.release(outer)
        assert parse_atom("tmp(1)") in store
        with pytest.raises(StoreError):
            store.rollback(inner)

    def test_unknown_savepoint_raises(self, make_store, db):
        store = make_store(db)
        with pytest.raises(StoreError):
            store.release(Savepoint("bogus", depth=0))

    def test_transaction_contextmanager(self, make_store, db):
        store = make_store(db)
        with store.transaction():
            store.insert(parse_atom("tmp(1)"))
        assert parse_atom("tmp(1)") in store
        with pytest.raises(RuntimeError, match="boom"):
            with store.transaction():
                store.insert(parse_atom("tmp(2)"))
                raise RuntimeError("boom")
        assert parse_atom("tmp(2)") not in store


class TestReplayTrace:
    def test_replay_matches_execution(self, make_store):
        program = parse_program(
            """
            transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
            withdraw(Acct, Amt) <-
                balance(Acct, Bal) * Bal >= Amt *
                del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
            deposit(Acct, Amt) <-
                balance(Acct, Bal) *
                del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
            """
        )
        db = parse_database("balance(a, 100). balance(b, 10).")
        execution = Interpreter(program).simulate("transfer(a, b, 30)", db, seed=0)
        assert execution is not None
        store = make_store(db)
        final = replay_trace(store, execution.trace)
        assert final == execution.database
        assert store.database() == execution.database


class TestOpenStore:
    def test_mem_spec(self, db):
        store = open_store("mem", db=db)
        assert isinstance(store, MemoryStore)
        assert store.database() == db

    def test_sqlite_spec_and_seeding(self, tmp_path, db):
        path = str(tmp_path / "state.tdlog")
        with open_store("sqlite:" + path, db=db) as store:
            assert isinstance(store, SqliteStore)
            assert store.database() == db
        # Reopening never re-seeds: the durable state wins.
        with open_store("sqlite:" + path, db=Database()) as store:
            assert store.database() == db

    def test_bare_tdlog_path(self, tmp_path):
        path = str(tmp_path / "state.tdlog")
        with open_store(path) as store:
            assert isinstance(store, SqliteStore)

    def test_bad_specs(self):
        with pytest.raises(StoreError):
            open_store("voodoo")
        with pytest.raises(StoreError):
            open_store("sqlite:")


def test_store_is_abstract():
    with pytest.raises(TypeError):
        Store()  # noqa: abstract
