"""Derivation provenance: a compact DAG of *why* a search did what it did.

The paper's central artifact is the executional deduction -- a proof
that a transaction goal succeeds is literally a schedule of database
updates.  The engines find those schedules but, until this module,
discarded the derivation behind them: a :class:`~repro.core.interpreter.
Solution` says *that* the goal committed, never which rule choices and
interleavings got there, and the PR-5 reducers (partial-order reduction,
frontier subsumption) silently drop most of the search tree on purpose.

A :class:`ProvenanceRecorder` captures that tree as it is explored.
Each :class:`ProvNode` records:

* ``parent`` -- the configuration (or call/rule) this one was derived
  from, making the node set a forest rooted at the goal;
* ``kind`` / ``label`` -- what was applied: a small-step redex
  (``step``), a big-step tabled ``call``, a ``rule`` choice, a derived
  ``answer`` or Datalog ``fact``;
* ``bindings`` -- the unifier of the step, rendered to strings;
* ``inserted`` / ``deleted`` -- the db delta of the step (for ``iso``
  steps, the flattened subtrace updates);
* ``disposition`` -- what became of the branch.  ``expanded`` and
  ``solution`` mark the live tree; everything else explains a *pruned
  or dead* branch: ``por-pruned`` (with the ample-set witness),
  ``frontier-subsumed`` (with the subsuming key), ``failed-unify``,
  ``dead-config``, ``depth-limit``, ``backtracked``,
  ``budget-exhausted`` / ``deadline-exhausted``.

Recording is **off by default** and costs nothing when off: every
engine takes ``provenance=None`` and guards the hot loop with a single
``is not None`` check, exactly the discipline the metrics layer uses
(the zero-overhead test asserts byte-identical counter snapshots).
When a recorder *is* attached it reports ``prov.nodes`` /
``prov.dropped`` counters through the active instrumentation.

Serialization reuses the tracer's span model: :meth:`to_jsonl` emits
one span-shaped JSON object per node (``span_id`` ``p<n>``,
``parent_id``, ``name`` ``prov.<disposition>``, attrs carrying the
node fields, start/end encoding the depth), so a provenance log is
readable by :func:`repro.obs.tracer.read_jsonl`, exportable by
:func:`repro.obs.otlp.spans_to_otlp`, and reloadable by
:meth:`ProvenanceRecorder.from_jsonl` -- one format, three consumers.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from . import context as _context

__all__ = [
    "ProvNode",
    "ProvenanceRecorder",
    "active_recorder",
    "recording",
    "action_delta",
    "db_delta",
    "render_bindings",
    "config_digest",
    "DISPOSITIONS",
]

#: The disposition taxonomy (see module docstring; documented in
#: docs/OBSERVABILITY.md).  ``expanded`` nodes may later be *marked*
#: with a terminal disposition; ``root`` and ``solution`` are sticky.
DISPOSITIONS = (
    "root",
    "expanded",
    "solution",
    "failed-unify",
    "dead-config",
    "frontier-subsumed",
    "por-pruned",
    "budget-exhausted",
    "deadline-exhausted",
    "depth-limit",
    "backtracked",
    "table-hit",
)

#: Keep witness db-delta lists bounded; real workloads touch few tuples
#: per step, but a runaway delta must not balloon the log.
_DELTA_CAP = 64


@dataclass
class ProvNode:
    """One node of the derivation DAG.  ``depth`` is the tree depth
    (root = 0), derived from the parent at record time."""

    node_id: int
    parent: Optional[int]
    kind: str
    label: str
    disposition: str = "expanded"
    bindings: Dict[str, str] = field(default_factory=dict)
    inserted: Tuple[str, ...] = ()
    deleted: Tuple[str, ...] = ()
    witness: Dict[str, object] = field(default_factory=dict)
    depth: int = 0

    def as_span(self) -> Dict[str, object]:
        """The node in the tracer's serialized-span shape.

        ``start``/``end`` encode the tree depth (provenance has no
        wall-clock), and complex attrs are JSON-encoded strings so the
        dict round-trips through ``read_jsonl`` and OTLP untouched.
        """
        attrs: Dict[str, object] = {
            "kind": self.kind,
            "label": self.label,
            "disposition": self.disposition,
            "depth": self.depth,
        }
        if self.bindings:
            attrs["bindings"] = json.dumps(self.bindings, sort_keys=True)
        if self.inserted:
            attrs["inserted"] = json.dumps(list(self.inserted))
        if self.deleted:
            attrs["deleted"] = json.dumps(list(self.deleted))
        if self.witness:
            attrs["witness"] = json.dumps(self.witness, sort_keys=True)
        start = float(self.depth)
        return {
            "span_id": "p%d" % self.node_id,
            "parent_id": "p%d" % self.parent if self.parent is not None else None,
            "name": "prov.%s" % self.disposition,
            "attrs": attrs,
            "start": start,
            "end": start + 1.0,
            "duration": 1.0,
        }

    @classmethod
    def from_span(cls, record: Dict[str, object]) -> "ProvNode":
        """Rebuild a node from a serialized span dict (``as_span`` inverse)."""
        attrs = dict(record.get("attrs") or {})
        span_id = str(record["span_id"])
        parent_id = record.get("parent_id")
        return cls(
            node_id=int(span_id[1:]),
            parent=int(str(parent_id)[1:]) if parent_id else None,
            kind=str(attrs.get("kind", "")),
            label=str(attrs.get("label", "")),
            disposition=str(attrs.get("disposition", "expanded")),
            bindings=dict(json.loads(str(attrs["bindings"])))
            if "bindings" in attrs
            else {},
            inserted=tuple(json.loads(str(attrs["inserted"])))
            if "inserted" in attrs
            else (),
            deleted=tuple(json.loads(str(attrs["deleted"])))
            if "deleted" in attrs
            else (),
            witness=dict(json.loads(str(attrs["witness"])))
            if "witness" in attrs
            else {},
            depth=int(attrs.get("depth", 0)),
        )


class ProvenanceRecorder:
    """Accumulates :class:`ProvNode` entries during a search.

    ``max_nodes`` caps memory: past the cap, :meth:`record` counts the
    node as dropped (``prov.dropped``) and returns ``None``, which
    every recording site tolerates.  The parent *stack* supports the
    big-step engines, whose evaluation is structurally recursive: a
    pushed node becomes the default parent for nodes recorded deeper
    in the same dynamic extent.
    """

    def __init__(self, max_nodes: int = 200_000):
        self.max_nodes = max_nodes
        self.nodes: List[ProvNode] = []
        self.dropped = 0
        self._stack: List[Optional[int]] = []

    # -- recording ------------------------------------------------------------

    def record(
        self,
        kind: str,
        label: str,
        parent: Optional[int] = None,
        disposition: str = "expanded",
        bindings: Optional[Dict[str, str]] = None,
        inserted: Sequence[str] = (),
        deleted: Sequence[str] = (),
        witness: Optional[Dict[str, object]] = None,
    ) -> Optional[int]:
        """Add a node; returns its id, or ``None`` if the cap dropped it."""
        obs = _context.active()
        if len(self.nodes) >= self.max_nodes:
            self.dropped += 1
            if obs.enabled:
                obs.metrics.inc("prov.dropped")
            return None
        depth = 0 if parent is None else self.nodes[parent].depth + 1
        node = ProvNode(
            node_id=len(self.nodes),
            parent=parent,
            kind=kind,
            label=label,
            disposition=disposition,
            bindings=dict(bindings) if bindings else {},
            inserted=tuple(inserted),
            deleted=tuple(deleted),
            witness=dict(witness) if witness else {},
            depth=depth,
        )
        self.nodes.append(node)
        if obs.enabled:
            obs.metrics.inc("prov.nodes")
        return node.node_id

    def record_step(
        self,
        step,
        parent: Optional[int],
        disposition: str = "expanded",
        witness: Optional[Dict[str, object]] = None,
    ) -> Optional[int]:
        """Record a small-step engine transition (a ``Step``)."""
        inserted, deleted = action_delta(step.action)
        return self.record(
            "step",
            str(step.action),
            parent=parent,
            disposition=disposition,
            bindings=render_bindings(step.subst),
            inserted=inserted,
            deleted=deleted,
            witness=witness,
        )

    def mark(
        self,
        node_id: Optional[int],
        disposition: str,
        witness: Optional[Dict[str, object]] = None,
    ) -> None:
        """Upgrade a node's disposition after the fact (e.g. a queued
        configuration later popped as final becomes ``solution``).
        Tolerates ``None`` (a dropped node) and never downgrades a
        ``solution``."""
        if node_id is None:
            return
        node = self.nodes[node_id]
        if node.disposition == "solution" and disposition != "solution":
            return
        node.disposition = disposition
        if witness:
            node.witness.update(witness)

    # -- parent stack (big-step engines) --------------------------------------

    def push(self, node_id: Optional[int]) -> None:
        self._stack.append(node_id)

    def pop(self) -> None:
        if self._stack:
            self._stack.pop()

    @property
    def current_parent(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # -- queries --------------------------------------------------------------

    def solutions(self) -> List[ProvNode]:
        return [n for n in self.nodes if n.disposition == "solution"]

    def by_disposition(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for node in self.nodes:
            out[node.disposition] = out.get(node.disposition, 0) + 1
        return out

    def path_to(self, node_id: int) -> List[ProvNode]:
        """Root-to-node chain of one derivation."""
        chain: List[ProvNode] = []
        current: Optional[int] = node_id
        while current is not None:
            node = self.nodes[current]
            chain.append(node)
            current = node.parent
        chain.reverse()
        return chain

    # -- serialization --------------------------------------------------------

    def nodes_to_spans(self) -> List[Dict[str, object]]:
        """Every node in the serialized-span shape (OTLP-exportable)."""
        return [node.as_span() for node in self.nodes]

    def to_jsonl(self) -> str:
        """JSON lines in the tracer's span format (see module docstring)."""
        return "\n".join(
            json.dumps(span, sort_keys=True) for span in self.nodes_to_spans()
        )

    def write_jsonl(self, path: str) -> None:
        text = self.to_jsonl()
        with open(path, "w") as handle:
            handle.write(text + ("\n" if text else ""))

    @classmethod
    def from_jsonl(cls, text: str) -> "ProvenanceRecorder":
        """Reload a serialized provenance log (``to_jsonl`` inverse)."""
        recorder = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            recorder.nodes.append(ProvNode.from_span(json.loads(line)))
        recorder.nodes.sort(key=lambda n: n.node_id)
        return recorder


# -- ambient activation --------------------------------------------------------
#
# Mirrors repro.obs.context: engines consult one module slot at entry
# (``provenance=None`` on the engine falls back to the ambient
# recorder), so callers that cannot thread a keyword argument through
# -- the profile suite's fixed workloads, chiefly -- can still record.

_ACTIVE_RECORDER: Optional[ProvenanceRecorder] = None


def active_recorder() -> Optional[ProvenanceRecorder]:
    """The ambient recorder, or ``None`` (recording off)."""
    return _ACTIVE_RECORDER


@contextmanager
def recording(
    recorder: Optional[ProvenanceRecorder] = None,
) -> Iterator[ProvenanceRecorder]:
    """Activate *recorder* (a fresh one if none) for a block; nests."""
    global _ACTIVE_RECORDER
    rec = recorder if recorder is not None else ProvenanceRecorder()
    previous = _ACTIVE_RECORDER
    _ACTIVE_RECORDER = rec
    try:
        yield rec
    finally:
        _ACTIVE_RECORDER = previous


# -- helpers -------------------------------------------------------------------


def action_delta(action) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """The (inserted, deleted) tuples of one trace action.

    ``iso`` actions flatten their subtrace: the isolated sub-execution
    is one atomic step, so its net updates belong to the step.  The same
    goes for ``table`` actions, whose subtrace is the cached big-step
    execution of a tabled call.
    """
    kind = action.kind
    if kind == "ins":
        return (str(action.atom),), ()
    if kind == "del":
        return (), (str(action.atom),)
    if kind not in ("iso", "table"):
        return (), ()
    inserted: List[str] = []
    deleted: List[str] = []
    stack = list(action.subtrace)
    while stack:
        sub = stack.pop(0)
        if sub.kind == "ins":
            inserted.append(str(sub.atom))
        elif sub.kind == "del":
            deleted.append(str(sub.atom))
        elif sub.kind in ("iso", "table"):
            stack[0:0] = list(sub.subtrace)
    return tuple(inserted), tuple(deleted)


def db_delta(
    db_in, db_out, cap: int = _DELTA_CAP
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Inserted/deleted fact strings between two database states (the
    big-step engines' delta; small-step engines use :func:`action_delta`)."""
    if db_in is db_out or db_in == db_out:
        return (), ()
    before = set(db_in)
    after = set(db_out)
    inserted = sorted(str(f) for f in after - before)
    deleted = sorted(str(f) for f in before - after)
    if len(inserted) > cap:
        inserted = inserted[:cap] + ["... (+%d more)" % (len(inserted) - cap)]
    if len(deleted) > cap:
        deleted = deleted[:cap] + ["... (+%d more)" % (len(deleted) - cap)]
    return tuple(inserted), tuple(deleted)


def render_bindings(subst, limit: int = 8) -> Dict[str, str]:
    """A step's unifier as a small string map (capped for log size)."""
    if not subst:
        return {}
    out: Dict[str, str] = {}
    items = sorted(subst.items(), key=lambda kv: str(kv[0]))
    for i, (v, t) in enumerate(items):
        if i >= limit:
            out["..."] = "+%d more" % (len(items) - limit)
            break
        out[str(v)] = str(t)
    return out


def config_digest(proc, db) -> str:
    """A short stable digest of a configuration, for correlating
    subsumption witnesses across runs.  Never uses Python ``hash()``
    (randomized per process); the digest is over rendered strings."""
    h = hashlib.sha1()
    h.update(str(proc).encode())
    for fact in sorted(str(f) for f in db):
        h.update(b"|")
        h.update(fact.encode())
    return h.hexdigest()[:12]
