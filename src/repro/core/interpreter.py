"""The full Transaction Datalog engine.

Full TD is data complete for RE (the paper's central expressibility
theorem), so no terminating evaluator exists; this engine provides the
two procedures that are possible:

* :meth:`Interpreter.solve` -- a breadth-first *semi-decision* procedure.
  BFS over the configuration graph is fair: if any execution of the goal
  exists it is found, even when other branches diverge (e.g. a runaway
  recursive process).  A configurable budget turns non-termination into a
  :class:`~repro.core.errors.SearchBudgetExceeded` report.

* :meth:`Interpreter.simulate` -- a depth-first backtracking scheduler
  that finds *one* successful execution and returns its full trace of
  elementary operations.  This is the mode in which the paper's workflow
  examples are "executed on the prototype and perform exactly as
  described"; a seed makes the interleaving choices reproducible, or
  deterministic left-to-right when no seed is given.

Isolated sub-processes (``iso(a)``) are executed by a nested search from
the current state; each complete sub-execution contributes one atomic
transition, which is precisely the paper's notion of isolation.  An
``iso`` with a budget annotation (``iso[k](a)``, or the ``with_budget``
recovery combinator) runs the nested search under a *private cap*: if
the attempt cannot complete within ``k`` configurations it simply
*fails*, which by the paper's rollback-on-failure semantics leaves no
trace -- the launching pad for ``retry``/``fallback`` recovery.

Graceful degradation: breadth-first searches interrupted by the budget
or by a cooperative :class:`Deadline` attach a resumable
:class:`Checkpoint` to the raised exception; :meth:`Interpreter.resume`
continues the search exactly where it stopped, with a fresh budget.

Fault injection: an injector passed as ``faults=`` (anything with a
``perturb(process, database, steps)`` method -- see
:mod:`repro.faults.inject`) is consulted once per configuration
expansion and may drop, reorder, or abort the enabled steps.  The hook
is duck-typed so the core never imports the faults package.

Storage: a backend passed as ``store=`` (anything speaking the
:class:`repro.store.Store` protocol -- same duck-typing discipline as
``faults=``) supplies the initial state when ``db`` is omitted, and
:meth:`Interpreter.simulate` *commits* the winning execution's trace to
it under savepoint-mapped isolation -- top-level savepoint around the
run, a nested savepoint per ``iso`` subtrace.  The search itself never
writes to the store (states stay immutable in-memory values), so the
default ``store=None`` path is byte-identical to before the protocol
existed.  See docs/STORAGE.md.
"""

from __future__ import annotations

import random
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..obs import hotspots as _hot
from ..obs.context import Instrumentation, NOOP, active
from ..obs.provenance import active_recorder, config_digest
from .database import Database
from .errors import AttemptBudgetExceeded, DeadlineExceeded, SearchBudgetExceeded
from .formulas import TRUTH, Call, Formula, Seq, apply_subst, formula_variables, seq
from .parser import as_goal
from .por import PartialOrderReducer, por_forced_off
from .program import Program
from .tabling import AnswerTable, canonical_call, tabling_forced_off
from .terms import Atom, Term, Variable
from .transitions import (
    Action,
    Configuration,
    Step,
    _ckey_pair,
    canonical_key,
    dead_config,
    enabled_steps,
    frontier_blocked,
    is_final,
    update_footprint,
)
from .unify import Substitution, walk

__all__ = ["Interpreter", "Solution", "Execution", "Checkpoint", "Deadline"]


@dataclass(frozen=True)
class Solution:
    """One way the goal can commit: answer bindings + final database."""

    bindings: Substitution
    database: Database


@dataclass(frozen=True)
class Execution:
    """A complete successful execution: solution plus the action trace.

    ``action_times`` (set only by instrumented :meth:`Interpreter.
    simulate` runs) gives one ``time.perf_counter()`` stamp per trace
    action -- the moment the scheduler committed to it -- so consumers
    like the workflow scheduler can reconstruct exact per-task spans.
    ``None`` on uninstrumented runs and on BFS executions.
    """

    bindings: Substitution
    database: Database
    trace: Tuple[Action, ...]
    action_times: Optional[Tuple[float, ...]] = None

    @property
    def events(self) -> Tuple[str, ...]:
        """The trace rendered as strings (handy in tests and logs).

        ``table`` wrappers are flattened to the execution they recorded:
        unlike ``iso`` (whose bracket marks an atomicity boundary), a
        table action is a memoization artifact, and the events stream
        must read the same whether an answer was derived or replayed.
        """
        out: List[str] = []

        def emit(actions: Tuple[Action, ...]) -> None:
            for action in actions:
                if action.kind == "table":
                    emit(action.subtrace)
                else:
                    out.append(str(action))

        emit(self.trace)
        return tuple(out)


@dataclass(frozen=True)
class Checkpoint:
    """A resumable snapshot of an interrupted breadth-first search.

    Captured by :meth:`Interpreter._bfs` when the budget or a deadline
    fires and attached to the in-flight exception (``exc.checkpoint``);
    each enclosing search layer overwrites the field as the exception
    propagates, so the caller always sees the *outermost* (user-goal)
    checkpoint.  The snapshot is self-contained and picklable: frontier
    configurations, the visited-key summary, and already-emitted answers
    (so resumption never re-yields a solution).

    Resume with :meth:`Interpreter.resume`; a checkpoint taken under one
    ``sort_concurrent`` setting can only be resumed under the same one
    (the visited summary is keyed by canonical form).

    Deliberately *not* stored: the frontier's queued-key subsumption
    set.  It is a pure function of the frontier configurations, so
    resumption re-derives it from the pickled configurations -- a
    pickled copy could go stale if the key computation ever changes
    between checkpoint and resume.
    """

    goal: Formula
    goal_vars: Tuple[Variable, ...]
    frontier: Tuple[Configuration, ...]
    seen: frozenset
    emitted: frozenset
    traces: Optional[Mapping[object, Tuple[Action, ...]]]
    want_trace: bool
    spent: int
    sort_concurrent: bool
    #: Warm answer-table snapshot (:meth:`repro.core.tabling.
    #: AnswerTable.snapshot`), or ``None`` when the interrupted search
    #: ran untabled.  Resuming restores it so already-generated answers
    #: are served, not re-derived; a resuming interpreter with
    #: ``tabling=False`` simply ignores it (the snapshot carries no
    #: information the search cannot re-derive).
    table: Optional[tuple] = None
    #: Config keys whose expansion must run *naively* (small-step) on
    #: resume.  A budget that fires inside a table generation would
    #: otherwise livelock under tight resume caps: the big-stepped
    #: expansion restarts from scratch every hop and never banks
    #: frontier progress.  Marking the interrupted config naive restores
    #: the small-step progress guarantee (one budget unit per step) for
    #: exactly the configs that need it; everything else stays tabled.
    naive: frozenset = frozenset()

    @property
    def frontier_size(self) -> int:
        return len(self.frontier)


class Deadline:
    """A cooperative wall-clock deadline.

    Checked by the search loops between configuration expansions (never
    inside an elementary step), so the caller always observes consistent
    pre-step state.  The clock is injectable for deterministic tests;
    it defaults to :func:`time.monotonic`.
    """

    __slots__ = ("limit", "clock", "start")

    def __init__(
        self, limit: float, clock: Optional[Callable[[], float]] = None
    ):
        self.limit = limit
        self.clock = clock if clock is not None else time.monotonic
        self.start = self.clock()

    def check(self) -> None:
        elapsed = self.clock() - self.start
        if elapsed > self.limit:
            raise DeadlineExceeded(elapsed, self.limit)


def _as_deadline(deadline) -> Optional[Deadline]:
    """Accept seconds, a ready-made :class:`Deadline`, or ``None``."""
    if deadline is None:
        return None
    if hasattr(deadline, "check"):
        return deadline
    return Deadline(float(deadline))


class _Budget:
    """A mutable step budget shared by a search and its nested searches.

    When instrumentation is active the budget reports each spend as the
    ``search.steps`` counter and, on exhaustion, records the final
    figure in both the raised exception and the ``budget.spent`` gauge.
    The extra work is guarded by a single ``None`` check so the
    uninstrumented path stays two instructions.
    """

    __slots__ = ("limit", "used", "obs")

    def __init__(self, limit: int, obs: Optional[Instrumentation] = None):
        self.limit = limit
        self.used = 0
        self.obs = obs if (obs is not None and obs.enabled) else None

    def spend(self) -> None:
        self.used += 1
        obs = self.obs
        if obs is not None:
            obs.metrics.inc("search.steps")
        if self.used > self.limit:
            if obs is not None:
                obs.metrics.inc("budget.exceeded")
                obs.metrics.gauge_max("budget.spent", self.used)
            raise SearchBudgetExceeded(self.used, self.limit, spent=self.used)


class _CappedBudget:
    """A bounded attempt's private budget, layered over the shared one.

    Every spend charges the *parent* first (the global budget is a hard
    ceiling shared with nested searches, as before) and then the private
    cap; exceeding the cap raises :class:`AttemptBudgetExceeded`, which
    the isolation runner converts into attempt failure (rollback), not
    an abort of the whole search.
    """

    __slots__ = ("parent", "cap", "used")

    def __init__(self, parent, cap: int):
        self.parent = parent
        self.cap = cap
        self.used = 0

    def spend(self) -> None:
        self.parent.spend()
        self.used += 1
        if self.used > self.cap:
            exc = AttemptBudgetExceeded(self.used, self.cap, spent=self.used)
            # Tag the raiser so nested bounded attempts can tell their
            # own cap from an enclosing one (which must keep propagating
            # until it reaches the runner that created it).
            exc.attempt = self
            raise exc


class Interpreter:
    """Breadth-first semi-decision procedure and DFS simulator for full TD.

    Parameters
    ----------
    program:
        The rulebase.
    max_configs:
        Total configuration budget for one query (shared with nested
        isolation searches).  Exceeding it raises
        :class:`SearchBudgetExceeded`.
    sort_concurrent:
        Canonicalize configurations by sorting concurrent branches
        (better memoization; switchable for the ablation benchmark).
    por:
        Enable partial-order reduction (default).  Commuting schedules
        of independent concurrent branches collapse to one
        representative; the reachable (answers, final database) pairs
        are unchanged (see :mod:`repro.core.por` for the argument and
        ``tests/core/test_transitions_diff.py`` for the differential).
        Automatically disabled while a fault injector is attached --
        the injector perturbs *schedules*, so every schedule must be
        enumerated to be perturbable.  ``por=False`` restores the full
        interleaving enumeration (the oracle for the differential).
    faults:
        Optional fault injector: any object with a
        ``perturb(process, database, steps)`` method returning an
        iterator of steps (see :class:`repro.faults.inject.FaultInjector`).
        Consulted once per configuration expansion, including nested
        isolation searches.  An optional truthy ``dormant`` attribute
        signals that no further perturbation can occur, letting the
        search re-enable its failed-state memoization from that point.
        ``None`` (the default) is zero-overhead.
    tabling:
        Enable answer tabling (default; see :mod:`repro.core.tabling`).
        A call in head position -- and every ``iso`` sub-search --
        executes once per (canonical call, database) pair and is served
        from the answer table afterwards; the reachable (answers, final
        database) pairs are unchanged (``tests/core/test_tabling.py``
        is the differential).  Same discipline as ``por``: bypassed
        automatically while a fault injector is attached, and
        ``tabling=False`` keeps the naive search as the oracle.
    """

    def __init__(
        self,
        program: Program,
        max_configs: int = 200_000,
        sort_concurrent: bool = True,
        faults=None,
        por: bool = True,
        provenance=None,
        attribution=None,
        *,
        store=None,
        tabling: bool = True,
    ):
        self.program = program
        self.max_configs = max_configs
        self.sort_concurrent = sort_concurrent
        self.faults = faults
        self.por = por
        #: Optional storage backend (see :class:`repro.store.Store`),
        #: duck-typed like ``faults``.  Explicit beats the ambient
        #: provider (:func:`repro.store.using_store_provider`); with
        #: neither, searches run over plain in-memory states exactly as
        #: before.
        self.store = store
        #: Optional :class:`repro.obs.provenance.ProvenanceRecorder`.
        #: ``None`` (the default) also consults the ambient recorder at
        #: each entry point (see :func:`repro.obs.provenance.recording`);
        #: with neither attached the hot loops pay one ``is None`` check.
        self.provenance = provenance
        #: Optional :class:`repro.obs.hotspots.CostAttributor`, same
        #: discipline as ``provenance``: explicit beats the ambient one
        #: installed by :func:`repro.obs.hotspots.attributing`, off by
        #: default, and the engine counters are byte-identical when off.
        self.attribution = attribution
        self._reducer = (
            PartialOrderReducer(program) if (por and not por_forced_off()) else None
        )
        #: Effective tabling switch and the per-interpreter answer table
        #: (persistent across searches, like the sequential engine's).
        #: The table is consulted only while no fault injector is
        #: attached -- same bypass as the reducer.
        self.tabling = tabling and not tabling_forced_off()
        self._table = AnswerTable() if self.tabling else None

    def _prov(self):
        """The recorder for this search: explicit beats ambient."""
        return self.provenance if self.provenance is not None else active_recorder()

    def _attr(self):
        """The cost attributor for this search: explicit beats ambient."""
        return (
            self.attribution
            if self.attribution is not None
            else _hot.active_attributor()
        )

    def _enabled_steps(
        self, proc, db, isol_runner, obs: Instrumentation, prov=None, parent=None
    ):
        """The transition relation this search uses: partial-order
        reduced when enabled and no fault injector is attached, the
        full enumeration otherwise.  ``prov``/``parent`` flow to the
        reducer so ample-set decisions land in the derivation record."""
        reducer = self._reducer if self.faults is None else None
        enabled = obs.enabled
        return enabled_steps(
            self.program,
            proc,
            db,
            isol_runner,
            reducer=reducer,
            metrics=obs.metrics if enabled else None,
            tracer=obs.tracer if enabled else None,
            prov=prov,
            prov_parent=parent,
        )

    def _make_budget(self, obs: Optional[Instrumentation] = None) -> "_Budget":
        """A fresh step budget (used by the verifier, which drives the
        transition relation directly but reuses the isolation runner)."""
        return _Budget(self.max_configs, obs)

    def _resolve_state(self, db: Optional[Database]):
        """Resolve ``(store, initial db)`` for one search entry (see
        :func:`_resolve_store`)."""
        return _resolve_store(self.store, db)

    # -- public API -------------------------------------------------------------

    def solve(
        self,
        goal: Union[str, Formula],
        db: Optional[Database] = None,
        *,
        deadline: Union[None, float, Deadline] = None,
    ) -> Iterator[Solution]:
        """Enumerate solutions fairly (BFS).

        *goal* may be a formula or concrete syntax (``"p(X) * q(X)"``).
        Yields each distinct (answer bindings, final database) pair once.
        Terminates iff the reachable configuration space is finite;
        otherwise enumeration is fair and the budget eventually fires.

        With ``db=None`` the initial state comes from the attached
        store (see the class docstring); the search is a read-only
        query on it.

        *deadline* (seconds, or a :class:`Deadline`) arms a cooperative
        stop: when it fires, :class:`DeadlineExceeded` is raised with a
        resumable checkpoint attached, like budget exhaustion.
        """
        _, db = self._resolve_state(db)
        goal = self.program.resolve_goal(as_goal(goal))
        obs = active()
        budget = _Budget(self.max_configs, obs)
        goal_vars = _ordered_vars(goal)
        attr = self._attr()

        def _search():
            with obs.span("solve", engine="interpreter", goal=str(goal)):
                try:
                    for answers, final_db, _ in self._bfs(
                        goal,
                        db,
                        goal_vars,
                        budget,
                        want_trace=False,
                        obs=obs,
                        deadline=_as_deadline(deadline),
                        prov=self._prov(),
                        attr=attr,
                    ):
                        yield Solution(dict(zip(goal_vars, answers)), final_db)
                finally:
                    _note_budget(obs, budget)
                    self._note_table(obs)

        yield from _hot.meter_engine(attr, _search(), "bfs")

    def succeeds(self, goal: Union[str, Formula], db: Database) -> bool:
        """True iff some execution of *goal* from *db* commits."""
        for _ in self.solve(goal, db):
            return True
        return False

    def final_databases(self, goal: Union[str, Formula], db: Database) -> Set[Database]:
        """All final states reachable by executing *goal* from *db*."""
        return {sol.database for sol in self.solve(goal, db)}

    def run(
        self,
        goal: Union[str, Formula],
        db: Optional[Database] = None,
        *,
        deadline: Union[None, float, Deadline] = None,
    ) -> Iterator[Execution]:
        """Like :meth:`solve` but with execution traces attached."""
        _, db = self._resolve_state(db)
        goal = self.program.resolve_goal(as_goal(goal))
        obs = active()
        budget = _Budget(self.max_configs, obs)
        goal_vars = _ordered_vars(goal)
        attr = self._attr()

        def _search():
            with obs.span(
                "solve", engine="interpreter", mode="run", goal=str(goal)
            ):
                try:
                    for answers, final_db, trace in self._bfs(
                        goal,
                        db,
                        goal_vars,
                        budget,
                        want_trace=True,
                        obs=obs,
                        deadline=_as_deadline(deadline),
                        prov=self._prov(),
                        attr=attr,
                    ):
                        yield Execution(
                            dict(zip(goal_vars, answers)), final_db, trace
                        )
                finally:
                    _note_budget(obs, budget)
                    self._note_table(obs)

        yield from _hot.meter_engine(attr, _search(), "bfs")

    def resume(
        self,
        checkpoint: Checkpoint,
        *,
        deadline: Union[None, float, Deadline] = None,
    ) -> Iterator[Union[Solution, Execution]]:
        """Continue an interrupted breadth-first search from *checkpoint*.

        The search resumes with a **fresh budget** of ``max_configs``
        (the tabling papers' restart discipline: each resumption gets a
        full allowance) and never re-yields an answer the interrupted
        search already emitted.  Yields :class:`Execution` when the
        original search wanted traces (``run``), else :class:`Solution`.

        If this resumption is interrupted again, the new exception
        carries a new checkpoint -- resumption composes indefinitely,
        and resuming the checkpoint of a *finished* search yields
        nothing (idempotence).
        """
        if checkpoint.sort_concurrent != self.sort_concurrent:
            raise ValueError(
                "checkpoint was taken with sort_concurrent=%r but this "
                "interpreter uses sort_concurrent=%r; the visited-state "
                "summary is not comparable"
                % (checkpoint.sort_concurrent, self.sort_concurrent)
            )
        obs = active()
        budget = _Budget(self.max_configs, obs)
        goal_vars = list(checkpoint.goal_vars)
        attr = self._attr()
        if checkpoint.table is not None and self._table is not None:
            # Warm-start from the interrupted search's answers.  A fresh
            # restore per resumption keeps resuming the same checkpoint
            # twice idempotent (the table is never shared between them).
            self._table = AnswerTable.restore(checkpoint.table)

        def _search():
            with obs.span(
                "resume",
                engine="interpreter",
                goal=str(checkpoint.goal),
                frontier=str(checkpoint.frontier_size),
            ):
                try:
                    for answers, final_db, trace in self._bfs(
                        checkpoint.goal,
                        None,
                        goal_vars,
                        budget,
                        want_trace=checkpoint.want_trace,
                        obs=obs,
                        deadline=_as_deadline(deadline),
                        state=checkpoint,
                        prov=self._prov(),
                        attr=attr,
                    ):
                        bindings = dict(zip(goal_vars, answers))
                        if checkpoint.want_trace:
                            yield Execution(bindings, final_db, trace)
                        else:
                            yield Solution(bindings, final_db)
                finally:
                    _note_budget(obs, budget)
                    self._note_table(obs)

        yield from _hot.meter_engine(attr, _search(), "bfs")

    def simulate(
        self,
        goal: Union[str, Formula],
        db: Optional[Database] = None,
        *legacy,
        seed: Optional[int] = None,
        max_depth: int = 100_000,
        deadline: Union[None, float, Deadline] = None,
    ) -> Optional[Execution]:
        """Find one successful execution by DFS with backtracking.

        With ``seed`` the interleaving choices are shuffled reproducibly;
        without it the scheduler is deterministic (program order, left
        branch first).  Returns ``None`` if the goal has no execution
        within the explored space.  Depth-first stacks are not
        checkpointable, so budget/deadline errors raised here carry
        ``checkpoint=None``.

        When a store is attached, the winning execution's trace is
        committed to it before returning -- inserts and deletes
        replayed in commit order, each ``iso`` subtrace inside a nested
        savepoint under one top-level savepoint -- so the store's
        durable state advances iff the simulation succeeded.
        """
        store, db = self._resolve_state(db)
        seed, max_depth = _simulate_legacy_args(legacy, seed, max_depth)
        goal = self.program.resolve_goal(as_goal(goal))
        obs = active()
        budget = _Budget(self.max_configs, obs)
        rng = random.Random(seed) if seed is not None else None
        goal_vars = _ordered_vars(goal)
        attr = self._attr()
        with obs.span("simulate", engine="interpreter", goal=str(goal)), \
                _hot.engine_frame(attr, "dfs"):
            try:
                result = self._dfs(
                    goal,
                    db,
                    goal_vars,
                    budget,
                    rng,
                    max_depth,
                    obs=obs,
                    deadline=_as_deadline(deadline),
                    prov=self._prov(),
                    attr=attr,
                )
            except (SearchBudgetExceeded, DeadlineExceeded) as exc:
                exc.goal = goal
                raise
            finally:
                _note_budget(obs, budget)
                self._note_table(obs)
        if result is None:
            return None
        answers, final_db, trace, times = result
        if store is not None:
            _commit_execution(store, trace)
        return Execution(dict(zip(goal_vars, answers)), final_db, trace, times)

    # -- BFS core ---------------------------------------------------------------

    def _bfs(
        self,
        goal: Formula,
        db: Optional[Database],
        goal_vars: Sequence[Variable],
        budget,
        want_trace: bool,
        obs: Instrumentation = NOOP,
        deadline: Optional[Deadline] = None,
        state: Optional[Checkpoint] = None,
        prov=None,
        attr=None,
        count_solutions: bool = True,
    ) -> Iterator[Tuple[Tuple[Term, ...], Database, Tuple[Action, ...]]]:
        insertable, deletable = update_footprint(self.program, goal)
        # Answer tabling is bypassed under fault injection, exactly like
        # the reducer: fault plans target individual schedules, so the
        # chaos harness must see the naive expansion (byte-identical
        # reports whatever the table holds).
        table = self._table if self.faults is None else None
        # The frontier is bucketed by canonical key: alongside the FIFO
        # queue of (configuration, key) pairs, ``queued`` holds the keys
        # currently awaiting expansion and ``seen`` the keys already
        # expanded (or emitted).  A successor whose key is already
        # queued is *subsumed* -- a second schedule reached the same
        # canonical configuration before the first copy was expanded --
        # and dropped without occupying a frontier slot, which is what
        # bounds ``search.frontier_peak`` on diamond-shaped interleaving
        # lattices.  ``queued`` is always derived from the frontier
        # itself (never checkpointed), so :meth:`resume` rebuilds it
        # from the pickled configurations instead of trusting a stale
        # pickle of the subsumption set.
        if state is None:
            start = Configuration(goal, db, tuple(goal_vars))
            start_key = self._key(start)
            frontier = deque([(start, start_key)])
            seen = set()
            traces: Dict[object, Tuple[Action, ...]] = {start_key: ()}
            emitted = set()
        else:
            frontier = deque((c, self._key(c)) for c in state.frontier)
            seen = set(state.seen)
            traces = dict(state.traces) if state.traces is not None else {}
            emitted = set(state.emitted)
        naive_keys = set(state.naive) if state is not None else set()
        queued = {key for _, key in frontier}
        enabled = obs.enabled
        faults = self.faults
        # Provenance bookkeeping maps canonical config keys to node ids
        # in the derivation DAG; ``prov`` is None on uninstrumented runs
        # (and for the inner searches of ``iso``), so every touch below
        # is guarded by a single ``prov is not None`` check.
        node_ids: Dict[object, Optional[int]] = {}
        if prov is not None:
            if state is None:
                root = prov.record("config", str(goal), disposition="root")
                node_ids[frontier[0][1]] = root
            else:
                root = prov.record(
                    "config", "(resume) " + str(goal), disposition="root"
                )
                for c, key in frontier:
                    node_ids[key] = prov.record(
                        "config", "(resumed) " + str(c.process), parent=root
                    )

        while frontier:
            config, config_key = frontier.popleft()
            queued.discard(config_key)
            seen.add(config_key)
            if is_final(config.process):
                result = (config.answers, config.database)
                if result not in emitted:
                    emitted.add(result)
                    if enabled and count_solutions:
                        obs.metrics.inc("search.solutions")
                    if prov is not None:
                        prov.mark(
                            node_ids.get(config_key),
                            "solution",
                            witness={
                                "answers": [str(a) for a in config.answers]
                            },
                        )
                    yield config.answers, config.database, traces.get(config_key, ())
                continue
            if enabled:
                obs.metrics.inc("search.configs_expanded")
            parent = node_ids.get(config_key) if prov is not None else None
            stepped = False
            head = None
            try:
                if deadline is not None:
                    deadline.check()
                if table is not None and config_key not in naive_keys:
                    head = _head_call(config.process)
                if head is not None:
                    steps = self._table_steps(
                        head[0],
                        head[1],
                        config.process,
                        config.database,
                        budget,
                        obs,
                        deadline,
                        attr,
                        prov,
                        parent,
                    )
                else:
                    steps = self._enabled_steps(
                        config.process,
                        config.database,
                        self._isol_runner(budget, obs, deadline, attr),
                        obs,
                        prov,
                        parent,
                    )
                if faults is not None:
                    steps = faults.perturb(config.process, config.database, steps)
                if attr is not None:
                    steps = attr.meter_steps(steps)
                for step in steps:
                    budget.spend()
                    stepped = True
                    new_proc = apply_subst(step.residual, step.subst)
                    if dead_config(new_proc, step.database, insertable, deletable):
                        if prov is not None:
                            prov.record_step(step, parent, "dead-config")
                        continue
                    new_answers = tuple(walk(t, step.subst) for t in config.answers)
                    succ = Configuration(new_proc, step.database, new_answers)
                    key = self._key(succ)
                    if key in queued:
                        if enabled:
                            obs.metrics.inc("frontier.subsumed")
                            obs.tracer.event(
                                "frontier.subsumed",
                                config=str(new_proc),
                                by="queued",
                            )
                        if prov is not None:
                            prov.record_step(
                                step,
                                parent,
                                "frontier-subsumed",
                                witness={
                                    "subsumed_by": node_ids.get(key),
                                    "where": "queued",
                                    "config": config_digest(
                                        new_proc, step.database
                                    ),
                                },
                            )
                        continue
                    if key in seen:
                        if prov is not None:
                            prov.record_step(
                                step,
                                parent,
                                "frontier-subsumed",
                                witness={
                                    "subsumed_by": node_ids.get(key),
                                    "where": "seen",
                                    "config": config_digest(
                                        new_proc, step.database
                                    ),
                                },
                            )
                        continue
                    queued.add(key)
                    if prov is not None:
                        node_ids[key] = prov.record_step(step, parent)
                    if want_trace:
                        traces[key] = traces.get(config_key, ()) + (step.action,)
                    frontier.append((succ, key))
                    if enabled:
                        obs.metrics.gauge_max("search.frontier_peak", len(frontier))
                if prov is not None and not stepped:
                    prov.mark(node_ids.get(config_key), "failed-unify")
            except (SearchBudgetExceeded, DeadlineExceeded) as exc:
                # Interrupted mid-expansion: re-queue the current
                # configuration (successors already discovered stay in
                # ``seen``, so re-expanding it on resume is sound) and
                # attach a resumable snapshot.  Every enclosing search
                # layer runs this same handler as the exception
                # propagates, so the outermost (user-goal) checkpoint
                # wins.
                frontier.appendleft((config, config_key))
                if head is not None:
                    # The interrupt fired inside a big-stepped (tabled)
                    # expansion; see ``Checkpoint.naive``.
                    naive_keys.add(config_key)
                exc.goal = goal
                exc.checkpoint = Checkpoint(
                    goal=goal,
                    goal_vars=tuple(goal_vars),
                    frontier=tuple(c for c, _ in frontier),
                    seen=frozenset(seen),
                    emitted=frozenset(emitted),
                    traces=dict(traces) if want_trace else None,
                    want_trace=want_trace,
                    spent=budget.used,
                    sort_concurrent=self.sort_concurrent,
                    table=(
                        self._table.snapshot()
                        if self._table is not None
                        else None
                    ),
                    naive=frozenset(naive_keys),
                )
                if enabled:
                    obs.metrics.inc("search.checkpoints")
                if prov is not None:
                    prov.mark(
                        node_ids.get(config_key),
                        "budget-exhausted"
                        if isinstance(exc, SearchBudgetExceeded)
                        else "deadline-exhausted",
                    )
                raise

    def _key(self, config: Configuration):
        return (
            canonical_key(config.process, sort_conc=self.sort_concurrent),
            config.database,
            tuple(
                t if not isinstance(t, Variable) else None for t in config.answers
            ),
        )

    # -- answer tabling ----------------------------------------------------------

    def _table_steps(
        self, atom, rest, proc, db, budget, obs, deadline, attr, prov, parent
    ):
        """Steps for a head-position call, served from the answer table.

        One step per complete execution of the call: the step's database
        is the execution's final state, its substitution the answer
        bindings, its residual the rest of the sequence, and its action
        a ``table`` record carrying the cached trace (replay-valid).
        Sequential composition is a barrier, so big-stepping the head
        call this way is solution-equivalent to the small-step search --
        no external step can interleave with it (the argument in
        :mod:`repro.core.tabling`).  On a miss the generator *streams*:
        answers are served as the nested searches find them, keeping the
        top-level enumeration fair on divergent workloads.
        """
        table = self._table
        enabled = obs.enabled
        canon, _ = canonical_call(atom)
        entry, delta_cost = table.entry(canon, db)
        if entry is None:
            # Key cap reached: this call runs untabled.
            yield from self._enabled_steps(
                proc,
                db,
                self._isol_runner(budget, obs, deadline, attr),
                obs,
                prov,
                parent,
            )
            return
        residual = seq(*rest) if rest else TRUTH
        hit = entry.complete or entry.active
        if enabled:
            obs.metrics.inc("table.hits" if hit else "table.misses")
            if delta_cost:
                obs.metrics.inc("table.delta_bytes", delta_cost)
            if hit:
                obs.tracer.event(
                    "table.hit", call=str(atom), key=str(canon)
                )
        if hit:
            # A hit prunes like frontier subsumption: the whole
            # re-expansion of the call collapses into served answers.
            if prov is not None:
                prov.record(
                    "table",
                    str(atom),
                    parent=parent,
                    disposition="table-hit",
                    witness={
                        "key": str(canon),
                        "answers": len(entry.order),
                        "complete": entry.complete,
                    },
                )
            if attr is not None:
                attr.charge(
                    "table.hit_credit",
                    max(len(entry.order), 1),
                    predicate=atom.pred,
                )
            if entry.active:
                # Consumer of an in-progress generator: serve the
                # current snapshot and flag every stacked generator so
                # none of them completes on this round's information.
                table.note_consumed(entry)
        for answer in list(entry.order):
            yield self._answer_step(atom, answer, residual)
        if hit:
            return
        for answer in self._generate(
            entry, canon, db, budget, obs, deadline, attr
        ):
            yield self._answer_step(atom, answer, residual)

    def _generate(self, entry, canon, db, budget, obs, deadline, attr):
        """Generator for one table entry: run the matching rule bodies
        under nested breadth-first searches, yielding each answer *new
        to the entry* as it is found, and loop until the global answer
        stamp stabilizes (consumer/generator suspension: a nested
        occurrence of an in-progress key consumed a snapshot, so its
        round must re-run once anything grew).  The entry completes only
        if its final round depended on no in-progress entry but itself.
        """
        table = self._table
        entry.active = True
        table.generating.append(entry)
        try:
            while True:
                before = table.stamp
                entry.round_deps = set()
                for rule, theta in self.program.match_rules(canon):
                    token = (
                        attr.push(
                            rule=_hot.rule_label(rule.head),
                            predicate=canon.pred,
                        )
                        if attr is not None
                        else None
                    )
                    try:
                        body = apply_subst(rule.body, theta)
                        answer_terms = tuple(
                            walk(a, theta) for a in canon.args
                        )
                        for values, final_db, trace in self._bfs(
                            body,
                            db,
                            answer_terms,
                            budget,
                            want_trace=True,
                            obs=obs,
                            deadline=deadline,
                            attr=attr,
                            count_solutions=False,
                        ):
                            added, retired = entry.add(values, final_db, trace)
                            if retired and obs.enabled:
                                obs.metrics.inc("table.subsumed", retired)
                            if added is not None:
                                table.stamp += 1
                                yield added
                    finally:
                        if token is not None:
                            attr.pop(token)
                deps = entry.round_deps - {id(entry)}
                if not entry.round_deps:
                    # The round consumed nothing in flight: it saw only
                    # complete information, so re-running cannot grow it.
                    entry.complete = True
                    return
                if table.stamp == before:
                    # Global fixpoint given the current snapshots.  If
                    # the only in-flight dependency was this entry
                    # itself, that *is* completion; otherwise leave the
                    # entry warm for the enclosing generator's next
                    # round.
                    entry.complete = not deps
                    return
        finally:
            entry.active = False
            table.generating.pop()

    def _answer_step(self, atom, answer, residual):
        """Turn one cached answer into a transition step for the caller.

        Bound answer positions bind the caller's variables; an unbound
        position leaves the caller's variable free, with sharing between
        positions preserved (the first caller variable to meet an answer
        variable stands in for it).
        """
        values, final_db, trace = answer
        fresh: Dict[Variable, Term] = {}
        theta: Dict[Variable, Term] = {}
        for arg, value in zip(atom.args, values):
            if not isinstance(arg, Variable) or arg in theta:
                continue
            if isinstance(value, Variable):
                if value in fresh:
                    theta[arg] = fresh[value]
                else:
                    fresh[value] = arg
                continue
            theta[arg] = value
        return Step(
            Action("table", atom=atom, subtrace=trace),
            theta,
            residual,
            final_db,
        )

    def _note_table(self, obs: Instrumentation) -> None:
        """Record the table-size gauges after a search (same shape as the
        sequential engine's ``table.keys``/``table.answers``)."""
        table = self._table
        if table is None or not obs.enabled:
            return
        obs.metrics.set_gauge("table.keys", table.keys)
        obs.metrics.set_gauge("table.answers", table.answer_count())
        if table.capped:
            obs.metrics.set_gauge("table.capped", table.capped)

    # -- DFS core ---------------------------------------------------------------

    def _dfs(
        self,
        goal: Formula,
        db: Database,
        goal_vars: Sequence[Variable],
        budget,
        rng: Optional[random.Random],
        max_depth: int,
        obs: Instrumentation = NOOP,
        deadline: Optional[Deadline] = None,
        prov=None,
        attr=None,
    ) -> Optional[tuple]:
        insertable, deletable = update_footprint(self.program, goal)
        failed: Set[object] = set()
        # The failed-state memo is keyed on (process, database) alone,
        # which is sound only when enabledness depends on nothing else.
        # A fault injector is *tick*-dependent -- the same configuration
        # can fail now and succeed after a fault window expires -- so
        # the memo starts disabled under faults, and is re-enabled the
        # moment the injector goes dormant (every window expired, no
        # exhaustion pending): from then on the search is exactly
        # fault-free, and entries recorded after that point stay sound.
        use_memo = self.faults is None
        # DFS keeps traces exactly as the scheduler commits them (the
        # paper's workflow examples pin them), so the answer table is
        # used only where it cannot change a trace: pruning branches
        # whose head call has a *complete and empty* entry, plus the
        # iso-execution memo inside the isolation runner.
        table = self._table if self.faults is None else None
        limit_hits = 0  # depth-truncation events (blocks unsound fail-memo)
        trace: List[Action] = []
        # Wall-clock stamps per committed action, mirrored with ``trace``
        # push-for-push and pop-for-pop; only collected on instrumented
        # runs so the hot loop stays clean.
        times: Optional[List[float]] = [] if obs.enabled else None
        faults = self.faults

        def expand(proc: Formula, state: Database, pnode=None):
            """Successor (step, residual process) pairs, pruned of dead
            configurations and ordered so that children whose frontier is
            immediately enabled come before blocked ones (see
            :func:`frontier_blocked`).

            Lazy: ready steps are yielded as they are discovered and
            blocked ones deferred to the end, so a step the DFS never
            backtracks into is never paid for.  This matters for
            ``iso``: the nested search yields one step per isolated
            execution, and eager materialization here would force it to
            enumerate its *entire* execution space even when the first
            one commits the goal.  (Seeded runs still materialize -- a
            shuffle needs the full list.)
            """
            if table is not None:
                head = _head_call(proc)
                if head is not None:
                    entry = table.peek(canonical_call(head[0])[0], state)
                    if entry is not None and entry.complete and not entry.order:
                        # The head call has a completed, empty answer
                        # table entry: no execution of it exists from
                        # this state, so the branch is dead without
                        # expansion.
                        if obs.enabled:
                            obs.metrics.inc("table.hits")
                        if prov is not None:
                            prov.record(
                                "table",
                                str(head[0]),
                                parent=pnode,
                                disposition="table-hit",
                                witness={"answers": 0, "complete": True},
                            )
                        return
            if obs.enabled:
                obs.metrics.inc("search.configs_expanded")
            if deadline is not None:
                deadline.check()
            steps = self._enabled_steps(
                proc,
                state,
                self._isol_runner(budget, obs, deadline, attr),
                obs,
                prov,
                pnode,
            )
            if faults is not None:
                steps = faults.perturb(proc, state, steps)
            if attr is not None:
                steps = attr.meter_steps(steps)
            ready = []
            deferred = []
            for step in steps:
                budget.spend()
                new_proc = apply_subst(step.residual, step.subst)
                if dead_config(new_proc, step.database, insertable, deletable):
                    if prov is not None:
                        prov.record_step(step, pnode, "dead-config")
                    continue
                local = apply_subst(step.local, step.subst)
                if frontier_blocked(local, step.database):
                    deferred.append((step, new_proc))
                elif rng is None:
                    yield step, new_proc
                else:
                    ready.append((step, new_proc))
            if rng is not None:
                rng.shuffle(ready)
                rng.shuffle(deferred)
                yield from ready
            yield from deferred

        # Each frame: [key, step iterator, answers, hits_before, prov
        # node, stepped].  The explicit stack avoids Python recursion
        # limits on long workflow executions.
        root = (
            prov.record("config", str(goal), disposition="root")
            if prov is not None
            else None
        )
        start_key = (canonical_key(goal, self.sort_concurrent), db)
        stack: List[list] = [
            [start_key, expand(goal, db, root), tuple(goal_vars), 0, root, False]
        ]
        enabled = obs.enabled
        if enabled:
            # The DFS twin of the BFS ``search.frontier_peak`` gauge:
            # deepest point the backtracking stack reaches.
            obs.metrics.gauge_max("search.depth_peak", len(stack))

        while stack:
            if not use_memo and getattr(faults, "dormant", False):
                use_memo = True
            frame = stack[-1]
            key, steps, answers, hits_before, fnode, _ = frame
            advanced = False
            for step, new_proc in steps:
                new_answers = tuple(walk(t, step.subst) for t in answers)
                trace.append(step.action)
                if times is not None:
                    times.append(time.perf_counter())
                child = None
                if prov is not None:
                    child = prov.record_step(step, fnode)
                    frame[5] = True
                if is_final(new_proc):
                    if prov is not None:
                        prov.mark(
                            child,
                            "solution",
                            witness={"answers": [str(a) for a in new_answers]},
                        )
                    return (
                        new_answers,
                        step.database,
                        tuple(trace),
                        tuple(times) if times is not None else None,
                    )
                if len(stack) >= max_depth:
                    limit_hits += 1
                    trace.pop()
                    if times is not None:
                        times.pop()
                    if prov is not None:
                        prov.mark(child, "depth-limit")
                    continue
                new_key = (canonical_key(new_proc, self.sort_concurrent), step.database)
                if use_memo and new_key in failed:
                    trace.pop()
                    if times is not None:
                        times.pop()
                    if prov is not None:
                        prov.mark(
                            child,
                            "frontier-subsumed",
                            witness={"where": "failed-memo"},
                        )
                    continue
                stack.append(
                    [
                        new_key,
                        expand(new_proc, step.database, child),
                        new_answers,
                        limit_hits,
                        child,
                        False,
                    ]
                )
                if enabled:
                    obs.metrics.gauge_max("search.depth_peak", len(stack))
                advanced = True
                break
            if not advanced:
                # Frame exhausted: memoize as failed only if no descendant
                # was truncated by the depth limit (soundness of the memo).
                if use_memo and limit_hits == hits_before:
                    failed.add(key)
                if prov is not None:
                    prov.mark(
                        fnode, "backtracked" if frame[5] else "failed-unify"
                    )
                stack.pop()
                if trace:
                    trace.pop()
                    if times is not None and times:
                        times.pop()
        return None

    # -- isolation ----------------------------------------------------------------

    def _isol_runner(
        self,
        budget,
        obs: Instrumentation = NOOP,
        deadline: Optional[Deadline] = None,
        attr=None,
    ):
        def executions(body: Formula, db: Database, sub_budget):
            body_vars = _ordered_vars(body)
            for answers, final_db, trace in self._bfs(
                body,
                db,
                body_vars,
                sub_budget,
                want_trace=True,
                obs=obs,
                deadline=deadline,
                attr=attr,
                count_solutions=False,
            ):
                theta = {
                    v: t
                    for v, t in zip(body_vars, answers)
                    if not isinstance(t, Variable)
                }
                yield theta, final_db, trace

        def attempts(body: Formula, db: Database, sub_budget):
            # Production time of each isolated execution lands under an
            # "iso" phase frame; the frame is popped while the outer
            # search consumes the step (see meter_phase), so a suspended
            # sub-search never bleeds over its consumer's attribution.
            gen = executions(body, db, sub_budget)
            if attr is not None:
                gen = attr.meter_phase(gen, "iso")
            yield from gen

        def run_isolated(body: Formula, db: Database, cap: Optional[int] = None):
            # Complete iso executions are a pure function of (canonical
            # body, database) -- isolation admits no external
            # interleaving -- so uncapped attempts are memoized in the
            # answer table (capped attempts are budget-dependent and
            # bypass it; so does everything under fault injection).
            table = self._table if self.faults is None else None
            entry = varseq = None
            if table is not None and cap is None:
                shape, varseq = _ckey_pair(body, self.sort_concurrent)
                entry, delta_cost = table.iso_entry(shape, db)
                if entry is not None and obs.enabled:
                    obs.metrics.inc(
                        "table.hits" if entry.complete else "table.misses"
                    )
                    if delta_cost:
                        obs.metrics.inc("table.delta_bytes", delta_cost)
                if entry is not None and entry.complete:
                    if obs.enabled:
                        obs.tracer.event("table.hit", iso=str(body))
                    if attr is not None:
                        attr.charge(
                            "table.hit_credit", max(len(entry.order), 1)
                        )
                    for values, final_db, trace in list(entry.order):
                        theta = {
                            v: t
                            for v, t in zip(varseq, values)
                            if not isinstance(t, Variable)
                        }
                        yield theta, final_db, trace
                    return

            def produce(sub_budget):
                gen = attempts(body, db, sub_budget)
                if entry is None or entry.active:
                    # Untabled, or a recursive attempt on a body whose
                    # outer enumeration is already recording.
                    yield from gen
                    return
                entry.active = True
                entry.round_deps = set()
                table.generating.append(entry)
                try:
                    for theta, final_db, trace in gen:
                        entry.add(
                            tuple(theta.get(v, v) for v in varseq),
                            final_db,
                            trace,
                        )
                        yield theta, final_db, trace
                finally:
                    entry.active = False
                    table.generating.remove(entry)
                # Reached only on natural exhaustion (an abandoned or
                # interrupted enumeration is a warm prefix, never
                # complete); sound only if no in-progress call entry
                # fed this enumeration.
                if not (entry.round_deps - {id(entry)}):
                    entry.complete = True

            sub_budget = budget if cap is None else _CappedBudget(budget, cap)
            try:
                if not obs.enabled:
                    yield from produce(sub_budget)
                    return
                obs.enter_iso()
                try:
                    with obs.span("iso-subsearch", body=str(body)):
                        yield from produce(sub_budget)
                finally:
                    obs.exit_iso()
            except AttemptBudgetExceeded as exc:
                # A bounded attempt (iso[k]) ran out of its private cap:
                # by rollback-on-failure this is ordinary *failure* of
                # the isolated step, not an abort -- the attempt yields
                # no execution and leaves no trace.  An enclosing
                # attempt's cap keeps propagating to its own runner.
                if getattr(exc, "attempt", None) is not sub_budget:
                    raise
                if obs.enabled:
                    obs.metrics.inc("iso.attempt_budget_exhausted")
                return

        return run_isolated


def _simulate_legacy_args(legacy, seed, max_depth):
    """Map legacy positional ``simulate(goal, db, seed, max_depth)`` calls.

    ``seed`` and ``max_depth`` are keyword-only since the API unification;
    positional use keeps working for one deprecation cycle.
    """
    if not legacy:
        return seed, max_depth
    if len(legacy) > 2:
        raise TypeError(
            "simulate() takes 2 positional arguments (goal, db) but %d were given"
            % (2 + len(legacy))
        )
    warnings.warn(
        "passing seed/max_depth positionally to simulate() is deprecated; "
        "use keyword arguments (seed=..., max_depth=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    seed = legacy[0]
    if len(legacy) == 2:
        max_depth = legacy[1]
    return seed, max_depth


def _resolve_store(store, db):
    """The ``(store, initial db)`` resolution every engine entry point
    shares: explicit ``store=`` beats the ambient provider, and
    ``db=None`` pulls the store's current state (the durable-workflow
    spelling ``engine.solve(goal)``)."""
    store = store if store is not None else _ambient_store(db)
    if db is None:
        if store is None:
            raise ValueError(
                "no initial database: pass db= or attach a store "
                "(store=, or repro.store.using_store_provider)"
            )
        db = store.database()
    return store, db


def _ambient_store(db):
    """Consult the ambient store provider, if the store package is even
    loaded.  Resolved through ``sys.modules`` so the core never imports
    the store package (same one-way dependency discipline as faults):
    a provider can only exist once ``repro.store.context`` has been
    imported, so a missing module means no provider."""
    import sys

    ctx = sys.modules.get("repro.store.context")
    if ctx is None:
        return None
    return ctx.provide_store(db)


def _commit_execution(store, trace) -> None:
    """Commit a successful execution's trace to a store, mapping the
    trace's isolation structure onto savepoints: one top-level
    savepoint for the run, a nested one per ``iso`` subtrace.  On any
    failure the savepoint is rolled back (best-effort on a crashed
    store -- reopening it rolls back for us) and the error propagates,
    so a partial commit is never left visible."""
    sp = store.savepoint()
    try:
        _replay_into(store, trace)
    except BaseException:
        try:
            store.rollback(sp)
        except Exception:
            pass
        raise
    else:
        store.release(sp)


def _replay_into(store, actions) -> None:
    """The store twin of :func:`repro.core.transitions.replay_actions`:
    queries are skipped, updates applied, ``iso`` (and ``table``, whose
    subtrace is the recorded big-step execution) bracketed."""
    for action in actions:
        kind = action.kind
        if kind == "ins":
            store.insert(action.atom)
        elif kind == "del":
            store.delete(action.atom)
        elif kind in ("iso", "table"):
            sp = store.savepoint()
            try:
                _replay_into(store, action.subtrace)
            except BaseException:
                try:
                    store.rollback(sp)
                except Exception:
                    pass
                raise
            else:
                store.release(sp)


def _note_budget(obs: Instrumentation, budget: _Budget) -> None:
    """Record the final budget spend of a finished (or abandoned) search."""
    if obs.enabled:
        obs.metrics.gauge_max("budget.spent", budget.used)
        obs.metrics.set_gauge("budget.limit", budget.limit)


def _head_call(proc: Formula) -> Optional[Tuple[Atom, Tuple[Formula, ...]]]:
    """The tabled redex of a process, if it has one: a derived-predicate
    call in *head position* -- the whole process is ``p(t)`` or
    ``p(t) * rest``.  Returns ``(call atom, rest parts)`` or ``None``.
    Calls inside a concurrent composition are never tabled: sequential
    composition is the barrier that makes big-stepping the head sound.
    """
    if isinstance(proc, Call):
        return proc.atom, ()
    if isinstance(proc, Seq):
        first = proc.parts[0]
        if isinstance(first, Call):
            return first.atom, proc.parts[1:]
    return None


def _ordered_vars(goal: Formula) -> List[Variable]:
    """Free variables of the goal, first-occurrence order, deduplicated."""
    seen: Dict[Variable, None] = {}
    for v in formula_variables(goal):
        seen.setdefault(v, None)
    return list(seen)
