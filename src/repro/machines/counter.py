"""Minsky counter machines.

Two-counter machines are the minimal Turing-complete model; their TD
encoding (``repro.machines.encodings.counter_to_td``) is the leanest
demonstration of the paper's RE-completeness construction: unbounded
counter values live purely in recursion depth while the database stays
constant-size, which is the crux of Theorem 4.1's "fixed domain, fixed
schema" claim.

Program format: a list of instructions indexed by position.

* ``Inc(counter, goto)`` -- increment ``counter`` (0 or 1), jump.
* ``Dec(counter, goto_nonzero, goto_zero)`` -- if the counter is positive
  decrement and jump to ``goto_nonzero``; otherwise jump to ``goto_zero``.
* ``Halt(accept=True)`` -- stop (accepting or rejecting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

__all__ = ["Inc", "Dec", "Halt", "CounterMachine", "CounterProgramError"]


class CounterProgramError(ValueError):
    """Malformed counter program (bad counter index or jump target)."""


@dataclass(frozen=True)
class Inc:
    counter: int
    goto: int


@dataclass(frozen=True)
class Dec:
    counter: int
    goto_nonzero: int
    goto_zero: int


@dataclass(frozen=True)
class Halt:
    accept: bool = True


Instruction = Union[Inc, Dec, Halt]


@dataclass
class CounterMachine:
    """A two-counter (Minsky) machine."""

    program: Tuple[Instruction, ...]

    def __post_init__(self):
        n = len(self.program)
        for pc, instr in enumerate(self.program):
            if isinstance(instr, Inc):
                targets = [instr.goto]
                counters = [instr.counter]
            elif isinstance(instr, Dec):
                targets = [instr.goto_nonzero, instr.goto_zero]
                counters = [instr.counter]
            elif isinstance(instr, Halt):
                continue
            else:
                raise CounterProgramError("unknown instruction %r" % (instr,))
            for c in counters:
                if c not in (0, 1):
                    raise CounterProgramError(
                        "instruction %d uses counter %d (only 0/1 exist)"
                        % (pc, c)
                    )
            for t in targets:
                if not 0 <= t < n:
                    raise CounterProgramError(
                        "instruction %d jumps to %d (program length %d)"
                        % (pc, t, n)
                    )

    def run(
        self, c0: int = 0, c1: int = 0, max_steps: int = 1_000_000
    ) -> Tuple[bool, int, int, int]:
        """Execute; returns (accepted, final c0, final c1, steps taken).

        Raises :class:`TimeoutError` if the bound is exhausted (counter
        machine halting is undecidable; the bound is the only honest
        escape hatch).
        """
        counters = [c0, c1]
        pc = 0
        for steps in range(max_steps):
            instr = self.program[pc]
            if isinstance(instr, Halt):
                return instr.accept, counters[0], counters[1], steps
            if isinstance(instr, Inc):
                counters[instr.counter] += 1
                pc = instr.goto
            else:
                if counters[instr.counter] > 0:
                    counters[instr.counter] -= 1
                    pc = instr.goto_nonzero
                else:
                    pc = instr.goto_zero
        raise TimeoutError("counter machine ran for %d steps" % max_steps)

    def accepts(self, c0: int = 0, c1: int = 0, max_steps: int = 1_000_000) -> bool:
        accepted, _, _, _ = self.run(c0, c1, max_steps)
        return accepted


# ---------------------------------------------------------------------------
# A small library of counter programs (used by tests and benchmarks)
# ---------------------------------------------------------------------------


def transfer_program() -> CounterMachine:
    """Move the contents of counter 0 onto counter 1, then accept."""
    return CounterMachine((
        Dec(0, 1, 2),   # 0: if c0>0 dec, goto 1 else goto 2
        Inc(1, 0),      # 1: c1++, back to 0
        Halt(True),     # 2: done
    ))


def double_program() -> CounterMachine:
    """c1 := 2 * c0 (destroys c0), then accept."""
    return CounterMachine((
        Dec(0, 1, 3),   # 0: while c0 > 0
        Inc(1, 2),      # 1:   c1++
        Inc(1, 0),      # 2:   c1++ again
        Halt(True),     # 3: done
    ))


def parity_program() -> CounterMachine:
    """Accept iff c0 is even (repeatedly subtract 2)."""
    return CounterMachine((
        Dec(0, 1, 2),   # 0: first unit of a pair (or zero -> accept)
        Dec(0, 0, 3),   # 1: second unit (or odd -> reject)
        Halt(True),     # 2: even
        Halt(False),    # 3: odd
    ))


def collatz_program() -> CounterMachine:
    """A busy loop: compute c1 := c0 + c0 repeatedly a fixed number of
    times is not expressible without more counters; instead this program
    simply counts c0 down by 1 while counting c1 up by 3 -- a linear-time
    workload whose TD simulation length scales with the input, used by
    the RE benchmark to show runtime growing while the database stays
    constant-size."""
    return CounterMachine((
        Dec(0, 1, 4),   # 0: while c0 > 0
        Inc(1, 2),      # 1:   c1 += 3
        Inc(1, 3),      # 2:
        Inc(1, 0),      # 3:
        Halt(True),     # 4: done
    ))
