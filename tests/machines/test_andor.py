"""Tests for AND/OR graphs and their sequential-TD encoding."""

import pytest

from repro import SequentialEngine, Sublanguage, classify, parse_goal
from repro.machines import AndOrGraph, andor_to_td, solve_andor


def diamond_graph():
    return AndOrGraph(
        kind={"root": "and", "l": "or", "r": "or", "sink": "or"},
        successors={
            "root": ("l", "r"),
            "l": ("ax",),
            "r": ("ax", "sink"),
            "sink": (),
        },
        axioms=frozenset({"ax"}),
    )


class TestNativeSolver:
    def test_axioms_solvable(self):
        assert "ax" in solve_andor(diamond_graph())

    def test_and_needs_all_children(self):
        # invalid successor detected at construction
        with pytest.raises(ValueError):
            AndOrGraph(kind={"n": "and"}, successors={"n": ("nowhere",)},
                       axioms=frozenset())
        g2 = AndOrGraph(
            kind={"n": "and", "dead": "or"},
            successors={"n": ("ax", "dead"), "dead": ()},
            axioms=frozenset({"ax"}),
        )
        assert "n" not in solve_andor(g2)

    def test_or_needs_one_child(self):
        solvable = solve_andor(diamond_graph())
        assert {"root", "l", "r", "ax"} <= solvable
        assert "sink" not in solvable

    def test_cyclic_graph_least_fixpoint(self):
        # a <-> b cycle with no axiom support: unsolvable (least, not
        # greatest, fixpoint)
        g = AndOrGraph(
            kind={"a": "or", "b": "or"},
            successors={"a": ("b",), "b": ("a",)},
            axioms=frozenset(),
        )
        assert solve_andor(g) == set()

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            AndOrGraph(kind={"n": "xor"}, successors={}, axioms=frozenset())


class TestTDEncoding:
    def test_encoding_agrees_with_native(self):
        g = diamond_graph()
        program, db = andor_to_td(g)
        engine = SequentialEngine(program)
        solvable = solve_andor(g)
        for node in sorted(g.nodes()):
            goal = parse_goal("solve(%s)" % node)
            assert engine.succeeds(goal, db) == (node in solvable), node

    def test_encoding_is_query_only(self):
        program, _db = andor_to_td(diamond_graph())
        assert classify(program) in (
            Sublanguage.QUERY_ONLY,
            Sublanguage.FULLY_BOUNDED,
        )

    def test_random_layered_graphs_agree(self):
        from repro.complexity import grid_andor_graph

        for seed in range(3):
            g = grid_andor_graph(depth=3, fanout=2, seed=seed)
            program, db = andor_to_td(g)
            engine = SequentialEngine(program)
            solvable = solve_andor(g)
            root = "n0_0"
            assert engine.succeeds(parse_goal("solve(%s)" % root), db) == (
                root in solvable
            )
