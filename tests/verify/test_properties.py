"""Tests for temporal properties over configuration graphs."""

import pytest

from repro import Database, atom, parse_database, parse_program
from repro.verify import (
    can_reach,
    deadlocks,
    explore,
    inevitably,
    invariant_holds,
    may_diverge,
)


def graph_of(prog_text, goal, db_text=""):
    return explore(parse_program(prog_text), goal, parse_database(db_text))


class TestDeadlocks:
    def test_no_deadlock_in_complete_program(self):
        g = graph_of("go <- ins.a.", "go")
        assert deadlocks(g) == []

    def test_stuck_test_is_deadlock(self):
        g = graph_of("go <- never(x) * ins.a.", "go")
        stuck = deadlocks(g)
        assert len(stuck) == 1

    def test_choice_partial_deadlock(self):
        g = graph_of("go <- never(x).\ngo <- ins.b.", "go")
        assert len(deadlocks(g)) == 1
        assert len(g.final_ids) == 1


class TestInvariant:
    def test_holds_everywhere(self):
        g = graph_of("go <- ins.a * ins.b.", "go")
        ok, cex = invariant_holds(g, lambda db: len(db) <= 2)
        assert ok and cex is None

    def test_violation_with_counterexample(self):
        g = graph_of("go <- ins.a * ins.b * del.a.", "go")
        ok, cex = invariant_holds(g, lambda db: atom("b") not in db)
        assert not ok
        assert cex[-1] == "ins.b"  # the violating step ends the trace


class TestReachability:
    def test_can_reach(self):
        g = graph_of("go <- ins.a.\ngo <- ins.b.", "go")
        assert can_reach(g, lambda db: atom("a") in db)
        assert can_reach(g, lambda db: atom("b") in db)
        assert not can_reach(g, lambda db: atom("c") in db)

    def test_inevitably_true_on_linear(self):
        g = graph_of("go <- ins.a * ins.b.", "go")
        assert inevitably(g, lambda db: atom("a") in db)

    def test_inevitably_false_on_branch(self):
        g = graph_of("go <- ins.a.\ngo <- ins.b.", "go")
        assert not inevitably(g, lambda db: atom("a") in db)
        assert inevitably(g, lambda db: len(db) == 1)

    def test_inevitably_false_with_deadlock(self):
        g = graph_of("go <- ins.a.\ngo <- never(x) * ins.a.", "go")
        # one branch deadlocks before inserting a
        assert not inevitably(g, lambda db: atom("a") in db)


class TestDivergence:
    def test_acyclic_graph(self):
        g = graph_of("go <- ins.a.", "go")
        assert not may_diverge(g)

    def test_cycle_detected(self):
        g = graph_of("spin <- ins.s * del.s * spin.", "spin")
        assert may_diverge(g)

    def test_intentional_iteration_cycles(self):
        g = graph_of(
            "loop <- flag.\nloop <- not flag * work * loop.\nwork <- ins.t * del.t.",
            "loop",
        )
        assert may_diverge(g)  # the not-flag branch can repeat forever
