"""The bench trend timing gate: --check thresholds and exit codes."""

import json

import pytest

from repro.cli import main


def write_snapshot(trend_dir, n, rows):
    trend_dir.mkdir(parents=True, exist_ok=True)
    path = trend_dir / ("BENCH_%d.json" % n)
    path.write_text(json.dumps(rows) + "\n")
    return path


def rows(**best_ms):
    return [
        {"config": name, "description": name, "repeat": 1,
         "best_ms": ms, "mean_ms": ms}
        for name, ms in sorted(best_ms.items())
    ]


class TestTrendCheck:
    def test_within_threshold_passes(self, tmp_path, capsys):
        trend = tmp_path / "trajectory"
        write_snapshot(trend, 1, rows(a=10.0, b=5.0))
        write_snapshot(trend, 2, rows(a=12.0, b=5.5))
        assert main(["bench", "trend", "--check", "--out", str(trend)]) == 0
        assert "bench trend check: ok" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        trend = tmp_path / "trajectory"
        write_snapshot(trend, 1, rows(a=10.0))
        write_snapshot(trend, 2, rows(a=25.0))  # +150% > default +100%
        assert main(["bench", "trend", "--check", "--out", str(trend)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "regression(s)" in captured.err

    def test_tighter_threshold(self, tmp_path):
        trend = tmp_path / "trajectory"
        write_snapshot(trend, 1, rows(a=10.0))
        write_snapshot(trend, 2, rows(a=12.0))  # +20%
        assert main(
            ["bench", "trend", "--check", "--threshold", "0.1",
             "--out", str(trend)]
        ) == 1

    def test_per_config_override(self, tmp_path):
        trend = tmp_path / "trajectory"
        write_snapshot(trend, 1, rows(a=10.0, b=10.0))
        write_snapshot(trend, 2, rows(a=25.0, b=10.0))
        assert main(
            ["bench", "trend", "--check", "--threshold-for", "a=2.0",
             "--out", str(trend)]
        ) == 0

    def test_bad_override_rejected(self, tmp_path, capsys):
        trend = tmp_path / "trajectory"
        write_snapshot(trend, 1, rows(a=10.0))
        assert main(
            ["bench", "trend", "--check", "--threshold-for", "nonsense",
             "--out", str(trend)]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_single_snapshot_is_vacuously_ok(self, tmp_path, capsys):
        trend = tmp_path / "trajectory"
        write_snapshot(trend, 1, rows(a=10.0))
        assert main(["bench", "trend", "--check", "--out", str(trend)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_without_check_regression_only_reports(self, tmp_path, capsys):
        trend = tmp_path / "trajectory"
        write_snapshot(trend, 1, rows(a=10.0))
        write_snapshot(trend, 2, rows(a=50.0))
        assert main(["bench", "trend", "--out", str(trend)]) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_missing_dir_errors(self, tmp_path, capsys):
        assert main(
            ["bench", "trend", "--check", "--out", str(tmp_path / "none")]
        ) == 2
        assert "no bench trajectory" in capsys.readouterr().err
