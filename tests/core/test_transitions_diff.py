"""Differential test: optimized vs. naive redex enumeration.

``enabled_steps`` ships two implementations: the indexed/pruned default
(freeness-summary skipping, per-signature rule dispatch) and the naive
scan it replaced, kept as an oracle behind ``optimized=False``.  The
optimizations are pure work-avoidance -- skipping a branch is only legal
when *no* database could ever let it step -- so on every reachable
configuration both must produce the same multiset of transitions.

Steps are compared modulo variable renaming: the two paths consume the
program's fresh-variable counter differently, so raw formulas differ in
``#k`` suffixes while the transitions they denote are identical.  The
fingerprint is ``(action text, canonical key of the applied residual,
successor database)`` -- exactly the parts renaming cannot touch.

The workloads are the five profile-suite configs (the programs the
counter gate pins), explored breadth-first to a state cap.

A second differential covers the partial-order reducer: unlike the
naive-enumeration oracle, reduction deliberately changes which
configurations are *visited*, so the equivalence is at the solution
level -- identical answer sets and identical final databases with the
reducer on and off, over the profile-suite configs and the six chaos
workloads.
"""

import re
from collections import Counter

import pytest

from repro import Database, parse_database, parse_goal, parse_program
from repro.core.formulas import apply_subst
from repro.core.interpreter import Interpreter, _Budget
from repro.core.transitions import canonical_key, enabled_steps
from repro.obs.analyze import (
    _BANK_TD,
    _FANOUT_TD,
    _GENOME_FACTS,
    _GENOME_TD,
    _PATH_TD,
)


#: Fresh-variable suffixes (``B2#3``) in action text; atoms are already
#: displayed suffix-free, but builtin details inside iso subtraces are not.
_FRESH_SUFFIX = re.compile(r"#\d+")


def _fingerprint(step):
    residual = apply_subst(step.residual, step.subst)
    action = _FRESH_SUFFIX.sub("", str(step.action))
    return (action, canonical_key(residual), step.database)


def assert_enumeration_equivalent(program, goal, db, max_states=400):
    """BFS over reachable configurations; at each one, the optimized and
    naive enumerations must agree as multisets modulo renaming."""
    goal = program.resolve_goal(goal)
    interp = Interpreter(program)
    runner = interp._isol_runner(_Budget(interp.max_configs))
    seen = set()
    frontier = [(goal, db)]
    checked = 0
    while frontier and checked < max_states:
        proc, state = frontier.pop(0)
        key = (canonical_key(proc), state)
        if key in seen:
            continue
        seen.add(key)
        checked += 1
        optimized = list(enabled_steps(program, proc, state, runner))
        naive = list(
            enabled_steps(program, proc, state, runner, optimized=False)
        )
        opt_fp = Counter(_fingerprint(s) for s in optimized)
        naive_fp = Counter(_fingerprint(s) for s in naive)
        assert opt_fp == naive_fp, (
            "enumeration mismatch at process %s / db %s:\n"
            "optimized-only: %s\nnaive-only: %s"
            % (proc, state, opt_fp - naive_fp, naive_fp - opt_fp)
        )
        for step in optimized:
            frontier.append(
                (apply_subst(step.residual, step.subst), step.database)
            )
    assert checked > 0


class TestProfileSuiteEquivalence:
    def test_bank_transfer(self):
        assert_enumeration_equivalent(
            parse_program(_BANK_TD),
            parse_goal("transfer(a, b, 30)"),
            parse_database("balance(a, 100). balance(b, 10)."),
        )

    def test_path_tabled(self):
        assert_enumeration_equivalent(
            parse_program(_PATH_TD),
            parse_goal("path(a, X)"),
            parse_database("e(a, b). e(b, c). e(c, d). e(d, e). e(e, f)."),
        )

    def test_genome_simulate(self):
        assert_enumeration_equivalent(
            parse_program(_GENOME_TD),
            parse_goal("simulate"),
            parse_database(_GENOME_FACTS),
        )

    def test_genome_statespace(self):
        assert_enumeration_equivalent(
            parse_program(_GENOME_TD),
            parse_goal("simulate"),
            parse_database(
                "workitem(dna01). available(raj). "
                "qualified(raj, tech). qualified(raj, reader)."
            ),
        )

    def test_lab_workflow(self):
        from repro.core.formulas import Call
        from repro.core.terms import atom
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator()
        assert_enumeration_equivalent(
            sim.program,
            Call(atom("simulate")),
            sim.initial_database(sample_batch(2)),
            max_states=200,
        )


class TestTargetedShapes:
    """Shapes the freeness summary must *not* prune."""

    def test_blocked_branch_unblocks_after_binding(self):
        # X is free in ins.p(X) until the test binds it: the summary is
        # db-independent, so it must keep the branch.
        program = parse_program("go <- q(X) * ins.p(X).")
        assert_enumeration_equivalent(
            program, parse_goal("go"), parse_database("q(a). q(b).")
        )

    def test_never_ground_update_skipped_identically(self):
        # A concurrent branch that can never step: both enumerations
        # must agree it contributes nothing (and the others still run).
        program = parse_program("go <- ins.p(X) | ins.a | ins.b.")
        assert_enumeration_equivalent(program, parse_goal("go"), Database())

    def test_builtin_over_unbound_variable(self):
        program = parse_program("go <- Y is X + 1 | ins.a.")
        assert_enumeration_equivalent(program, parse_goal("go"), Database())

    def test_iso_of_truth_still_steps(self):
        program = parse_program("go <- iso(true) * ins.a.")
        assert_enumeration_equivalent(program, parse_goal("go"), Database())

    def test_negation_and_zero_arity(self):
        program = parse_program(
            "go <- not stop * ins.mark * stop2.\nstop2 <- mark."
        )
        assert_enumeration_equivalent(program, parse_goal("go"), Database())


# -- partial-order reduction: solution-level differential ---------------------


def _solution_set(interp, goal, db):
    return {
        (
            tuple(sorted((str(v), str(t)) for v, t in sol.bindings.items())),
            sol.database,
        )
        for sol in interp.solve(goal, db)
    }


def assert_por_invisible(program, goal, db, max_configs=400_000):
    """The reducer must change only the work, never the result: same
    answer sets, same set of final databases, with ``por`` on and off."""
    goal = program.resolve_goal(goal)
    reduced = _solution_set(
        Interpreter(program, max_configs=max_configs), goal, db
    )
    naive = _solution_set(
        Interpreter(program, max_configs=max_configs, por=False), goal, db
    )
    assert reduced == naive
    assert reduced  # every workload here has at least one solution


#: One-sample genome database: the reducer-off enumeration of the full
#: two-sample profile db takes tens of seconds, and one sample already
#: exercises every rule (it is exactly the genome_statespace config db).
_GENOME_ONE = (
    "workitem(dna01). available(ana). available(raj). "
    "qualified(ana, tech). qualified(raj, tech). qualified(raj, reader)."
)


class TestPartialOrderReductionInvisible:
    """POR on/off: identical answer sets and final databases."""

    def test_bank_transfer(self):
        assert_por_invisible(
            parse_program(_BANK_TD),
            parse_goal("transfer(a, b, 30)"),
            parse_database("balance(a, 100). balance(b, 10)."),
        )

    def test_path_tabled(self):
        assert_por_invisible(
            parse_program(_PATH_TD),
            parse_goal("path(a, X)"),
            parse_database("e(a, b). e(b, c). e(c, d). e(d, e). e(e, f)."),
        )

    def test_genome_simulate(self):
        assert_por_invisible(
            parse_program(_GENOME_TD), parse_goal("simulate"),
            parse_database(_GENOME_ONE),
        )

    def test_conc_fanout(self):
        assert_por_invisible(
            parse_program(_FANOUT_TD), parse_goal("spawn"),
            parse_database("item(j1). item(j2). item(j3). item(j4). item(j5)."),
        )

    def test_lab_workflow(self):
        from repro.core.formulas import Call
        from repro.core.terms import atom
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator()
        assert_por_invisible(
            sim.program,
            Call(atom("simulate")),
            sim.initial_database(sample_batch(1)),
        )


class TestPorInvisibleOnChaosWorkloads:
    """The six chaos workloads' programs (docs/ROBUSTNESS.md), unfaulted:
    the reducer must be invisible on the very shapes the chaos gate
    perturbs.  (Under fault injection the interpreter bypasses the
    reducer entirely -- see TestPorDisabledUnderFaults.)"""

    def test_bank_transfer(self):
        from repro.faults.chaos import _BANK_DB, _BANK_TD as BANK

        assert_por_invisible(
            parse_program(BANK),
            parse_goal("transfer(a, b, 30)"),
            parse_database(_BANK_DB),
        )

    def test_path_query(self):
        from repro.faults.chaos import _PATH_DB, _PATH_TD as PATH

        assert_por_invisible(
            parse_program(PATH),
            parse_goal("path(a, Y) * ins.reached(Y)"),
            parse_database(_PATH_DB),
        )

    def test_genome_simulate(self):
        from repro.faults.chaos import _GENOME_TD as GENOME

        assert_por_invisible(
            parse_program(GENOME), parse_goal("simulate"),
            parse_database(_GENOME_ONE),
        )

    def test_genome_iso(self):
        from repro.faults.chaos import _GENOME_ISO_TD

        assert_por_invisible(
            parse_program(_GENOME_ISO_TD), parse_goal("simulate"),
            parse_database(_GENOME_ONE),
        )

    def test_lab_workflow(self):
        from repro.core.formulas import Call
        from repro.core.terms import atom
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator(iterate=False)
        assert_por_invisible(
            sim.program,
            Call(atom("simulate")),
            sim.initial_database(sample_batch(1)),
        )

    def test_lab_iterate(self):
        from repro.core.formulas import Call
        from repro.core.terms import atom
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator(iterate=True)
        assert_por_invisible(
            sim.program,
            Call(atom("simulate")),
            sim.initial_database(sample_batch(1)),
        )


class TestPorDisabledUnderFaults:
    def test_reducer_bypassed_when_faults_attached(self, monkeypatch):
        # Fault plans target individual interleavings, so the chaos
        # harness must see the unreduced enumeration: tdlog chaos output
        # stays byte-identical whatever the reducer does.  If the
        # interpreter consulted the reducer here, this run would raise.
        from repro.core import por as por_module
        from repro.faults import FaultInjector, generate_plan

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("reducer consulted under fault injection")

        monkeypatch.setattr(por_module.PartialOrderReducer, "steps", boom)
        program = parse_program(_BANK_TD)
        plan = generate_plan(seed=3, predicates=("balance",), agents=())
        interp = Interpreter(program, faults=FaultInjector(plan))
        interp.simulate(
            parse_goal("transfer(a, b, 30)"),
            parse_database("balance(a, 100). balance(b, 10)."),
        )
