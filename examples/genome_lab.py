#!/usr/bin/env python3
"""A high-throughput genome laboratory workflow (Examples 3.1-3.3).

Builds the gel-mapping production line with the workflow layer, runs a
batch of DNA samples through it with a realistic agent pool, and then
monitors the insert-only experiment history -- the full Section 3 story:

* Example 3.1 -- the task graph with parallel stages;
* Example 3.2 -- one concurrent workflow instance per work item, plus
  the environment process delivering samples while the lab is running;
* Example 3.3 -- agents as shared resources, acquired and released by
  each task, with the history recording who did what.

Run:  python examples/genome_lab.py
"""

from repro.lims import build_lab_simulator, lab_agents, sample_batch
from repro.workflow.monitor import status_report


def main() -> None:
    agents = lab_agents(n_clerks=1, n_techs=3, n_rigs=1, n_readers=1)
    print("--- agent pool ---")
    for agent in agents:
        print("   %-8s qualified: %s" % (agent.name, ", ".join(agent.qualifications)))

    # 1. Batch mode: all samples queued up front.
    sim = build_lab_simulator(agents=agents)
    batch = sample_batch(6)
    print("\n--- running %d samples through the pipeline ---" % len(batch))
    result = sim.run(batch, seed=42)
    print("completed:", ", ".join(result.completed("analyze")))

    print("\n--- laboratory status (monitoring the history) ---")
    print(status_report(result.history))

    # 2. A few interesting trace events.
    print("\n--- first 12 database events of the run ---")
    for event in result.events[:12]:
        print("   ", event)

    # 3. Environment mode: samples arrive while the lab is running
    # (Example 3.2's environment-as-a-process).
    sim2 = build_lab_simulator(agents=agents)
    arriving = sample_batch(4, prefix="late")
    print("\n--- %d samples delivered by the environment process ---" % len(arriving))
    result2 = sim2.run([], pending=arriving, environment=True)
    print("completed:", ", ".join(result2.completed("analyze")))

    # 4. The iterated protocol: repeat the gel stage until conclusive
    # ("an experimental protocol may be repeated until a conclusive
    # result is achieved").
    sim3 = build_lab_simulator(iterate=True, agents=agents)
    print("\n--- iterated protocol on 3 samples ---")
    result3 = sim3.run(sample_batch(3, prefix="iter"))
    print("completed:", ", ".join(result3.completed("analyze")))
    conclusive = sorted(str(f.args[0]) for f in result3.history.facts("conclusive"))
    print("conclusive results:", ", ".join(conclusive))


if __name__ == "__main__":
    main()
