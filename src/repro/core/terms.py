"""First-order terms and atoms for Transaction Datalog and classical Datalog.

Transaction Datalog (TD) is a function-free logic language: a *term* is
either a constant or a variable, and an *atom* is a predicate symbol
applied to a tuple of terms.  Everything here is immutable and hashable so
that ground atoms can live inside frozenset-based database states and so
that whole process configurations can be memoized.

The module deliberately keeps the data model tiny and explicit:

* :class:`Constant` -- an uninterpreted constant (wraps a Python value).
* :class:`Variable` -- a logical variable, identified by name.
* :class:`Atom` -- ``pred(t1, ..., tn)``.

Constants compare by value, variables by name.  ``Atom`` exposes the
predicate *signature* ``name/arity`` used throughout schema handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple, Union

__all__ = [
    "Constant",
    "Variable",
    "Term",
    "Atom",
    "Signature",
    "atom",
    "const",
    "var",
    "is_ground",
    "term_from_python",
]


# Python payload types allowed inside a Constant.  Strings and integers
# cover everything in the paper's examples (work-item ids, agent names,
# task names, account balances).
ConstValue = Union[str, int]


@dataclass(frozen=True)
class Constant:
    """An uninterpreted constant symbol.

    TD treats constants as uninterpreted (genericity); arithmetic shows up
    only through built-in comparison atoms handled by the engines.

    Ordering is total but purely syntactic (integers sort apart from
    strings) -- it exists so databases iterate deterministically, not to
    compare values; use builtins for value comparisons.
    """

    value: ConstValue

    def _sort_key(self):
        return ("c", type(self.value).__name__, str(self.value))

    def __lt__(self, other):
        if isinstance(other, (Constant, Variable)):
            return self._sort_key() < other._sort_key()
        return NotImplemented

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Variable:
    """A logical variable.  Names conventionally start with an uppercase
    letter or underscore (the parser enforces this for concrete syntax).
    """

    name: str

    def _sort_key(self):
        return ("v", "", self.name)

    def __lt__(self, other):
        if isinstance(other, (Constant, Variable)):
            return self._sort_key() < other._sort_key()
        return NotImplemented

    def __str__(self) -> str:
        return self.name


Term = Union[Constant, Variable]

#: A predicate signature: (name, arity).
Signature = Tuple[str, int]


@dataclass(frozen=True)
class Atom:
    """A (possibly non-ground) atom ``pred(args)``.

    Atoms are used in three roles in TD, distinguished by context rather
    than by type: facts in a database state (ground), tuple tests /
    elementary updates on base predicates, and calls to derived
    predicates defined by rules.
    """

    pred: str
    args: Tuple[Term, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Signature:
        return (self.pred, len(self.args))

    def is_ground(self) -> bool:
        return all(isinstance(t, Constant) for t in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of this atom, left to right, with repeats."""
        for t in self.args:
            if isinstance(t, Variable):
                yield t

    def _sort_key(self):
        return (self.pred, tuple(t._sort_key() for t in self.args))

    def __lt__(self, other):
        if isinstance(other, Atom):
            return self._sort_key() < other._sort_key()
        return NotImplemented

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        return "%s(%s)" % (self.pred, ", ".join(str(t) for t in self.args))


def term_from_python(value: Union[Term, ConstValue]) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Existing terms pass through; strings and ints become constants.  This
    is the convenience layer used by the fluent API and the test suite.
    """
    if isinstance(value, (Constant, Variable)):
        return value
    if isinstance(value, (str, int)):
        return Constant(value)
    raise TypeError("cannot convert %r to a term" % (value,))


def atom(pred: str, *args: Union[Term, ConstValue]) -> Atom:
    """Convenience constructor: ``atom('p', 'a', Variable('X'))``."""
    return Atom(pred, tuple(term_from_python(a) for a in args))


def const(value: ConstValue) -> Constant:
    """Convenience constructor for a constant."""
    return Constant(value)


def var(name: str) -> Variable:
    """Convenience constructor for a variable."""
    return Variable(name)


def is_ground(atoms: Iterable[Atom]) -> bool:
    """True if every atom in *atoms* is ground."""
    return all(a.is_ground() for a in atoms)
