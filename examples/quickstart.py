#!/usr/bin/env python3
"""Quickstart: Transaction Datalog in five minutes.

Covers the core API end to end: parse a program, classify it, run
queries and updates, watch concurrent processes communicate through the
database, and execute an isolated (atomic) transaction.

Run:  python examples/quickstart.py
"""

from repro import (
    Interpreter,
    analyze,
    parse_database,
    parse_goal,
    parse_program,
    select_engine,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A first program: queries, updates, sequential composition.
    #
    # TD rules look like Datalog, but bodies are *processes*: `*` is
    # sequential composition, ins./del. are elementary updates, and a
    # plain atom is a tuple test against the current database state.
    # ------------------------------------------------------------------
    program = parse_program(
        """
        % Move one item from the inbox to the archive.
        archive_one <- inbox(X) * del.inbox(X) * ins.archived(X).

        % Drain the whole inbox: sequential tail recursion.
        drain <- inbox(X) * del.inbox(X) * ins.archived(X) * drain.
        drain <- not inbox(_).
        """
    )
    db = parse_database("inbox(letter1). inbox(letter2). inbox(letter3).")

    # The classifier places every program in the paper's complexity map.
    print("--- analysis ---")
    print(analyze(program).report())

    # select_engine picks the weakest adequate evaluator (here, a
    # decision procedure: the program is fully bounded).
    engine = select_engine(program)
    print("\n--- drain the inbox ---")
    for solution in engine.solve("drain", db):
        print("final state:", solution.database)

    # ------------------------------------------------------------------
    # 2. Nondeterminism: every way a transaction can commit.
    # ------------------------------------------------------------------
    print("\n--- all ways to archive exactly one item ---")
    for solution in engine.solve("archive_one", db):
        print("archived:", sorted(map(str, solution.database.facts("archived"))))

    # ------------------------------------------------------------------
    # 3. Concurrency: processes communicating through the database.
    #
    # The producer inserts a reading; the consumer's tuple test blocks
    # until it appears.  `|` is concurrent composition (interleaving).
    # ------------------------------------------------------------------
    coop = parse_program(
        """
        producer <- ins.reading(42) * ins.producer_done.
        consumer <- reading(V) * ins.consumed(V).
        """
    )
    interp = Interpreter(coop)
    execution = interp.simulate(parse_goal("consumer | producer"), parse_database(""))
    print("\n--- concurrent producer/consumer trace ---")
    for event in execution.events:
        print(" ", event)

    # ------------------------------------------------------------------
    # 4. Isolation: iso(...) runs a subprocess atomically.
    # ------------------------------------------------------------------
    bank = parse_program(
        """
        transfer(F, T, Amt) <- iso(
            balance(F, B1) * B1 >= Amt *
            del.balance(F, B1) * B1n is B1 - Amt * ins.balance(F, B1n) *
            balance(T, B2) *
            del.balance(T, B2) * B2n is B2 + Amt * ins.balance(T, B2n)
        ).
        """
    )
    accounts = parse_database("balance(checking, 100). balance(savings, 50).")
    bank_engine = select_engine(bank)
    print("\n--- atomic transfer ---")
    for solution in bank_engine.solve("transfer(checking, savings, 70)", accounts):
        print("after transfer:", solution.database)
    print(
        "overdraft attempt commits:",
        bank_engine.succeeds("transfer(savings, checking, 500)", accounts),
    )


if __name__ == "__main__":
    main()
