"""Tests for the small-step transition relation and its pruning helpers."""

import pytest

from repro import Database, parse_database, parse_goal, parse_program
from repro.core.formulas import Conc, Truth
from repro.core.transitions import (
    canonical_key,
    dead_config,
    enabled_steps,
    frontier_blocked,
    is_final,
    update_footprint,
)


def steps_of(prog_text, goal_text, db_text=""):
    prog = parse_program(prog_text)
    goal = prog.resolve_goal(parse_goal(goal_text))
    db = parse_database(db_text)

    def no_iso(body, db):  # pragma: no cover - not used in these tests
        return iter(())

    return prog, list(enabled_steps(prog, goal, db, no_iso))


class TestEnabledSteps:
    def test_truth_has_no_steps(self):
        prog, steps = steps_of("p <- q.", "true")
        assert steps == []
        assert is_final(Truth())

    def test_test_step_per_match(self):
        _, steps = steps_of("x <- y.", "p(X)", "p(a). p(b).")
        assert len(steps) == 2
        assert {str(s.action) for s in steps} == {"p(a)", "p(b)"}

    def test_failed_test_no_steps(self):
        _, steps = steps_of("x <- y.", "p(zz)", "p(a).")
        assert steps == []

    def test_seq_steps_only_first(self):
        _, steps = steps_of("x <- y.", "ins.a * ins.b")
        assert len(steps) == 1
        assert str(steps[0].action) == "ins.a"

    def test_conc_steps_all_branches(self):
        _, steps = steps_of("x <- y.", "ins.a | ins.b")
        assert {str(s.action) for s in steps} == {"ins.a", "ins.b"}

    def test_call_steps_one_per_rule(self):
        _, steps = steps_of("p <- ins.a.\np <- ins.b.", "p")
        assert len(steps) == 2
        assert all(s.action.kind == "call" for s in steps)

    def test_unbound_update_is_blocked(self):
        _, steps = steps_of("x <- y.", "ins.p(X)")
        assert steps == []

    def test_unbound_builtin_is_blocked(self):
        _, steps = steps_of("x <- y.", "X > 3")
        assert steps == []

    def test_neg_step_when_absent(self):
        _, steps = steps_of("x <- y.", "not p(a)", "p(b).")
        assert len(steps) == 1
        assert steps[0].action.kind == "neg"


class TestCanonicalKey:
    def test_invariant_under_renaming(self):
        prog = parse_program("x <- y.")
        g1 = prog.resolve_goal(parse_goal("p(A) * q(A, B)"))
        g2 = prog.resolve_goal(parse_goal("p(Z) * q(Z, W)"))
        assert canonical_key(g1) == canonical_key(g2)

    def test_distinguishes_sharing(self):
        prog = parse_program("x <- y.")
        shared = prog.resolve_goal(parse_goal("p(A) * q(A)"))
        distinct = prog.resolve_goal(parse_goal("p(A) * q(B)"))
        assert canonical_key(shared) != canonical_key(distinct)

    def test_conc_sorting_merges_branch_orders(self):
        prog = parse_program("x <- y.")
        g1 = prog.resolve_goal(parse_goal("ins.a | ins.b"))
        g2 = prog.resolve_goal(parse_goal("ins.b | ins.a"))
        assert canonical_key(g1, sort_conc=True) == canonical_key(g2, sort_conc=True)
        assert canonical_key(g1, sort_conc=False) != canonical_key(
            g2, sort_conc=False
        )

    def test_seq_order_matters(self):
        prog = parse_program("x <- y.")
        g1 = prog.resolve_goal(parse_goal("ins.a * ins.b"))
        g2 = prog.resolve_goal(parse_goal("ins.b * ins.a"))
        assert canonical_key(g1) != canonical_key(g2)

    def test_keys_are_hashable(self):
        prog = parse_program("x <- y.")
        g = prog.resolve_goal(parse_goal("iso(p(X) * 1 < 2) | del.q(a)"))
        assert hash(canonical_key(g)) is not None

    def test_conc_tie_between_shared_variable_branches(self):
        # Equal-shape branches whose skeletons tie: only the variable
        # pattern distinguishes orderings, and the key must not depend
        # on which order the branches were written in.
        prog = parse_program("x <- y.")
        g1 = prog.resolve_goal(parse_goal("p(X, Y) | p(Z, X)"))
        g2 = prog.resolve_goal(parse_goal("p(Z, X) | p(X, Y)"))
        assert canonical_key(g1) == canonical_key(g2)


class TestCanonicalKeyCaching:
    """Keys are cached per immutable node and shared across contexts."""

    def _goal(self, text):
        prog = parse_program("x <- y.")
        return prog.resolve_goal(parse_goal(text))

    def test_repeated_calls_return_equal_keys(self):
        for text in (
            "p(A) * q(A, B)",
            "ins.a | p(X) | iso(del.b * q(X))",
            "iso(iso(p(X) * q(X)))",
        ):
            g = self._goal(text)
            assert canonical_key(g) == canonical_key(g)
            assert canonical_key(g, sort_conc=False) == canonical_key(
                g, sort_conc=False
            )

    def test_nested_nodes_key_identically_in_and_out_of_context(self):
        # The same subformula keyed standalone and keyed as a child of a
        # larger nest must induce the same renaming classes: a seq/conc/
        # iso nest over renamed parts keys identically to the original.
        g1 = self._goal("iso(p(A) * (q(A) | r(B))) * s(B)")
        g2 = self._goal("iso(p(X) * (q(X) | r(Y))) * s(Y)")
        assert canonical_key(g1) == canonical_key(g2)
        assert canonical_key(g1, sort_conc=False) == canonical_key(
            g2, sort_conc=False
        )

    def test_cache_attribute_populated_once(self):
        g = self._goal("p(A) * q(A, B)")
        assert not hasattr(g, "_ckey_cache") or True  # may be pre-warmed
        first = canonical_key(g)
        cache = g._ckey_cache
        assert canonical_key(g) == first
        assert g._ckey_cache is cache

    def test_structure_sharing_reuses_child_keys(self):
        # apply_subst with a domain disjoint from a subformula returns
        # the *same* node, so its cached key pair is reused verbatim.
        from repro.core.formulas import apply_subst
        from repro.core.terms import Variable

        g = self._goal("p(A) * (q(B) | r(B))")
        canonical_key(g)  # warm every node's cache
        conc_part = g.parts[1]
        stepped = apply_subst(g, {Variable("A"): parse_goal("p(c)").atom.args[0]})
        assert stepped.parts[1] is conc_part


class TestUpdateFootprint:
    def test_collects_from_rules_and_goal(self):
        prog = parse_program("p <- ins.a * del.b.")
        ins, dels = update_footprint(prog, prog.resolve_goal(parse_goal("ins.c")))
        assert ins == {"a", "c"}
        assert dels == {"b"}


class TestDeadConfig:
    def _ctx(self, prog_text):
        prog = parse_program(prog_text)
        ins, dels = update_footprint(prog)
        return prog, ins, dels

    def test_test_on_never_inserted_pred_is_dead(self):
        prog, ins, dels = self._ctx("p <- static(a) * ins.out(a).")
        goal = prog.resolve_goal(parse_goal("static(zz) * ins.out(a)"))
        assert dead_config(goal, Database(), ins, dels)

    def test_test_on_insertable_pred_not_dead(self):
        prog, ins, dels = self._ctx("p <- ins.out(a).")
        goal = prog.resolve_goal(parse_goal("out(a)"))
        assert not dead_config(goal, Database(), ins, dels)

    def test_neg_on_never_deleted_pred_is_dead(self):
        prog, ins, dels = self._ctx("p <- ins.flag.")
        goal = prog.resolve_goal(parse_goal("not flag"))
        assert dead_config(goal, parse_database("flag."), ins, dels)

    def test_failing_builtin_is_dead(self):
        prog, ins, dels = self._ctx("p <- ins.x.")
        goal = prog.resolve_goal(parse_goal("2 > 3"))
        assert dead_config(goal, Database(), ins, dels)

    def test_one_dead_branch_kills_conc(self):
        prog, ins, dels = self._ctx("p <- static(a).")
        goal = prog.resolve_goal(parse_goal("static(zz) | ins.whatever"))
        assert dead_config(goal, Database(), ins, dels)

    def test_call_frontier_never_dead(self):
        prog, ins, dels = self._ctx("p <- static(a).")
        goal = prog.resolve_goal(parse_goal("p"))
        assert not dead_config(goal, Database(), ins, dels)


class TestFrontierBlocked:
    def test_failing_test_blocks(self):
        prog = parse_program("p <- ins.flag.")
        goal = prog.resolve_goal(parse_goal("flag * ins.done"))
        assert frontier_blocked(goal, Database())
        assert not frontier_blocked(goal, parse_database("flag."))

    def test_conc_blocked_only_if_all_blocked(self):
        prog = parse_program("p <- ins.flag.")
        goal = prog.resolve_goal(parse_goal("flag | ins.other"))
        assert not frontier_blocked(goal, Database())
