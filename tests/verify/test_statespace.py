"""Tests for configuration-graph construction."""

import pytest

from repro import Database, SearchBudgetExceeded, parse_database, parse_program
from repro.verify import explore


class TestExplore:
    def test_linear_program_graph(self):
        prog = parse_program("go <- ins.a * ins.b.")
        g = explore(prog, "go", Database())
        # call, ins.a, ins.b -> 4 states in a line
        assert len(g) == 4
        assert len(g.final_ids) == 1
        assert g.path_to(g.final_ids[0]) == ["call go", "ins.a", "ins.b"]

    def test_choice_creates_branches(self):
        prog = parse_program("pick <- ins.a.\npick <- ins.b.")
        g = explore(prog, "pick", Database())
        assert len(g.final_ids) == 2

    def test_confluent_paths_share_states(self):
        # two interleavings reach the same configuration: one node
        prog = parse_program("x <- y.")
        g = explore(prog, "ins.a | ins.b", Database())
        # initial, after-a, after-b, after-both = 4 states
        assert len(g) == 4

    def test_stuck_states_present(self):
        # unlike the engines, the explorer keeps failed branches
        prog = parse_program("t <- missing(x) * ins.done.")
        g = explore(prog, "t", Database())
        assert len(g.final_ids) == 0
        assert any(not n.final and not g.edges[n.node_id] for n in g.nodes)

    def test_budget_on_unbounded_program(self):
        prog = parse_program("grow <- grow * ins.x.")
        with pytest.raises(SearchBudgetExceeded):
            explore(prog, "grow", Database(), max_states=100)

    def test_iso_is_one_edge(self):
        prog = parse_program("t <- iso(ins.a * ins.b).")
        g = explore(prog, "t", Database())
        # call, then one atomic iso edge
        assert len(g) == 3

    def test_string_or_formula_goal(self):
        from repro import parse_goal

        prog = parse_program("t <- ins.a.")
        g1 = explore(prog, "t", Database())
        g2 = explore(prog, parse_goal("t"), Database())
        assert len(g1) == len(g2)

    def test_cycle_folds_back(self):
        prog = parse_program("spin <- ins.s * del.s * spin.")
        g = explore(prog, "spin", parse_database(""))
        # finite graph despite infinite executions
        assert len(g) <= 8
        assert not g.final_ids
