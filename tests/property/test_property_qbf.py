"""Property-based cross-validation of the QBF encoding.

Random small prenex-CNF formulas: the sequential-TD encoding must agree
with the native recursive evaluator on truth -- the strongest automated
evidence that the alternation mechanism (rule choice = ∃, sequential
both-branches = ∀) is implemented faithfully.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Interpreter
from repro.machines import QBF, evaluate_qbf, qbf_to_td


@st.composite
def qbfs(draw):
    n_vars = draw(st.integers(min_value=1, max_value=3))
    variables = ["v%d" % i for i in range(n_vars)]
    prefix = tuple(
        (draw(st.sampled_from(["exists", "forall"])), v) for v in variables
    )
    n_clauses = draw(st.integers(min_value=1, max_value=4))
    matrix = []
    for _ in range(n_clauses):
        width = draw(st.integers(min_value=1, max_value=2))
        clause = tuple(
            (draw(st.sampled_from(variables)), draw(st.booleans()))
            for _ in range(width)
        )
        matrix.append(clause)
    return QBF(prefix, tuple(matrix))


class TestQBFEncodingProperties:
    @settings(max_examples=40, deadline=None)
    @given(qbfs())
    def test_td_agrees_with_native(self, qbf):
        program, goal, db = qbf_to_td(qbf)
        interp = Interpreter(program, max_configs=2_000_000)
        assert interp.succeeds(goal, db) == evaluate_qbf(qbf)

    @settings(max_examples=20, deadline=None)
    @given(qbfs())
    def test_negating_prefix_flips_sometimes_but_stays_consistent(self, qbf):
        # Dualizing every quantifier and literal polarity must negate
        # CNF-evaluated truth only in general for full De Morgan forms;
        # here we simply check the encoding is *deterministic*: repeated
        # evaluation gives the same verdict (no hidden state).
        program, goal, db = qbf_to_td(qbf)
        interp = Interpreter(program, max_configs=2_000_000)
        first = interp.succeeds(goal, db)
        second = interp.succeeds(goal, db)
        assert first == second == evaluate_qbf(qbf)
