"""Tests for the full-TD interpreter: queries, updates, concurrency,
communication through the database, recursion, budgets."""

import pytest

from repro import (
    Database,
    Interpreter,
    SearchBudgetExceeded,
    parse_database,
    parse_goal,
    parse_program,
)
from repro.core.errors import SafetyError


def run_all(program_text, goal_text, db_text="", **kw):
    interp = Interpreter(parse_program(program_text), **kw)
    return list(interp.solve(parse_goal(goal_text), parse_database(db_text)))


class TestElementaryOperations:
    def test_tuple_test_success(self):
        sols = run_all("ok <- p(a).", "ok", "p(a).")
        assert len(sols) == 1

    def test_tuple_test_failure(self):
        assert run_all("ok <- p(a).", "ok", "p(b).") == []

    def test_test_binds_goal_variable(self):
        sols = run_all("", "p(X)", "p(a). p(b).")
        values = sorted(str(t) for s in sols for t in s.bindings.values())
        assert values == ["a", "b"]

    def test_insert(self):
        (sol,) = run_all("add <- ins.p(a).", "add")
        assert parse_database("p(a).") == sol.database

    def test_delete(self):
        (sol,) = run_all("rm <- del.p(a).", "rm", "p(a). p(b).")
        assert sol.database == parse_database("p(b).")

    def test_delete_absent_is_noop(self):
        (sol,) = run_all("rm <- del.p(zz).", "rm", "p(a).")
        assert sol.database == parse_database("p(a).")

    def test_negation_as_absence(self):
        assert run_all("ok <- not p(a).", "ok", "p(a).") == []
        assert len(run_all("ok <- not p(a).", "ok", "p(b).")) == 1

    def test_builtin_guard(self):
        prog = "big(X) <- val(X, V) * V > 10."
        sols = run_all(prog, "big(X)", "val(a, 5). val(b, 15).")
        assert [str(next(iter(s.bindings.values()))) for s in sols] == ["b"]

    def test_unsafe_insert_blocks(self):
        # An unbound ins cannot fire: with no sibling to bind X the goal
        # simply fails, and the static analysis flags the rule.
        from repro import analyze, parse_program as pp

        assert run_all("bad <- ins.p(X).", "bad") == []
        warnings = analyze(pp("bad <- ins.p(X).")).safety_warnings
        assert any("ins.p(X)" in w for w in warnings)


class TestSequentialComposition:
    def test_order_matters(self):
        # test before insert fails; insert before test succeeds
        assert run_all("ok <- p(a) * ins.p(a).", "ok") == []
        assert len(run_all("ok <- ins.p(a) * p(a).", "ok")) == 1

    def test_intermediate_states_visible(self):
        (sol,) = run_all(
            "swap <- del.cur(a) * ins.cur(b) * cur(X) * ins.seen(X).",
            "swap",
            "cur(a).",
        )
        assert sol.database == parse_database("cur(b). seen(b).")

    def test_failure_leaves_no_trace(self):
        # the transaction aborts: no partial effects observable
        interp = Interpreter(parse_program("t <- ins.p(a) * q(zz)."))
        db = parse_database("")
        assert not interp.succeeds(parse_goal("t"), db)
        assert db == parse_database("")


class TestConcurrency:
    def test_interleaving_final_states(self):
        # (del.a then del.b) | (ins.c then ins.d) from {a,b} to {c,d}
        prog = """
        p <- del.a * del.b.
        q <- ins.c * ins.d.
        """
        sols = run_all(prog, "p | q", "a. b.")
        finals = {s.database for s in sols}
        assert parse_database("c. d.") in finals

    def test_communication_through_database(self):
        # the paper's core point: one process reads what another writes
        prog = """
        prod <- ins.msg(hello).
        cons <- msg(X) * ins.got(X).
        """
        sols = run_all(prog, "prod | cons")
        from repro import atom
        assert any(atom("got", "hello") in s.database for s in sols)

    def test_mutual_communication_requires_interleaving(self):
        # Neither serial order works; only a true interleaving commits.
        prog = """
        a <- q(x) * ins.p(x).
        b <- ins.q(x) * p(x).
        """
        sols = run_all(prog, "a | b")
        assert len(sols) >= 1

    def test_concurrent_branches_share_variables(self):
        prog = """
        left(X) <- val(X).
        right(X) <- ins.out(X).
        """
        sols = run_all(prog, "left(X) | right(X)", "val(a).")
        from repro import atom
        assert len(sols) == 1
        assert atom("out", "a") in sols[0].database

    def test_three_way_interleaving(self):
        prog = """
        s1 <- t1(X) * ins.t2(X).
        s2 <- t2(X) * ins.t3(X).
        s3 <- t3(X) * ins.done(X).
        """
        sols = run_all(prog, "s3 | s1 | s2", "t1(v).")
        assert any(str(f) == "done(v)" for s in sols for f in s.database.facts("done"))


class TestRecursion:
    def test_tail_recursive_drain(self):
        prog = """
        drain <- item(X) * del.item(X) * drain.
        drain <- not item(_).
        """
        (sol,) = run_all(prog, "drain", "item(a). item(b). item(c).")
        assert sol.database == Database()

    def test_recursion_through_concurrency(self, simulate_program):
        interp = Interpreter(simulate_program)
        db = parse_database("workitem(w1). workitem(w2). workitem(w3).")
        finals = interp.final_databases(parse_goal("simulate"), db)
        assert parse_database("done(w1). done(w2). done(w3).") in finals

    def test_budget_exceeded_on_divergence(self):
        # Non-tail recursion accumulates an ever-growing continuation:
        # the configuration space is infinite and the naive BFS hits its
        # budget (tabling=False -- the table proves this failure finitely,
        # see the companion test below).
        prog = "grow <- grow * ins.x."
        interp = Interpreter(parse_program(prog), max_configs=500, tabling=False)
        with pytest.raises(SearchBudgetExceeded):
            interp.succeeds(parse_goal("grow"), Database())

    def test_tabling_proves_divergent_failure_finitely(self):
        # The same program under tabling: the recursive call consumes
        # from its own (empty) table entry, the generator reaches a
        # fixpoint with zero answers, and the search terminates with a
        # proof of failure instead of exhausting the budget.
        prog = "grow <- grow * ins.x."
        interp = Interpreter(parse_program(prog), max_configs=500)
        assert not interp.succeeds(parse_goal("grow"), Database())

    def test_finite_cycle_terminates_as_failure(self):
        # Tail recursion with no exit revisits the same configuration:
        # the space is finite, so BFS proves failure instead of hitting
        # the budget -- commitment requires termination.
        prog = "spin <- ins.s * del.s * spin."
        interp = Interpreter(parse_program(prog), max_configs=10_000)
        assert not interp.succeeds(parse_goal("spin"), Database())

    def test_bfs_fair_despite_divergent_branch(self):
        # one rule diverges, the other commits: BFS must find the commit.
        prog = """
        try <- diverge.
        try <- ins.ok.
        diverge <- ins.x * del.x * diverge.
        """
        interp = Interpreter(parse_program(prog), max_configs=50_000)
        assert interp.succeeds(parse_goal("try"), Database())


class TestSolutionEnumeration:
    def test_distinct_solutions_only(self):
        prog = "pick <- item(X) * ins.chosen(X)."
        sols = run_all(prog, "pick", "item(a). item(b).")
        assert len(sols) == 2

    def test_answers_and_finals_paired(self):
        prog = "take(X) <- item(X) * del.item(X)."
        sols = run_all(prog, "take(X)", "item(a). item(b).")
        from repro import atom
        for sol in sols:
            taken = str(next(iter(sol.bindings.values())))
            assert atom("item", taken) not in sol.database

    def test_run_attaches_traces(self):
        interp = Interpreter(parse_program("t <- ins.p(a) * del.p(a)."))
        (execution,) = interp.run(parse_goal("t"), Database())
        assert "ins.p(a)" in execution.events
        assert "del.p(a)" in execution.events


class TestSimulate:
    def test_simulate_returns_none_on_failure(self):
        interp = Interpreter(parse_program("t <- impossible(x)."))
        assert interp.simulate(parse_goal("t"), Database()) is None

    def test_simulate_deterministic_without_seed(self):
        interp = Interpreter(parse_program("t <- item(X) * ins.out(X)."))
        db = parse_database("item(a). item(b).")
        e1 = interp.simulate(parse_goal("t"), db)
        e2 = interp.simulate(parse_goal("t"), db)
        assert e1.events == e2.events

    def test_simulate_seed_reproducible(self):
        prog = parse_program("t <- item(X) * ins.out(X).")
        db = parse_database("item(a). item(b). item(c).")
        runs = [Interpreter(prog).simulate(parse_goal("t"), db, seed=99) for _ in range(2)]
        assert runs[0].events == runs[1].events

    def test_simulate_agrees_with_solve_on_success(self, simulate_program):
        interp = Interpreter(simulate_program)
        db = parse_database("workitem(w1). workitem(w2).")
        exe = interp.simulate(parse_goal("simulate"), db)
        assert exe is not None
        assert exe.database in interp.final_databases(parse_goal("simulate"), db)
