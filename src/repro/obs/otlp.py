"""OTLP/JSON export: spans and metrics in the OpenTelemetry wire format.

The tracer's JSON-lines format is ours; the rest of the world speaks
OTLP.  This module maps a finished :class:`~repro.obs.tracer.Tracer`
(or a parsed span log) and a :class:`~repro.obs.metrics.Metrics`
snapshot onto the OTLP/JSON shape -- ``resourceSpans`` → ``scopeSpans``
→ spans with ``traceId``/``spanId``/``parentSpanId``, and
``resourceMetrics`` → ``scopeMetrics`` → sums / gauges / histograms --
so a ``--trace-out`` run loads directly into standard tooling (Jaeger,
an OTLP collector's file receiver, `otel-desktop-viewer`, ...).

Zero dependencies: the wire format is emitted directly, following the
protobuf-JSON mapping the OTLP spec prescribes -- 64-bit integers as
decimal strings, ``traceId``/``spanId`` as lowercase hex, enums as
numbers.

Determinism: span ids are derived from the tracer's sequential ``s<n>``
ids (``spanId`` = ``n`` as 16 hex digits) and each root span starts its
own trace (``traceId`` derived from the root's ``n``), so the export is
reproducible for a fixed search.  Timestamps are the one exception:
the tracer records ``perf_counter`` seconds, which :func:`to_unix_nanos`
rebases onto the epoch via an *anchor*; pass ``epoch=0.0`` for fully
deterministic output (tests do).
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .context import Instrumentation
from .metrics import Metrics
from .tracer import Span, Tracer

__all__ = [
    "spans_to_otlp",
    "metrics_to_otlp",
    "export_otlp",
    "write_otlp",
]

#: OTLP enum values (numeric per the protobuf-JSON mapping).
SPAN_KIND_INTERNAL = 1
AGGREGATION_TEMPORALITY_CUMULATIVE = 2

_SCOPE = {"name": "repro.obs", "version": "1"}

_SpanLike = Union[Span, Dict[str, object]]


# -- small encoders -----------------------------------------------------------


def _any_value(value: object) -> Dict[str, object]:
    """A python value as an OTLP ``AnyValue`` (bool before int: bool is
    an int subclass)."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(mapping: Dict[str, object]) -> List[Dict[str, object]]:
    return [
        {"key": key, "value": _any_value(mapping[key])} for key in sorted(mapping)
    ]


def _span_number(span_id: object) -> int:
    """The sequential number behind a tracer span id (``"s12"`` → 12)."""
    text = str(span_id)
    if text.startswith("s") and text[1:].isdigit():
        return int(text[1:])
    # Foreign id (hand-edited log): fold to a stable nonzero number.
    folded = 0
    for ch in text:
        folded = (folded * 131 + ord(ch)) % (2**63 - 1)
    return folded + 1


def _span_id_hex(span_id: object) -> str:
    return "%016x" % _span_number(span_id)


def _trace_id_hex(root_span_id: object) -> str:
    return "%032x" % _span_number(root_span_id)


def to_unix_nanos(perf_seconds: float, epoch: float) -> str:
    """A ``perf_counter`` reading as epoch nanoseconds (decimal string,
    per the protobuf-JSON mapping of ``fixed64``)."""
    return str(int(round((epoch + perf_seconds) * 1e9)))


def _as_span_dict(span: _SpanLike) -> Dict[str, object]:
    return span.as_dict() if isinstance(span, Span) else dict(span)


def _epoch_anchor(epoch: Optional[float]) -> float:
    """Offset that rebases ``perf_counter`` seconds onto the unix epoch."""
    if epoch is not None:
        return epoch
    return time.time() - time.perf_counter()


def _default_resource(resource: Optional[Dict[str, object]]) -> Dict[str, object]:
    merged: Dict[str, object] = {"service.name": "repro-tdlog"}
    if resource:
        merged.update(resource)
    return merged


# -- spans --------------------------------------------------------------------


def spans_to_otlp(
    spans: Union[Tracer, Sequence[_SpanLike]],
    resource: Optional[Dict[str, object]] = None,
    epoch: Optional[float] = None,
) -> Dict[str, object]:
    """Finished spans as an OTLP/JSON ``resourceSpans`` payload.

    *spans* is a :class:`Tracer` or a sequence of spans / span dicts
    (the shape ``read_jsonl`` returns).  Each root span opens its own
    trace; children inherit the root's ``traceId`` through the parent
    chain, so parent links stay consistent with trace membership.
    """
    if isinstance(spans, Tracer):
        spans = list(spans.spans)
    records = [_as_span_dict(s) for s in spans]
    anchor = _epoch_anchor(epoch)

    # Resolve each span's root through the parent chain (spans arrive in
    # completion order: children may precede parents, so resolve lazily).
    parent_of = {str(r["span_id"]): r.get("parent_id") for r in records}
    root_of: Dict[str, str] = {}

    def resolve_root(span_id: str) -> str:
        seen: List[str] = []
        current = span_id
        while True:
            cached = root_of.get(current)
            if cached is not None:
                root = cached
                break
            parent = parent_of.get(current)
            if parent is None or str(parent) not in parent_of:
                root = current  # orphaned parents count as roots too
                break
            seen.append(current)
            current = str(parent)
        for visited in seen + [current]:
            root_of[visited] = root
        return root

    otlp_spans: List[Dict[str, object]] = []
    for record in records:
        span_id = str(record["span_id"])
        parent = record.get("parent_id")
        start = float(record["start"])  # type: ignore[arg-type]
        end = record.get("end")
        end_s = float(end) if end is not None else start
        otlp: Dict[str, object] = {
            "traceId": _trace_id_hex(resolve_root(span_id)),
            "spanId": _span_id_hex(span_id),
            "name": str(record["name"]),
            "kind": SPAN_KIND_INTERNAL,
            "startTimeUnixNano": to_unix_nanos(start, anchor),
            "endTimeUnixNano": to_unix_nanos(end_s, anchor),
            "attributes": _attributes(dict(record.get("attrs") or {})),
        }
        if parent is not None and str(parent) in parent_of:
            otlp["parentSpanId"] = _span_id_hex(str(parent))
        otlp_spans.append(otlp)

    return {
        "resourceSpans": [
            {
                "resource": {"attributes": _attributes(_default_resource(resource))},
                "scopeSpans": [{"scope": dict(_SCOPE), "spans": otlp_spans}],
            }
        ]
    }


# -- metrics ------------------------------------------------------------------


def _number_point(value: float, anchor: float, now: float) -> Dict[str, object]:
    point: Dict[str, object] = {"timeUnixNano": to_unix_nanos(now, anchor)}
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        point["asDouble"] = float(value)
    elif isinstance(value, int):
        point["asInt"] = str(value)
    else:
        point["asDouble"] = value
    return point


def metrics_to_otlp(
    metrics: Union[Metrics, Dict[str, object]],
    resource: Optional[Dict[str, object]] = None,
    epoch: Optional[float] = None,
) -> Dict[str, object]:
    """A metrics registry (or its ``snapshot()``) as OTLP/JSON
    ``resourceMetrics``.

    Counters become monotonic cumulative sums, gauges become gauges,
    histogram summaries become OTLP histogram data points (count / sum /
    min / max, no buckets -- the registry keeps summaries, not
    distributions), timers become non-monotonic sums in seconds.  The
    ``info`` table rides along as resource attributes, where OTLP puts
    run-level facts.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, Metrics) else dict(metrics)
    anchor = _epoch_anchor(epoch)
    now = 0.0 if epoch is not None else time.perf_counter()
    stamp = lambda v: _number_point(v, anchor, now)  # noqa: E731

    out_metrics: List[Dict[str, object]] = []
    for name in sorted(snapshot.get("counters") or {}):
        value = snapshot["counters"][name]  # type: ignore[index]
        out_metrics.append(
            {
                "name": name,
                "unit": "1",
                "sum": {
                    "dataPoints": [stamp(int(value))],
                    "aggregationTemporality": AGGREGATION_TEMPORALITY_CUMULATIVE,
                    "isMonotonic": True,
                },
            }
        )
    for name in sorted(snapshot.get("gauges") or {}):
        value = snapshot["gauges"][name]  # type: ignore[index]
        out_metrics.append(
            {"name": name, "unit": "1", "gauge": {"dataPoints": [stamp(float(value))]}}
        )
    for name in sorted(snapshot.get("histograms") or {}):
        summary = snapshot["histograms"][name]  # type: ignore[index]
        point: Dict[str, object] = {
            "timeUnixNano": to_unix_nanos(now, anchor),
            "count": str(int(summary["count"])),
            "sum": float(summary["total"]),
            "min": float(summary["min"]),
            "max": float(summary["max"]),
        }
        # Percentile estimates ride along as attributes: OTLP histogram
        # points carry buckets, not quantiles (that's Summary, which
        # collectors increasingly reject), and we keep summaries only.
        quantiles = {
            key: summary[key] for key in ("p50", "p95") if key in summary
        }
        if quantiles:
            point["attributes"] = _attributes(
                {"repro." + k: float(v) for k, v in quantiles.items()}
            )
        out_metrics.append(
            {
                "name": name,
                "unit": "1",
                "histogram": {
                    "dataPoints": [point],
                    "aggregationTemporality": AGGREGATION_TEMPORALITY_CUMULATIVE,
                },
            }
        )
    for name in sorted(snapshot.get("timers") or {}):
        seconds = snapshot["timers"][name]  # type: ignore[index]
        out_metrics.append(
            {
                "name": name,
                "unit": "s",
                "sum": {
                    "dataPoints": [stamp(float(seconds))],
                    "aggregationTemporality": AGGREGATION_TEMPORALITY_CUMULATIVE,
                    "isMonotonic": True,
                },
            }
        )

    merged_resource = _default_resource(resource)
    for key, value in sorted((snapshot.get("info") or {}).items()):  # type: ignore[union-attr]
        merged_resource.setdefault("repro." + key, value)

    return {
        "resourceMetrics": [
            {
                "resource": {"attributes": _attributes(merged_resource)},
                "scopeMetrics": [{"scope": dict(_SCOPE), "metrics": out_metrics}],
            }
        ]
    }


# -- combined -----------------------------------------------------------------


def export_otlp(
    inst: Instrumentation,
    resource: Optional[Dict[str, object]] = None,
    epoch: Optional[float] = None,
) -> Dict[str, object]:
    """One instrumentation bundle as a combined OTLP/JSON document.

    The document carries both sections under one roof (the shape an
    OTLP file receiver accepts per-signal; split on ``resourceSpans`` /
    ``resourceMetrics`` to feed a strict endpoint).
    """
    anchor = _epoch_anchor(epoch)
    payload = spans_to_otlp(inst.tracer, resource=resource, epoch=anchor)
    payload.update(metrics_to_otlp(inst.metrics, resource=resource, epoch=anchor))
    return payload


def write_otlp(
    path: str,
    inst: Instrumentation,
    resource: Optional[Dict[str, object]] = None,
    epoch: Optional[float] = None,
) -> None:
    """Write :func:`export_otlp` output to *path* as pretty JSON."""
    with open(path, "w") as handle:
        json.dump(export_otlp(inst, resource=resource, epoch=epoch), handle, indent=2)
        handle.write("\n")
