"""Command-line interface: run, solve, classify, and profile TD programs.

Usage examples::

    tdlog classify workflow.td
    tdlog solve workflow.td --goal 'transfer(a, b, 30)' --db bank.facts
    tdlog run workflow.td --goal 'simulate' --db lab.facts --seed 7
    tdlog run workflow.td --goal 'transfer(a, b, 30)' --db bank.facts \
        --store sqlite:bank.tdlog
    tdlog solve big.td --goal 'search' --store sqlite:run.tdlog \
        --checkpoint-out run.ckpt   # exit 3 on exhaustion, then:
    tdlog solve big.td --goal 'search' --store sqlite:run.tdlog \
        --resume-from run.ckpt
    tdlog store inspect bank.tdlog --json
    tdlog store fsck bank.tdlog --repair
    tdlog analyze --demo-lab 4
    tdlog explain workflow.td --goal 'transfer(a, b, 30)' --db bank.facts
    tdlog explain workflow.td --goal 'transfer(a, b, 999)' --db bank.facts --why-not
    tdlog explain --audit-por
    tdlog solve workflow.td --goal 'simulate' --db lab.facts --progress 2
    tdlog bench --repeat 5
    tdlog bench trend
    tdlog bench trend --check --threshold 1.0
    tdlog profile baseline
    tdlog profile diff
    tdlog profile hotspots --top 10 --speedscope profile.speedscope.json
    tdlog profile export-otlp workflow.td --goal 'simulate' --out otlp.json
    tdlog chaos --plans 50 --seed 0
    tdlog chaos --only bank_transfer --json chaos.json

``run`` finds one successful execution (the simulator) and prints its
trace and final database; ``solve`` enumerates all solutions (bindings +
final state); ``classify`` prints the sublanguage analysis.  ``analyze``
computes workflow analytics (per-task latency, agent utilization, queue
wait, critical path) from an event log or a demo simulation; ``explain``
records derivation provenance and renders proof trees, why-not failure
summaries, and the partial-order-reduction pruning audit; ``bench``
times the profile-suite workloads (wall clock, best/mean over repeats;
``bench trend`` diffs the latest snapshot against the committed
trajectory);
``profile`` manages counter baselines (``baseline``/``diff``, the CI
regression gate) and exports traces/metrics as OTLP JSON
(``export-otlp``); ``store inspect`` prints a durable ``.tdlog``
store's snapshot generation, WAL tail, checksum status, lease holder,
and per-predicate fact counts (read-only, so it works on damaged or
in-use files); ``store fsck`` verifies a store's checksums and meta
coherence offline and can quarantine a damaged WAL tail (``--repair``)
-- see docs/STORAGE.md; ``chaos`` runs the differential fault-injection
suite (seeded fault plans against every chaos workload, asserting the
atomicity and retry-recovery invariants -- see docs/ROBUSTNESS.md;
``--store-faults`` adds the crash-point/byte-corruption store fuzzing
family) and its output is byte-identical for the same arguments.

``tdlog`` is the canonical command name.  The same program is also
installed as ``repro`` (a documented alias kept for older scripts);
both run this module's :func:`main`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core import (
    Database,
    analyze,
    format_database,
    format_trace,
    parse_database,
    parse_goal,
    parse_program,
    select_engine,
)

__all__ = ["main"]


def _load_db(path: Optional[str]) -> Database:
    if path is None:
        return Database()
    with open(path) as handle:
        return parse_database(handle.read())


def _load_program(path: str):
    with open(path) as handle:
        return parse_program(handle.read())


def _cmd_classify(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    goal = parse_goal(args.goal) if args.goal else None
    print(analyze(program, goal).report())
    return 0


def _open_store_arg(args: argparse.Namespace, db: Optional[Database]):
    """Open ``--store`` (``None`` when absent).  A fresh, empty durable
    store is seeded from *db*; an existing store's contents win over
    ``--db`` (durability means the file is the state of record)."""
    spec = getattr(args, "store", None)
    if not spec:
        return None
    from .store import open_store

    return open_store(spec, db=db)


def _cmd_solve(args: argparse.Namespace) -> int:
    import pickle
    from contextlib import ExitStack

    from .core import DeadlineExceeded, SearchBudgetExceeded

    program = _load_program(args.program)
    db = _load_db(args.db)
    count = 0
    with ExitStack() as stack:
        store = _open_store_arg(args, db if args.db else None)
        if store is not None:
            stack.callback(store.close)
        engine = select_engine(
            program,
            args.goal,
            max_configs=args.max_configs,
            store=store,
            tabling=not getattr(args, "no_tabling", False),
        )
        if getattr(args, "progress", 0):
            # The heartbeat reads the engines' own counters; make sure a
            # registry is active even without --profile/--trace-out.
            from .obs import active, instrumented
            from .obs.progress import ProgressReporter

            obs = active()
            if not obs.enabled:
                obs = stack.enter_context(instrumented())
            stack.enter_context(
                ProgressReporter(obs.metrics, interval=args.progress)
            )
        if getattr(args, "resume_from", None):
            # Continue an interrupted search: the pickled checkpoint
            # carries the goal, frontier, and already-emitted answers;
            # with --store the states come from the durable file that
            # survived the original run (recovery replayed its WAL on
            # open), so checkpoint + store compose into crash restart.
            with open(args.resume_from, "rb") as handle:
                checkpoint = pickle.load(handle)
            solutions = engine.resume(checkpoint)
        else:
            solutions = engine.solve(
                args.goal, None if store is not None else db
            )
        try:
            for solution in solutions:
                count += 1
                if solution.bindings:
                    bindings = ", ".join(
                        "%s = %s" % (v, t)
                        for v, t in sorted(solution.bindings.items())
                    )
                    print("solution %d: %s" % (count, bindings))
                else:
                    print("solution %d." % count)
                print(format_database(solution.database) or "  (empty database)")
                print()
                if args.limit and count >= args.limit:
                    break
        except (SearchBudgetExceeded, DeadlineExceeded) as exc:
            checkpoint = getattr(exc, "checkpoint", None)
            out = getattr(args, "checkpoint_out", None)
            if out is None or checkpoint is None:
                raise
            with open(out, "wb") as handle:
                pickle.dump(checkpoint, handle)
            print(
                "search interrupted (%s); checkpoint written to %s "
                "(resume with --resume-from)" % (type(exc).__name__, out),
                file=sys.stderr,
            )
            return 3
    if count == 0:
        print("no solution: the transaction cannot commit")
        return 1
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    program = _load_program(args.program)
    db = _load_db(args.db)
    with ExitStack() as stack:
        store = _open_store_arg(args, db if args.db else None)
        if store is not None:
            stack.callback(store.close)
        engine = select_engine(
            program, args.goal, max_configs=args.max_configs, store=store
        )
        execution = engine.simulate(
            args.goal, None if store is not None else db, seed=args.seed
        )
        if execution is None:
            print("no successful execution found")
            return 1
        print("trace:")
        print(format_trace(execution.trace, indent="  "))
        print("final database:")
        print(format_database(execution.database) or "  (empty database)")
        if store is not None:
            print("execution committed to store", file=sys.stderr)
    return 0


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    """Debugging surface for the durable backend: snapshot generation,
    WAL length, per-predicate fact counts, checkpoint linkage, lease
    holder, checksum status, and quarantine-sidecar presence.

    Opens *read-only*: inspection must neither take the writer lease
    (the store may be live under another process) nor trigger
    checkpoints, and a damaged store still opens -- degraded -- so
    there is always a way to look at a broken file.
    """
    import os

    from .store import StoreError
    from .store.sqlite import SqliteStore

    if not os.path.exists(args.path):
        # Opening would create an empty store -- surprising for an
        # inspection command, so refuse instead.
        raise StoreError("no such store: %s" % args.path)
    with SqliteStore(args.path, readonly=True) as store:
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True, default=str))
            return 0
        print("store:      %s" % stats["path"])
        print("backend:    %s" % stats["backend"])
        print("schema:     version %s" % stats["schema_version"])
        print("facts:      %d" % stats["facts"])
        print("generation: %d" % stats["generation"])
        print("wal tail:   %d row(s) pending replay" % stats["wal_length"])
        print(
            "checkpoint: generation %d folded WAL through seq %d "
            "(%d fact(s) in snapshot)"
            % (stats["generation"], stats["checkpoint_seq"],
               stats["snapshot_facts"])
        )
        print(
            "checksums:  %s"
            % ("DEGRADED: %s" % stats["degraded"] if stats["degraded"]
               else "verified (snapshot + wal tail)")
        )
        lease = stats["lease"]
        if lease:
            print(
                "lease:      held by pid %s (generation %s)"
                % (lease.get("pid"), lease.get("generation"))
            )
        else:
            print("lease:      free")
        print(
            "quarantine: %s"
            % ("sidecar present (see 'tdlog store fsck')"
               if stats["quarantine"] else "none")
        )
        predicates = stats["predicates"]
        if predicates:
            print("predicates:")
            for pred, n in predicates.items():
                print("  %-20s %d" % (pred, n))
        else:
            print("predicates: (none)")
    return 0


def _cmd_store_fsck(args: argparse.Namespace) -> int:
    """Offline verifier for ``.tdlog`` stores (see
    :mod:`repro.store.fsck`).  Exit 0 when every check passes, 2 when
    damage was found (the same exit class as any other store error);
    ``--repair`` quarantines a damaged WAL tail and exits by the
    post-repair verdict."""
    from .store.fsck import format_fsck, fsck

    report = fsck(args.path, repair=args.repair)
    if args.repair and report.repaired:
        # Show the state the repair left behind, not the damage it
        # removed: verify once more, keeping the repair log.
        verified = fsck(args.path)
        verified.repaired.extend(report.repaired)
        report = verified
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(format_fsck(report))
    return 0 if report.ok else 2


def _cmd_graph(args: argparse.Namespace) -> int:
    from .verify import deadlocks, explore, may_diverge

    program = _load_program(args.program)
    db = _load_db(args.db)
    graph = explore(program, args.goal, db, max_states=args.max_states)
    stuck = deadlocks(graph)
    print("states:     %d" % len(graph))
    print("final:      %d" % len(graph.final_ids))
    print("stuck:      %d" % len(stuck))
    print("may loop:   %s" % ("yes" if may_diverge(graph) else "no"))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(graph.to_dot())
        print("dot graph written to %s" % args.dot)
    if stuck and args.show_stuck:
        print("first stuck state:")
        print("  %s" % stuck[0])
        print("  via: %s" % "; ".join(graph.path_to(stuck[0].node_id)))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .verify import diagnose

    program = _load_program(args.program)
    db = _load_db(args.db)
    report = diagnose(program, args.goal, db, max_states=args.max_states)
    print(report.summary())
    return 0 if report.committed else 1


def _cmd_repl(args: argparse.Namespace) -> int:
    from .repl import Repl

    Repl().loop()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Workflow analytics from an event-log JSON file or a demo run."""
    from .workflow.analytics import render_analytics
    from .workflow.eventlog import EventRecord

    if args.eventlog:
        with open(args.eventlog) as handle:
            payload = json.load(handle)
        records = [
            EventRecord(
                seq=int(entry["seq"]),
                kind=str(entry["kind"]),
                item=str(entry.get("item", "")),
                task=entry.get("task"),
                agent=entry.get("agent"),
                fact=entry.get("fact"),
                span_id=entry.get("span_id"),
            )
            for entry in payload
        ]
        spans = []
        if args.trace:
            from .obs import read_jsonl

            with open(args.trace) as handle:
                spans = read_jsonl(handle.read())
        print(render_analytics(records, spans=spans))
        return 0

    # Demo mode: simulate the paper's genome-lab pipeline (Examples
    # 3.1-3.3) instrumented, so the report includes the span join.
    from contextlib import nullcontext

    from .lims import build_lab_simulator, gel_pipeline, sample_batch
    from .obs import active, instrumented

    obs = active()
    context = nullcontext(obs) if obs.enabled else instrumented()
    with context as inst:
        simulator = build_lab_simulator()
        result = simulator.run(sample_batch(args.demo_lab))
    print("genome-lab demo: %d samples through the gel pipeline\n" % args.demo_lab)
    print(
        render_analytics(
            result, spec=gel_pipeline(iterate=False), spans=inst.tracer.spans
        )
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Answer explanation: proof trees, why-not reports, pruning audit.

    Three modes (see docs/OBSERVABILITY.md, "Explaining answers"):

    * ``explain PROGRAM --goal G``: run the goal with a provenance
      recorder attached and print the proof tree of each solution.
    * ``explain PROGRAM --goal G --why-not``: print the failure-side
      summary instead (also the automatic fallback when the goal has no
      solution).
    * ``explain --audit-por [--suite NAME]``: re-verify every recorded
      ample-set pruning decision against its witness and replay with
      reduction off; with a PROGRAM and --goal the audit runs on that
      goal instead of the committed profile suite.
    """
    from .obs import explain as _explain

    if args.audit_por:
        audits = []
        if args.program and args.goal:
            program = _load_program(args.program)
            db = _load_db(args.db)
            audits.append(
                _explain.audit_por_goal(
                    program, args.goal, db, max_configs=args.max_configs
                )
            )
        else:
            from .obs.analyze import profile_suite

            names = args.suite or [c.name for c in profile_suite()]
            if "all" in names:
                names = [c.name for c in profile_suite()]
            audits.extend(_explain.audit_profile_config(name) for name in names)
        for audit in audits:
            print(audit.render())
        return 0 if all(a.ok for a in audits) else 1

    if not args.program or not args.goal:
        print("error: explain needs a PROGRAM and --goal (or --audit-por)",
              file=sys.stderr)
        return 2
    from .obs.hotspots import CostAttributor, attributing

    program = _load_program(args.program)
    db = _load_db(args.db)
    # Run with a cost attributor alongside the recorder so the why-not
    # report can say not just *where* branches died but what they cost.
    attr = CostAttributor()
    with attributing(attr):
        recorder, solutions = _explain.explain_goal(
            program, args.goal, db, mode=args.mode, max_configs=args.max_configs
        )
    attr.mark()
    if args.json:
        recorder.write_jsonl(args.json)
        print("provenance written to %s" % args.json, file=sys.stderr)
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(_explain.to_dot(recorder) + "\n")
        print("derivation DAG written to %s" % args.dot, file=sys.stderr)
    if args.why_not or not solutions:
        print(
            _explain.why_not_report(
                recorder, top_k=args.top, costs=attr.predicate_rollup()
            )
        )
        return 0 if solutions else 1
    print("%d solution(s); proof tree:" % len(solutions))
    print(_explain.render_proof_tree(recorder))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Wall-clock timings over the profile-suite workloads.

    Complements ``profile diff``: the counter gate catches *work* drift
    deterministically; this reports what that work costs on this
    machine.  Each repeat runs a workload from scratch (fresh program,
    fresh engine), so per-program caches do not flatter later repeats.
    """
    import time

    from .obs.analyze import profile_suite, suite_config

    if args.action == "trend":
        from .obs.analyze import parse_tolerance_overrides

        try:
            overrides = parse_tolerance_overrides(args.threshold_for or [])
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        return _bench_trend(
            args.out or "benchmarks/trajectory",
            check=args.check,
            threshold=args.threshold,
            overrides=overrides,
        )

    configs = (
        [suite_config(name) for name in args.only] if args.only else profile_suite()
    )
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    rows = []
    for config in configs:
        samples = []
        for _ in range(args.repeat):
            start = time.perf_counter()
            config.run()
            samples.append(time.perf_counter() - start)
        rows.append(
            {
                "config": config.name,
                "description": config.description,
                "repeat": args.repeat,
                "best_ms": round(min(samples) * 1000.0, 3),
                "mean_ms": round(sum(samples) / len(samples) * 1000.0, 3),
            }
        )
    width = max(len(str(row["config"])) for row in rows)
    print("%-*s  %10s  %10s" % (width, "config", "best (ms)", "mean (ms)"))
    for row in rows:
        print(
            "%-*s  %10.2f  %10.2f"
            % (width, row["config"], row["best_ms"], row["mean_ms"])
        )
    print("(%d repeat(s) per config; best-of is the stable figure)" % args.repeat)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        print("bench results written to %s" % args.json, file=sys.stderr)
    if args.out is not None:
        path = _next_bench_snapshot(args.out)
        with open(path, "w") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        print("bench snapshot written to %s" % path)
    return 0


def _next_bench_snapshot(out_dir: str) -> str:
    """The next free ``BENCH_<n>.json`` path in *out_dir* (1-based).

    Numbered snapshots accumulate instead of overwriting, so successive
    local runs -- or CI artifacts from successive builds -- can be
    compared side by side.
    """
    import os
    import re

    os.makedirs(out_dir, exist_ok=True)
    taken = []
    for name in os.listdir(out_dir):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if match:
            taken.append(int(match.group(1)))
    return os.path.join(out_dir, "BENCH_%d.json" % (max(taken, default=0) + 1))


def _bench_trend(
    trend_dir: str,
    check: bool = False,
    threshold: float = 1.0,
    overrides=None,
) -> int:
    """Diff the latest bench snapshot against the committed series.

    Reads every ``BENCH_<n>.json`` under *trend_dir* in numeric order
    and reports, per config, the latest best-of timing against the
    best and mean of the earlier snapshots.  Timings are machine-local:
    the trend is for spotting one build's regression against its own
    history, not for cross-machine comparison.

    With *check*, a config whose latest best-of exceeds its series best
    by more than *threshold* (a fraction: 1.0 = 100% slower) fails the
    gate and the command exits nonzero.  The default is deliberately
    generous -- wall clock on shared CI is noisy; the counter baselines
    (``profile diff``) are the precise gate, this one only catches
    gross timing cliffs.  *overrides* maps config names to per-config
    thresholds (``--threshold-for NAME=FRAC``).
    """
    import os
    import re

    overrides = overrides or {}

    if not os.path.isdir(trend_dir):
        print("error: no bench trajectory at %s (run `tdlog bench --out %s` "
              "first)" % (trend_dir, trend_dir), file=sys.stderr)
        return 2
    snapshots = []
    for name in sorted(os.listdir(trend_dir)):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if match:
            with open(os.path.join(trend_dir, name)) as handle:
                rows = json.load(handle)
            if not isinstance(rows, list) or not all(
                isinstance(r, dict) and "config" in r and "best_ms" in r
                for r in rows
            ):
                print("error: %s is not a bench snapshot (expected a list of "
                      "rows with config/best_ms)" % name, file=sys.stderr)
                return 2
            snapshots.append((int(match.group(1)), rows))
    snapshots.sort()
    if not snapshots:
        print("error: no BENCH_<n>.json snapshots in %s" % trend_dir,
              file=sys.stderr)
        return 2
    latest_n, latest = snapshots[-1]
    earlier = snapshots[:-1]
    print("bench trend: %d snapshot(s), latest BENCH_%d" % (len(snapshots), latest_n))
    width = max(len(str(row["config"])) for row in latest)
    if not earlier:
        print("%-*s  %12s" % (width, "config", "latest (ms)"))
        for row in latest:
            print("%-*s  %12.2f" % (width, row["config"], row["best_ms"]))
        print("(single snapshot; run `tdlog bench --out` again to get a trend)")
        if check:
            print("bench trend check: ok (single snapshot, nothing to compare)")
        return 0
    history = {}
    for _, rows in earlier:
        for row in rows:
            history.setdefault(row["config"], []).append(float(row["best_ms"]))
    print("%-*s  %12s  %12s  %12s  %8s" % (
        width, "config", "latest (ms)", "series best", "series mean", "delta"))
    regressions = []
    for row in latest:
        series = history.get(row["config"])
        if not series:
            print("%-*s  %12.2f  %12s  %12s  %8s"
                  % (width, row["config"], row["best_ms"], "-", "-", "new"))
            continue
        best = min(series)
        mean = sum(series) / len(series)
        delta = (float(row["best_ms"]) - best) / best * 100.0 if best else 0.0
        allowed = overrides.get(str(row["config"]), threshold)
        flag = ""
        if check and best and delta > allowed * 100.0:
            flag = "  REGRESSED (> +%.0f%%)" % (allowed * 100.0)
            regressions.append(
                "%s: %.2fms vs series best %.2fms (%+.1f%%, threshold +%.0f%%)"
                % (row["config"], row["best_ms"], best, delta, allowed * 100.0)
            )
        print("%-*s  %12.2f  %12.2f  %12.2f  %+7.1f%%%s"
              % (width, row["config"], row["best_ms"], best, mean, delta, flag))
    if check:
        if regressions:
            print("bench trend check: %d regression(s)" % len(regressions),
                  file=sys.stderr)
            for line in regressions:
                print("  " + line, file=sys.stderr)
            return 1
        print("bench trend check: ok (threshold +%.0f%%)" % (threshold * 100.0))
    return 0


def _cmd_profile_baseline(args: argparse.Namespace) -> int:
    from .obs.analyze import suite_config, write_baselines

    configs = [suite_config(name) for name in args.only] if args.only else None
    for path in write_baselines(args.out, configs):
        print("wrote %s" % path)
    return 0


def _cmd_profile_diff(args: argparse.Namespace) -> int:
    from .obs.analyze import (
        diff_baselines,
        parse_tolerance_overrides,
        render_diff,
        suite_config,
    )

    tolerances = parse_tolerance_overrides(args.counter or [])
    configs = [suite_config(name) for name in args.only] if args.only else None
    reports, problems = diff_baselines(
        args.baseline_dir, tolerances, args.tolerance, configs
    )
    print(render_diff(reports, problems, verbose=args.verbose))
    return 0 if all(r.ok for r in reports) and not problems else 1


def _cmd_profile_hotspots(args: argparse.Namespace) -> int:
    """Attributed cost profile of the suite workloads (or one of them).

    Each config runs with a fresh :class:`CostAttributor` *and* fresh
    instrumentation, inside a root frame named after the config, so all
    wall time falls under a named phase.  Per config the command prints
    coverage and the unify cross-check (attributed unify charges vs the
    deterministic ``unify.attempts`` counter -- the two must agree
    exactly); the ranked table and the folded/speedscope exports are
    rendered from the merged attributor so flame totals equal table
    totals by construction.
    """
    from .obs import Instrumentation, instrumented
    from .obs.analyze import profile_suite, suite_config
    from .obs.hotspots import CostAttributor, attributing

    configs = (
        [suite_config(name) for name in args.only] if args.only else profile_suite()
    )
    merged = CostAttributor()
    per_config = []
    failures = []
    for config in configs:
        attr = CostAttributor()
        inst = Instrumentation.create()
        with attributing(attr), instrumented(inst), \
                attr.frame(phase=config.name):
            config.run()
        attr.mark()  # settle trailing wall time before reading aggregates
        counter_unify = inst.metrics.counter("unify.attempts")
        attributed_unify = attr.totals().get("unify.attempts", 0.0)
        coverage = attr.coverage()
        per_config.append(
            {
                "config": config.name,
                "totals": attr.totals(),
                "coverage": coverage,
                "unify_counter": counter_unify,
                "unify_attributed": attributed_unify,
            }
        )
        if int(attributed_unify) != counter_unify:
            failures.append(
                "%s: attributed unify %d != counter %d"
                % (config.name, int(attributed_unify), counter_unify)
            )
        if coverage["time"] < 0.95 or coverage["unify.attempts"] < 0.95:
            failures.append(
                "%s: coverage below 95%% (time %.1f%%, unify %.1f%%)"
                % (
                    config.name,
                    coverage["time"] * 100.0,
                    coverage["unify.attempts"] * 100.0,
                )
            )
        merged.merge(attr)

    width = max(len(row["config"]) for row in per_config)
    print("%-*s  %9s  %9s  %10s  %10s" % (
        width, "config", "time-cov", "unify-cov", "unify-attr", "unify-ctr"))
    for row in per_config:
        print("%-*s  %8.1f%%  %8.1f%%  %10d  %10d" % (
            width,
            row["config"],
            row["coverage"]["time"] * 100.0,
            row["coverage"]["unify.attempts"] * 100.0,
            int(row["unify_attributed"]),
            row["unify_counter"],
        ))
    print()
    print(merged.table(top=args.top))

    if args.json:
        payload = {
            "configs": per_config,
            "merged": merged.as_dict(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("hotspot profile written to %s" % args.json, file=sys.stderr)
    if args.folded:
        with open(args.folded, "w") as handle:
            handle.write(merged.folded(kind=args.weight))
        print("folded stacks written to %s (flamegraph.pl compatible)"
              % args.folded, file=sys.stderr)
    if args.speedscope:
        with open(args.speedscope, "w") as handle:
            handle.write(merged.speedscope_json(kind=args.weight))
            handle.write("\n")
        print("speedscope profile written to %s" % args.speedscope,
              file=sys.stderr)

    for failure in failures:
        print("hotspots: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


def _cmd_profile_export_otlp(args: argparse.Namespace) -> int:
    from .obs import Instrumentation, instrumented, read_jsonl
    from .obs.otlp import export_otlp, spans_to_otlp

    if args.from_trace:
        with open(args.from_trace) as handle:
            payload = spans_to_otlp(read_jsonl(handle.read()))
    else:
        if not args.program or not args.goal:
            print(
                "error: export-otlp needs a PROGRAM and --goal "
                "(or --from-trace FILE)",
                file=sys.stderr,
            )
            return 2
        program = _load_program(args.program)
        db = _load_db(args.db)
        engine = select_engine(program, args.goal, max_configs=args.max_configs)
        inst = Instrumentation.create()
        with instrumented(inst):
            for _ in engine.solve(args.goal, db):
                pass
        payload = export_otlp(inst)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("OTLP JSON written to %s" % args.out)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Differential fault-injection sweep (see docs/ROBUSTNESS.md).

    Exit status 0 iff no workload reported an atomicity or recovery
    violation; the printed report (and ``--json`` payload) is a pure
    function of the arguments, so CI can diff it byte-for-byte.
    """
    from dataclasses import asdict

    from .faults import (
        chaos_workloads,
        format_report,
        run_chaos,
        store_workloads,
        workload_by_name,
    )

    if args.list:
        for workload in chaos_workloads():
            print("%-16s %s" % (workload.name, workload.description))
        for workload in store_workloads():
            print("%-16s %s [--store-faults]"
                  % (workload.name, workload.description))
        return 0
    if args.plans < 1:
        print("error: --plans must be >= 1", file=sys.stderr)
        return 2
    try:
        workloads = (
            [workload_by_name(name) for name in args.only]
            if args.only
            else None
        )
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    if args.store_faults:
        # Opt-in storage-fault family: appended rather than default so
        # existing committed chaos reports stay byte-identical.
        workloads = (
            chaos_workloads() if workloads is None else workloads
        ) + store_workloads()
    reports = run_chaos(
        workloads=workloads,
        plans=args.plans,
        base_seed=args.seed,
        allow_exhaustion=not args.no_exhaustion,
    )
    print(format_report(reports))
    if args.json:
        payload = {
            "plans": args.plans,
            "seed": args.seed,
            "reports": [
                {
                    "workload": report.workload,
                    "commits": report.commits,
                    "aborts": report.aborts,
                    "recoveries": report.recoveries,
                    "violations": len(report.violations),
                    "outcomes": [asdict(o) for o in report.outcomes],
                }
                for report in reports
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print("chaos report written to %s" % args.json, file=sys.stderr)
    return 1 if any(report.violations for report in reports) else 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Profiling flags shared by every subcommand (see docs/OBSERVABILITY.md)."""
    parser.add_argument(
        "--profile", action="store_true",
        help="print an engine metrics summary after the command",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write the span trace as JSON lines to FILE (overwrites)",
    )
    parser.add_argument(
        "--trace-append", action="store_true",
        help="append to --trace-out instead of overwriting it",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdlog",
        description="Transaction Datalog: run, solve, classify",
        epilog="'tdlog' is the canonical name; 'repro' is an installed alias.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser("classify", help="sublanguage analysis report")
    p_classify.add_argument("program", help="path to a .td program file")
    p_classify.add_argument("--goal", help="optional goal to include")
    p_classify.set_defaults(fn=_cmd_classify)

    common = dict(help="path to a .td program file")
    p_solve = sub.add_parser("solve", help="enumerate all solutions")
    p_solve.add_argument("program", **common)
    p_solve.add_argument("--goal", required=True, help="goal to execute")
    p_solve.add_argument("--db", help="path to an initial-database facts file")
    p_solve.add_argument("--limit", type=int, default=0, help="stop after N solutions")
    p_solve.add_argument("--max-configs", type=int, default=200_000)
    p_solve.add_argument(
        "--progress", type=float, default=0, metavar="SECONDS",
        help="print a live progress heartbeat (steps, frontier, depth, "
             "solutions, elapsed) to stderr every SECONDS seconds "
             "(default: off)",
    )
    p_solve.add_argument(
        "--store", metavar="SPEC",
        help="storage backend: 'mem' or 'sqlite:PATH' (a bare PATH ending "
             "in .tdlog also works); a fresh durable store is seeded from "
             "--db, an existing one's contents win (see docs/STORAGE.md)",
    )
    p_solve.add_argument(
        "--no-tabling", action="store_true",
        help="disable answer tabling on the small-step engine (the naive "
             "search is the differential oracle; see docs/PERFORMANCE.md)",
    )
    p_solve.add_argument(
        "--checkpoint-out", metavar="FILE",
        help="on budget/deadline exhaustion, pickle the resumable "
             "checkpoint to FILE and exit with status 3",
    )
    p_solve.add_argument(
        "--resume-from", metavar="FILE",
        help="resume an interrupted search from a --checkpoint-out FILE "
             "(composes with --store: the durable state recovered on "
             "open, the checkpoint supplies the frontier)",
    )
    p_solve.set_defaults(fn=_cmd_solve)

    p_run = sub.add_parser("run", help="simulate one successful execution")
    p_run.add_argument("program", **common)
    p_run.add_argument("--goal", required=True, help="goal to execute")
    p_run.add_argument("--db", help="path to an initial-database facts file")
    p_run.add_argument("--seed", type=int, help="randomize interleaving choices")
    p_run.add_argument("--max-configs", type=int, default=2_000_000)
    p_run.add_argument(
        "--store", metavar="SPEC",
        help="storage backend: 'mem' or 'sqlite:PATH'; the winning "
             "execution's trace is committed to it under savepoints",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_graph = sub.add_parser(
        "graph", help="explore the configuration graph (verification)"
    )
    p_graph.add_argument("program", **common)
    p_graph.add_argument("--goal", required=True, help="goal to explore")
    p_graph.add_argument("--db", help="path to an initial-database facts file")
    p_graph.add_argument("--max-states", type=int, default=100_000)
    p_graph.add_argument("--dot", help="write a Graphviz .dot file here")
    p_graph.add_argument(
        "--show-stuck", action="store_true",
        help="print the first stuck state and its trace",
    )
    p_graph.set_defaults(fn=_cmd_graph)

    p_diag = sub.add_parser(
        "diagnose", help="explain why a goal can or cannot commit"
    )
    p_diag.add_argument("program", **common)
    p_diag.add_argument("--goal", required=True, help="goal to diagnose")
    p_diag.add_argument("--db", help="path to an initial-database facts file")
    p_diag.add_argument("--max-states", type=int, default=100_000)
    p_diag.set_defaults(fn=_cmd_diagnose)

    p_repl = sub.add_parser("repl", help="interactive TD session")
    p_repl.set_defaults(fn=_cmd_repl)

    p_analyze = sub.add_parser(
        "analyze",
        help="workflow analytics: per-task latency, utilization, critical path",
    )
    p_analyze.add_argument(
        "eventlog", nargs="?",
        help="event-log JSON file (as written by repro.workflow.eventlog.to_json); "
             "omit to run the genome-lab demo",
    )
    p_analyze.add_argument(
        "--trace", metavar="FILE",
        help="span trace (JSON lines) to join for wall-clock attribution",
    )
    p_analyze.add_argument(
        "--demo-lab", type=int, default=3, metavar="N",
        help="demo mode: samples to push through the gel pipeline (default 3)",
    )
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_explain = sub.add_parser(
        "explain",
        help="proof trees, why-not reports, and the POR pruning audit",
    )
    p_explain.add_argument(
        "program", nargs="?",
        help="path to a .td program file (omit with --audit-por to audit "
             "the committed profile suite)",
    )
    p_explain.add_argument("--goal", help="goal to explain")
    p_explain.add_argument("--db", help="path to an initial-database facts file")
    p_explain.add_argument("--max-configs", type=int, default=200_000)
    p_explain.add_argument(
        "--mode", choices=["auto", "bfs", "dfs"], default="auto",
        help="auto routes by sublanguage; bfs/dfs force the small-step "
             "interpreter's fair search / backtracking scheduler",
    )
    p_explain.add_argument(
        "--why-not", action="store_true",
        help="summarize the failure side instead of the proof tree "
             "(automatic when the goal has no solution)",
    )
    p_explain.add_argument(
        "--audit-por", action="store_true",
        help="re-verify recorded ample-set prunes and replay with "
             "reduction off",
    )
    p_explain.add_argument(
        "--suite", action="append", metavar="CONFIG",
        help="with --audit-por: profile config to audit (repeatable; "
             "'all' or omitted = every config)",
    )
    p_explain.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="deepest partial derivations to show in --why-not (default 5)",
    )
    p_explain.add_argument(
        "--dot", metavar="FILE",
        help="write the derivation DAG as Graphviz DOT to FILE",
    )
    p_explain.add_argument(
        "--json", metavar="FILE",
        help="write the provenance log as JSON lines to FILE "
             "(round-trips through the span model / OTLP export)",
    )
    p_explain.set_defaults(fn=_cmd_explain)

    p_bench = sub.add_parser(
        "bench", help="wall-clock timings for the profile-suite workloads"
    )
    p_bench.add_argument(
        "action", nargs="?", choices=["trend"],
        help="'trend': diff the latest BENCH_<n>.json snapshot against "
             "the series (default dir benchmarks/trajectory, or --out DIR)",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=5, metavar="N",
        help="runs per config; best and mean are reported (default 5)",
    )
    p_bench.add_argument(
        "--only", action="append", metavar="CONFIG",
        help="restrict to one suite config (repeatable)",
    )
    p_bench.add_argument(
        "--json", metavar="FILE",
        help="also write the timing rows as JSON to FILE",
    )
    p_bench.add_argument(
        "--out", metavar="DIR",
        help="snapshot mode: write the rows to the next free "
        "BENCH_<n>.json under DIR (numbered snapshots accumulate; "
        "CI uploads them as build artifacts)",
    )
    p_bench.add_argument(
        "--check", action="store_true",
        help="with 'trend': exit nonzero when a config's latest best-of "
             "exceeds its series best by more than the threshold",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=1.0, metavar="FRAC",
        help="with 'trend --check': allowed relative slowdown vs the "
             "series best (default 1.0 = 100%%; wall clock is noisy, "
             "the counter gate is the precise one)",
    )
    p_bench.add_argument(
        "--threshold-for", action="append", metavar="CONFIG=FRAC",
        help="with 'trend --check': per-config threshold override "
             "(repeatable)",
    )
    p_bench.set_defaults(fn=_cmd_bench)

    p_profile = sub.add_parser(
        "profile", help="counter baselines, regression diffs, OTLP export"
    )
    profile_sub = p_profile.add_subparsers(dest="profile_command", required=True)

    p_baseline = profile_sub.add_parser(
        "baseline", help="capture counter baselines for the profile suite"
    )
    p_baseline.add_argument(
        "--out", default="benchmarks/baselines", metavar="DIR",
        help="directory for <config>.json baselines (default benchmarks/baselines)",
    )
    p_baseline.add_argument(
        "--only", action="append", metavar="CONFIG",
        help="restrict to one suite config (repeatable)",
    )
    p_baseline.set_defaults(fn=_cmd_profile_baseline)

    p_diff = profile_sub.add_parser(
        "diff", help="re-run the suite and diff counters against baselines"
    )
    p_diff.add_argument(
        "--baseline-dir", default="benchmarks/baselines", metavar="DIR",
        help="directory holding committed baselines",
    )
    p_diff.add_argument(
        "--tolerance", type=float, default=0.0, metavar="FRAC",
        help="default relative tolerance per counter (default 0: exact)",
    )
    p_diff.add_argument(
        "--counter", action="append", metavar="NAME=FRAC",
        help="per-counter tolerance override (repeatable)",
    )
    p_diff.add_argument(
        "--only", action="append", metavar="CONFIG",
        help="restrict to one suite config (repeatable)",
    )
    p_diff.add_argument(
        "--verbose", action="store_true",
        help="show matching values too, not just drift",
    )
    p_diff.set_defaults(fn=_cmd_profile_diff)

    p_hot = profile_sub.add_parser(
        "hotspots",
        help="attributed cost profile: ranked per-rule/per-predicate "
             "hotspots, flamegraph export",
    )
    p_hot.add_argument(
        "--only", action="append", metavar="CONFIG",
        help="restrict to one suite config (repeatable)",
    )
    p_hot.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows per ranking section (default 20)",
    )
    p_hot.add_argument(
        "--json", metavar="FILE",
        help="write per-config and merged attribution as JSON to FILE",
    )
    p_hot.add_argument(
        "--folded", metavar="FILE",
        help="write folded stacks to FILE (feed to flamegraph.pl)",
    )
    p_hot.add_argument(
        "--speedscope", metavar="FILE",
        help="write a speedscope.app profile JSON to FILE",
    )
    p_hot.add_argument(
        "--weight", default="time",
        choices=["time", "unify.attempts", "steps.expansions", "db.delta"],
        help="weight dimension for --folded/--speedscope (default time)",
    )
    p_hot.set_defaults(fn=_cmd_profile_hotspots)

    p_export = profile_sub.add_parser(
        "export-otlp", help="export a run's spans and metrics as OTLP JSON"
    )
    p_export.add_argument(
        "program", nargs="?",
        help="path to a .td program file (run instrumented, then export)",
    )
    p_export.add_argument("--goal", help="goal to execute")
    p_export.add_argument("--db", help="path to an initial-database facts file")
    p_export.add_argument("--max-configs", type=int, default=200_000)
    p_export.add_argument(
        "--from-trace", metavar="FILE",
        help="convert an existing --trace-out JSON-lines file instead of running",
    )
    p_export.add_argument(
        "--out", default="otlp.json", metavar="FILE",
        help="output path (default otlp.json)",
    )
    p_export.set_defaults(fn=_cmd_profile_export_otlp)

    p_store = sub.add_parser(
        "store", help="inspect and manage durable stores (.tdlog files)"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_inspect = store_sub.add_parser(
        "inspect",
        help="print snapshot generation, WAL length, fact counts, "
             "checkpoint linkage, lease holder, and checksum status "
             "for a durable store (read-only; works on damaged files)",
    )
    p_inspect.add_argument("path", help="path to a .tdlog store file")
    p_inspect.add_argument(
        "--json", action="store_true",
        help="emit the raw stats dict as JSON instead of text",
    )
    p_inspect.set_defaults(fn=_cmd_store_inspect)
    p_fsck = store_sub.add_parser(
        "fsck",
        help="verify a durable store's checksums, meta coherence, and "
             "replayability; exit 2 when damage is found",
    )
    p_fsck.add_argument("path", help="path to a .tdlog store file")
    p_fsck.add_argument(
        "--repair", action="store_true",
        help="quarantine a damaged WAL tail into PATH%s and roll the "
             "store back to its last provable state" % ".quarantine",
    )
    p_fsck.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )
    p_fsck.set_defaults(fn=_cmd_store_fsck)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection sweep over the chaos workloads",
    )
    p_chaos.add_argument(
        "--plans", type=int, default=50, metavar="N",
        help="fault plans per workload (default 50)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="base seed; plan i uses seed S+i (default 0)",
    )
    p_chaos.add_argument(
        "--only", action="append", metavar="WORKLOAD",
        help="restrict to one chaos workload (repeatable)",
    )
    p_chaos.add_argument(
        "--no-exhaustion", action="store_true",
        help="generate only window-based faults (no forced budget/deadline)",
    )
    p_chaos.add_argument(
        "--json", metavar="FILE",
        help="also write the full per-plan outcomes as JSON to FILE",
    )
    p_chaos.add_argument(
        "--store-faults", action="store_true",
        help="also run the storage-fault family (crash-point and "
             "byte-corruption fuzzing of the durable store)",
    )
    p_chaos.add_argument(
        "--list", action="store_true", help="list workloads and exit"
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    for command in (
        p_classify, p_solve, p_run, p_graph, p_diag, p_repl, p_analyze,
        p_explain, p_chaos,
    ):
        _add_obs_flags(command)

    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, rendering storage errors (bad --store
    spec, missing/corrupt .tdlog file) as a message + exit 2 rather
    than a traceback."""
    from .store import StoreError

    try:
        return args.fn(args)
    except StoreError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not (getattr(args, "profile", False) or getattr(args, "trace_out", None)):
        return _dispatch(args)

    from .obs import Instrumentation, instrumented, render_report

    inst = Instrumentation.create()
    trace_failed = False
    try:
        with instrumented(inst):
            status = _dispatch(args)
    finally:
        # Report even when the command errors out (e.g. budget exceeded):
        # that is exactly when the counters explain what happened.
        if args.trace_out:
            try:
                inst.tracer.write_jsonl(
                    args.trace_out, append=getattr(args, "trace_append", False)
                )
                print("trace written to %s" % args.trace_out, file=sys.stderr)
            except OSError as exc:
                trace_failed = True
                print(
                    "error: cannot write trace to %s: %s" % (args.trace_out, exc),
                    file=sys.stderr,
                )
        if args.profile:
            print(render_report(inst))
    return 1 if trace_failed else status


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    sys.exit(main())
