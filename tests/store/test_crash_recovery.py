"""Kill-and-reopen crash recovery, driven by the faults layer.

A :class:`StoreCrash` window in a :class:`FaultPlan` kills the store at
a chosen WAL append -- after the row is durable, before the in-memory
mirror advances, the torn moment of a real power cut.  Recovery is
reopening the file: the WAL tail replays into the last snapshot and any
unreleased savepoint is gone.  The oracle throughout is a
:class:`MemoryStore` fed the prefix of updates that became durable.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    MemoryStore,
    SqliteStore,
    StoreCrashed,
    parse_atom,
    parse_database,
    parse_program,
)
from repro.faults import FaultPlan, StoreCrash, Window


def crash_at(append):
    """A plan whose store crashes exactly at WAL append *append* (1-based)."""
    return FaultPlan(seed=0, store_crashes=(StoreCrash(Window(append, append + 1)),))


def facts(n, pred="p"):
    return [parse_atom("%s(%d)" % (pred, i)) for i in range(n)]


class TestPlanWiring:
    def test_store_crash_makes_plan_persistent(self):
        plan = crash_at(3)
        assert not plan.transient

    def test_describe_mentions_store_crash(self):
        assert "store crash" in crash_at(3).describe()

    def test_empty_plan_unchanged(self):
        plan = FaultPlan(seed=0)
        assert plan.store_crashes == ()
        assert plan.transient


class TestKillMidAppend:
    def test_durable_prefix_survives_reopen(self, tmp_path):
        path = str(tmp_path / "state.tdlog")
        store = SqliteStore(path, faults=crash_at(3))
        oracle = MemoryStore(Database())
        with pytest.raises(StoreCrashed):
            for fact in facts(10):
                store.insert(fact)
                oracle.insert(fact)
        # The crash fired on the third append: that row is on disk (the
        # torn moment is post-fsync), but the mirror never advanced.
        oracle.insert(facts(10)[2])
        assert len(store._db) == 2  # mirror is torn...
        with SqliteStore(path) as recovered:
            assert recovered.database() == oracle.database()  # ...disk is not

    def test_crashed_store_refuses_everything(self, tmp_path):
        path = str(tmp_path / "state.tdlog")
        store = SqliteStore(path, faults=crash_at(1))
        with pytest.raises(StoreCrashed):
            store.insert(parse_atom("p(1)"))
        for op in (
            lambda: store.insert(parse_atom("p(2)")),
            lambda: store.delete(parse_atom("p(1)")),
            lambda: store.savepoint(),
            lambda: store.database(),
            lambda: store.checkpoint(),
            lambda: store.stats(),
        ):
            with pytest.raises(StoreCrashed):
                op()

    def test_crash_inside_savepoint_loses_the_scope(self, tmp_path):
        path = str(tmp_path / "state.tdlog")
        base = parse_database("keep(1). keep(2).")
        with SqliteStore(path) as store:
            store.insert_all(base)
        store = SqliteStore(path, faults=crash_at(5))
        store.savepoint()
        with pytest.raises(StoreCrashed):
            for fact in facts(10, "tmp"):
                store.insert(fact)
        # Appends 3 and 4 happened inside the never-released savepoint;
        # the crash voids the whole scope even though the rows were
        # written: savepoint-scoped WAL rows only commit on RELEASE.
        with SqliteStore(path) as recovered:
            assert recovered.database() == base

    def test_crash_then_reopen_then_continue(self, tmp_path):
        path = str(tmp_path / "state.tdlog")
        store = SqliteStore(path, faults=crash_at(2))
        with pytest.raises(StoreCrashed):
            store.insert_all(facts(4))
        with SqliteStore(path) as recovered:
            recovered.insert_all(facts(4))
            assert set(recovered) == set(facts(4))
        with SqliteStore(path) as again:
            assert set(again) == set(facts(4))


class TestEngineCommitAtomicity:
    """A crash while committing a winning trace must not leave a
    partial execution visible after recovery."""

    PROGRAM = """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
    """

    def test_crash_mid_commit_rolls_back_on_reopen(self, tmp_path):
        path = str(tmp_path / "bank.tdlog")
        program = parse_program(self.PROGRAM)
        db = parse_database("balance(a, 100). balance(b, 10).")
        with SqliteStore(path) as store:
            store.insert_all(db)
        # The append tick is per-instance: the reopened store's third
        # append lands mid-way through the winning trace's replay.
        store = SqliteStore(path, faults=crash_at(3))
        with pytest.raises(StoreCrashed):
            Interpreter(program, store=store).simulate(
                "transfer(a, b, 30)", seed=0
            )
        with SqliteStore(path) as recovered:
            assert recovered.database() == db  # untouched: all-or-nothing

    def test_commit_without_crash_is_durable(self, tmp_path):
        path = str(tmp_path / "bank.tdlog")
        program = parse_program(self.PROGRAM)
        db = parse_database("balance(a, 100). balance(b, 10).")
        with SqliteStore(path) as store:
            store.insert_all(db)
            execution = Interpreter(program, store=store).simulate(
                "transfer(a, b, 30)", seed=0
            )
            assert execution is not None
        with SqliteStore(path) as recovered:
            assert recovered.database() == execution.database
