"""AND/OR graphs: the alternation core of the EXPTIME result.

Theorem 4.5's lower bound comes from sequential TD simulating
*alternating* PSPACE machines: recursive subroutines provide universal
(AND) branching -- a rule body ``solve(a) * solve(b)`` succeeds only if
*both* subgoals do -- while choice among rules provides existential (OR)
branching.  AND/OR graph solvability is the combinatorial skeleton of
alternation, so the benchmark uses it: solve a graph natively (the
fixpoint solver below) and via its sequential-TD encoding, and check
they agree.

Here graphs are *grounded* game graphs: a node is solvable if it is an
axiom; an OR node is solvable if some successor is; an AND node if all
of its (finitely many) successors are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from ..core.database import Database
from ..core.formulas import Builtin, BinOp, Call, Formula, Test, TRUTH, seq
from ..core.program import Program, Rule
from ..core.terms import Atom, Constant, Variable, atom

__all__ = ["AndOrGraph", "solve_andor", "andor_to_td"]


@dataclass
class AndOrGraph:
    """Nodes with a type (``"and"`` / ``"or"``), successor lists, and a
    set of axiom leaves (solvable by definition)."""

    kind: Dict[str, str]
    successors: Dict[str, Tuple[str, ...]]
    axioms: FrozenSet[str]

    def __post_init__(self):
        for node, k in self.kind.items():
            if k not in ("and", "or"):
                raise ValueError("node %s has kind %r (want and/or)" % (node, k))
        for node, succs in self.successors.items():
            if node not in self.kind and node not in self.axioms:
                raise ValueError("successors given for unknown node %s" % node)
            for s in succs:
                if s not in self.kind and s not in self.axioms:
                    raise ValueError("edge %s -> unknown node %s" % (node, s))

    def nodes(self) -> Set[str]:
        return set(self.kind) | set(self.axioms)


def solve_andor(graph: AndOrGraph) -> Set[str]:
    """The set of solvable nodes (least fixpoint, the native oracle)."""
    solvable: Set[str] = set(graph.axioms)
    changed = True
    while changed:
        changed = False
        for node, k in graph.kind.items():
            if node in solvable:
                continue
            succs = graph.successors.get(node, ())
            if not succs:
                continue  # an inner node with no successors is unsolvable
            if k == "or":
                ok = any(s in solvable for s in succs)
            else:
                ok = all(s in solvable for s in succs)
            if ok:
                solvable.add(node)
                changed = True
    return solvable


def andor_to_td(graph: AndOrGraph) -> Tuple[Program, Database]:
    """Encode solvability into *sequential, query-only* TD.

    The graph lives in the database (``axiom/1``, ``ornode/1``,
    ``andnode/1``, ``child/3`` with 0-based child indexes, ``nkids/2``);
    the rules below are fixed, so asking ``solve(n)`` is a pure data
    complexity question for the tabled sequential engine.

    Rules::

        solve(X) <- axiom(X).
        solve(X) <- ornode(X) * child(X, I, Y) * solve(Y).
        solve(X) <- andnode(X) * nkids(X, N) * N > 0 * all_kids(X, 0, N).
        all_kids(X, N, N).
        all_kids(X, I, N) <- I < N * child(X, I, Y) * solve(Y) *
                             I2 is I + 1 * all_kids(X, I2, N).
    """
    x, y, i, i2, n = (Variable(v) for v in ("X", "Y", "I", "I2", "N"))
    rules = [
        Rule(Atom("solve", (x,)), Test(Atom("axiom", (x,)))),
        Rule(
            Atom("solve", (x,)),
            seq(
                Test(Atom("ornode", (x,))),
                Test(Atom("child", (x, i, y))),
                Call(Atom("solve", (y,))),
            ),
        ),
        Rule(
            Atom("solve", (x,)),
            seq(
                Test(Atom("andnode", (x,))),
                Test(Atom("nkids", (x, n))),
                Builtin(">", n, Constant(0)),
                Call(Atom("all_kids", (x, Constant(0), n))),
            ),
        ),
        Rule(Atom("all_kids", (x, n, n)), TRUTH),
        Rule(
            Atom("all_kids", (x, i, n)),
            seq(
                Builtin("<", i, n),
                Test(Atom("child", (x, i, y))),
                Call(Atom("solve", (y,))),
                Builtin("is", i2, BinOp("+", i, Constant(1))),
                Call(Atom("all_kids", (x, i2, n))),
            ),
        ),
    ]
    program = Program(rules)

    facts: List[Atom] = [atom("axiom", a) for a in sorted(graph.axioms)]
    for node, k in sorted(graph.kind.items()):
        facts.append(atom("ornode" if k == "or" else "andnode", node))
        succs = graph.successors.get(node, ())
        facts.append(atom("nkids", node, len(succs)))
        for idx, succ in enumerate(succs):
            facts.append(atom("child", node, idx, succ))
    return program, Database(facts)
