"""Tests for Datalog rules, safety, and stratification."""

import pytest

from repro.core.terms import Atom, Variable, atom
from repro.datalog import DatalogProgram, DatalogRule, Literal, StratificationError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def rule(head, *body):
    return DatalogRule(head, tuple(body))


class TestSafety:
    def test_safe_rule_accepted(self):
        DatalogProgram([rule(Atom("p", (X,)), Literal(Atom("e", (X, Y))))])

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError):
            DatalogProgram([rule(Atom("p", (X, Z)), Literal(Atom("e", (X, Y))))])

    def test_unsafe_negation_rejected(self):
        with pytest.raises(ValueError):
            DatalogProgram(
                [rule(Atom("p", (X,)), Literal(Atom("e", (X,))),
                      Literal(Atom("q", (Z,)), positive=False))]
            )

    def test_ground_fact_rule(self):
        DatalogProgram([rule(atom("p", "a"))])


class TestStratification:
    def test_single_stratum_positive(self):
        prog = DatalogProgram([
            rule(Atom("t", (X, Y)), Literal(Atom("e", (X, Y)))),
            rule(Atom("t", (X, Y)), Literal(Atom("e", (X, Z))), Literal(Atom("t", (Z, Y)))),
        ])
        assert len(prog.strata) == 1

    def test_negation_forces_two_strata(self):
        prog = DatalogProgram([
            rule(Atom("reach", (X,)), Literal(Atom("src", (X,)))),
            rule(Atom("reach", (Y,)), Literal(Atom("reach", (X,))), Literal(Atom("e", (X, Y)))),
            rule(Atom("unreach", (X,)), Literal(Atom("node", (X,))),
                 Literal(Atom("reach", (X,)), positive=False)),
        ])
        assert len(prog.strata) == 2
        assert ("reach", 1) in prog.strata[0]
        assert ("unreach", 1) in prog.strata[1]

    def test_negation_through_recursion_rejected(self):
        with pytest.raises(StratificationError):
            DatalogProgram([
                rule(Atom("p", (X,)), Literal(Atom("n", (X,))),
                     Literal(Atom("q", (X,)), positive=False)),
                rule(Atom("q", (X,)), Literal(Atom("n", (X,))),
                     Literal(Atom("p", (X,)), positive=False)),
            ])

    def test_idb_edb_partition(self):
        prog = DatalogProgram([rule(Atom("p", (X,)), Literal(Atom("e", (X,))))])
        assert prog.idb == {("p", 1)}

    def test_str(self):
        prog = DatalogProgram([
            rule(Atom("p", (X,)), Literal(Atom("e", (X,))),
                 Literal(Atom("b", (X,)), positive=False)),
        ])
        assert str(prog) == "p(X) :- e(X), not b(X)."
