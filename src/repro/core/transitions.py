"""Small-step operational semantics of Transaction Datalog.

A *configuration* pairs a residual process (a formula; ``true`` means
finished) with a database state.  The transition relation below is the
procedural interpretation from the paper:

* an elementary operation (tuple test, ``ins``, ``del``, absence test,
  builtin) executes atomically, possibly binding variables;
* a call to a derived predicate unfolds, nondeterministically, into the
  body of any rule whose head unifies with it;
* ``a * b`` (sequential composition) steps in ``a`` until it finishes;
* ``a | b`` (concurrent composition) steps in either side -- the
  interleaving semantics through which concurrent TD processes
  communicate via the database;
* ``iso(a)`` contributes a *single* transition for each complete
  execution of ``a`` from the current state: isolation means no sibling
  steps are interleaved within ``a``.

Bindings made by a step apply to the *entire* residual process, which is
how a value read by one concurrent branch becomes visible to another
branch sharing the variable.

The module also provides configuration canonicalization (variables are
renamed apart in traversal order, and concurrent branches are optionally
sorted) so searches can memoize visited configurations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .database import Database
from .errors import SafetyError
from .formulas import (
    BinOp,
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    TRUTH,
    Truth,
    apply_subst,
    conc,
    seq,
    walk_formulas,
)
from .program import Program
from .terms import Atom, Term, Variable
from .unify import Substitution, apply_atom, unify_atoms

__all__ = [
    "Action",
    "Step",
    "Configuration",
    "is_final",
    "enabled_steps",
    "canonical_key",
    "update_footprint",
    "dead_config",
]


@dataclass(frozen=True)
class Action:
    """A record of one executed elementary step, for execution traces.

    ``kind`` is one of ``test ins del neg builtin call iso table``.  For
    ``iso`` the nested trace of the isolated sub-execution is attached;
    ``table`` is a call served whole from the interpreter's answer table
    (see :mod:`repro.core.tabling`) and carries the cached execution's
    trace the same way, so replay still reproduces the final state.
    """

    kind: str
    atom: Optional[Atom] = None
    detail: str = ""
    subtrace: Tuple["Action", ...] = ()

    def __str__(self) -> str:
        if self.kind == "iso":
            inner = "; ".join(str(a) for a in self.subtrace)
            return "iso[%s]" % inner
        if self.kind == "table":
            inner = "; ".join(str(a) for a in self.subtrace)
            return "table %s[%s]" % (self.atom, inner)
        if self.kind == "builtin":
            return self.detail
        if self.kind in ("ins", "del"):
            return "%s.%s" % (self.kind, self.atom)
        if self.kind == "neg":
            return "not %s" % (self.atom,)
        if self.kind == "call":
            return "call %s" % (self.atom,)
        return str(self.atom)


@dataclass(frozen=True)
class Step:
    """One enabled transition out of a configuration.

    ``residual`` is the full remaining process; ``local`` is just the
    subformula that replaced the stepped redex (``true`` for elementary
    operations, the instantiated rule body for a call).  Schedulers use
    ``local`` to notice that a rule choice left its own branch blocked --
    e.g. an iteration's stop rule unfolded before its flag exists -- and
    defer that choice behind immediately runnable ones.
    """

    action: Action
    subst: Substitution
    residual: Formula  # the full residual process, *before* applying subst
    database: Database
    local: Formula = TRUTH


@dataclass(frozen=True)
class Configuration:
    """A process/database pair, plus the answer terms accumulated so far
    for the goal's free variables."""

    process: Formula
    database: Database
    answers: Tuple[Term, ...] = ()



def _display_atom(a: Atom) -> Atom:
    """Normalize an atom for trace display: unbound variables keep their
    source name but lose the per-unfold freshness suffix, so traces are
    reproducible across runs and engines."""
    if a.is_ground():
        return a
    args = tuple(
        Variable(t.name.split("#")[0]) if isinstance(t, Variable) else t
        for t in a.args
    )
    return Atom(a.pred, args)


def is_final(proc: Formula) -> bool:
    """A configuration is final when its process has reduced to ``true``."""
    return isinstance(proc, Truth)


#: Type of the callback used to execute isolated sub-processes: given a
#: body, a database, and an optional attempt-budget cap (``Isol.budget``)
#: it yields (answer substitution, final database, trace) triples for
#: the body's complete executions.  A capped attempt that exhausts its
#: budget yields nothing further (failure, hence rollback) instead of
#: raising.
IsolRunner = Callable[
    [Formula, Database, Optional[int]],
    Iterator[Tuple[Substitution, Database, Tuple[Action, ...]]],
]


def _never_steps(proc: Formula) -> bool:
    """True if ``proc`` provably yields no step *in any database state*.

    This is the freeness summary behind the indexed redex enumeration:
    non-ground updates and under-instantiated builtins are blocked until
    a sibling binds their variables, and that blockedness is decidable
    from the node alone.  The verdict is cached on the (immutable) node,
    so a deep concurrent process pays for each blocked branch once, not
    once per enumeration.  The summary is *exact* for the redexes it
    skips -- skipping never changes the multiset of steps enumerated
    (see the differential test in ``tests/core/test_transitions_diff.py``).
    """
    cached = getattr(proc, "_never_steps", None)
    if cached is not None:
        return cached
    if isinstance(proc, (Ins, Del)):
        verdict = not proc.atom.is_ground()
    elif isinstance(proc, Builtin):
        if proc.op == "is":
            # ``X is expr`` fires once the right side is ground; a
            # non-term left side always raises at evaluation time.
            verdict = isinstance(proc.left, BinOp) or _expr_has_vars(proc.right)
        else:
            verdict = _expr_has_vars(proc.left) or _expr_has_vars(proc.right)
    elif isinstance(proc, Seq):
        verdict = _never_steps(proc.parts[0]) if proc.parts else True
    elif isinstance(proc, Conc):
        verdict = all(_never_steps(p) for p in proc.parts)
    elif isinstance(proc, Isol):
        # The nested search yields one step per complete execution of
        # the body; a body that cannot take a first step (and is not
        # already ``true``) has none.
        verdict = not isinstance(proc.body, Truth) and _never_steps(proc.body)
    elif isinstance(proc, Truth):
        return True  # no transitions out of the empty process
    else:
        verdict = False  # Test / Neg / Call: depends on db or program
    object.__setattr__(proc, "_never_steps", verdict)
    return verdict


def _expr_has_vars(expr) -> bool:
    if isinstance(expr, Variable):
        return True
    if hasattr(expr, "op"):
        return _expr_has_vars(expr.left) or _expr_has_vars(expr.right)
    return False


def enabled_steps(
    program: Program,
    proc: Formula,
    db: Database,
    isol_runner: IsolRunner,
    *,
    optimized: bool = True,
    reducer=None,
    metrics=None,
    tracer=None,
    prov=None,
    prov_parent=None,
) -> Iterator[Step]:
    """Yield every transition enabled in ``(proc, db)``.

    The ``residual`` of each step is the whole remaining process with the
    stepped redex replaced; the step's substitution has *not* yet been
    applied (callers apply it once, to the whole tree).

    ``optimized=False`` selects the naive reference enumeration (scan
    every rule, descend into every branch); the default indexed path
    skips provably blocked branches and dispatches calls through the
    program's per-signature rule index.  Both enumerate the same steps
    -- the naive path exists as the oracle for the differential test.

    ``reducer`` (a :class:`repro.core.por.PartialOrderReducer`) selects
    the partial-order-reduced enumeration instead: a sound *subset* of
    the full step set that preserves every reachable (answers, final
    database) pair.  ``metrics`` (a :class:`repro.obs.metrics.Metrics`)
    lets the reducer report ``por.*`` counters; ``tracer`` additionally
    receives one ``por.pruned`` event per deferring ample decision and
    ``prov``/``prov_parent`` (a provenance recorder plus the node of
    the configuration under expansion) the full ample-set witness.
    All three are ignored on the unreduced paths.
    """
    if reducer is not None:
        yield from reducer.steps(
            proc, db, isol_runner, metrics, tracer, prov, prov_parent
        )
    elif optimized:
        yield from _steps(program, proc, db, isol_runner)
    else:
        yield from _steps_naive(program, proc, db, isol_runner)


def _steps(
    program: Program, proc: Formula, db: Database, isol_runner: IsolRunner
) -> Iterator[Step]:
    if isinstance(proc, Truth) or _never_steps(proc):
        return
    if isinstance(proc, Test):
        for theta in db.match(proc.atom):
            yield Step(
                Action("test", _display_atom(apply_atom(proc.atom, theta))),
                theta,
                Truth(),
                db,
            )
        return
    if isinstance(proc, Neg):
        if not db.holds(proc.atom):
            yield Step(Action("neg", _display_atom(proc.atom)), {}, Truth(), db)
        return
    if isinstance(proc, Ins):
        if not proc.atom.is_ground():
            # Not an error: a sibling branch sharing the variable may
            # still bind it (cross-branch dataflow); until then the
            # update is simply not enabled.  Genuinely unsafe programs
            # are flagged by the static analysis instead.
            return
        yield Step(Action("ins", proc.atom), {}, Truth(), db.insert(proc.atom))
        return
    if isinstance(proc, Del):
        if not proc.atom.is_ground():
            return  # blocked until a sibling binds the variables
        yield Step(Action("del", proc.atom), {}, Truth(), db.delete(proc.atom))
        return
    if isinstance(proc, Builtin):
        try:
            theta = proc.evaluate({})
        except ValueError:
            # Unbound arguments: blocked until a sibling binds them
            # (same convention as unbound updates).
            return
        if theta is not None:
            yield Step(Action("builtin", detail=str(proc)), theta, Truth(), db)
        return
    if isinstance(proc, Call):
        sig = proc.atom.signature
        if not program.is_derived(sig):
            raise SafetyError(
                "call to undefined predicate %s/%d" % sig
            )
        # Indexed dispatch: the program memoizes which rule heads match
        # this call shape, so repeated unfoldings skip the unification
        # scan over non-matching rules entirely.
        for rule, theta in program.match_rules(proc.atom):
            yield Step(
                Action("call", _display_atom(apply_atom(proc.atom, theta))),
                theta,
                rule.body,
                db,
                rule.body,
            )
        return
    if isinstance(proc, Seq):
        head, rest = proc.parts[0], proc.parts[1:]
        for step in _steps(program, head, db, isol_runner):
            yield Step(
                step.action,
                step.subst,
                seq(step.residual, *rest),
                step.database,
                step.local,
            )
        return
    if isinstance(proc, Conc):
        for i, branch in enumerate(proc.parts):
            if _never_steps(branch):
                continue  # provably blocked: a sibling must bind it first
            others_before = proc.parts[:i]
            others_after = proc.parts[i + 1 :]
            for step in _steps(program, branch, db, isol_runner):
                yield Step(
                    step.action,
                    step.subst,
                    conc(*others_before, step.residual, *others_after),
                    step.database,
                    step.local,
                )
        return
    if isinstance(proc, Isol):
        for theta, final_db, trace in isol_runner(proc.body, db, proc.budget):
            yield Step(
                Action("iso", subtrace=tuple(trace)),
                theta,
                Truth(),
                final_db,
            )
        return
    raise TypeError("cannot step formula of type %r" % type(proc).__name__)


def _steps_naive(
    program: Program, proc: Formula, db: Database, isol_runner: IsolRunner
) -> Iterator[Step]:
    """Reference enumeration: no blocked-branch skipping, calls resolved
    by scanning every freshly-renamed rule.  Kept as the oracle for the
    optimized path's differential test."""
    if isinstance(proc, Truth):
        return
    if isinstance(proc, Test):
        for theta in db.match(proc.atom):
            yield Step(
                Action("test", _display_atom(apply_atom(proc.atom, theta))),
                theta,
                Truth(),
                db,
            )
        return
    if isinstance(proc, Neg):
        if not db.holds(proc.atom):
            yield Step(Action("neg", _display_atom(proc.atom)), {}, Truth(), db)
        return
    if isinstance(proc, Ins):
        if not proc.atom.is_ground():
            return
        yield Step(Action("ins", proc.atom), {}, Truth(), db.insert(proc.atom))
        return
    if isinstance(proc, Del):
        if not proc.atom.is_ground():
            return
        yield Step(Action("del", proc.atom), {}, Truth(), db.delete(proc.atom))
        return
    if isinstance(proc, Builtin):
        try:
            theta = proc.evaluate({})
        except ValueError:
            return
        if theta is not None:
            yield Step(Action("builtin", detail=str(proc)), theta, Truth(), db)
        return
    if isinstance(proc, Isol):
        for theta, final_db, trace in isol_runner(proc.body, db, proc.budget):
            yield Step(
                Action("iso", subtrace=tuple(trace)),
                theta,
                Truth(),
                final_db,
            )
        return
    if isinstance(proc, Call):
        sig = proc.atom.signature
        if not program.is_derived(sig):
            raise SafetyError(
                "call to undefined predicate %s/%d" % sig
            )
        for rule in program.fresh_rules_for(sig):
            theta = unify_atoms(rule.head, proc.atom)
            if theta is not None:
                yield Step(
                    Action("call", _display_atom(apply_atom(proc.atom, theta))),
                    theta,
                    rule.body,
                    db,
                    rule.body,
                )
        return
    if isinstance(proc, Seq):
        head, rest = proc.parts[0], proc.parts[1:]
        for step in _steps_naive(program, head, db, isol_runner):
            yield Step(
                step.action,
                step.subst,
                seq(step.residual, *rest),
                step.database,
                step.local,
            )
        return
    if isinstance(proc, Conc):
        for i, branch in enumerate(proc.parts):
            others_before = proc.parts[:i]
            others_after = proc.parts[i + 1 :]
            for step in _steps_naive(program, branch, db, isol_runner):
                yield Step(
                    step.action,
                    step.subst,
                    conc(*others_before, step.residual, *others_after),
                    step.database,
                    step.local,
                )
        return
    raise TypeError("cannot step formula of type %r" % type(proc).__name__)


def apply_step(step: Step) -> Formula:
    """The residual process after applying the step's bindings."""
    return apply_subst(step.residual, step.subst)


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------


def replay_actions(actions, db: Database) -> Database:
    """Re-apply a trace's update actions to *db*.

    Execution traces are certificates: replaying the inserts and deletes
    of a successful execution (including those inside ``iso`` subtraces)
    over the initial state must reproduce the execution's final state.
    Tests use this to validate every engine's traces; tools can use it
    to audit a logged run against a claimed outcome.
    """
    for action in actions:
        if action.kind == "ins":
            db = db.insert(action.atom)
        elif action.kind == "del":
            db = db.delete(action.atom)
        elif action.kind in ("iso", "table"):
            db = replay_actions(action.subtrace, db)
        # tests / negs / builtins / calls do not change the state
    return db


# ---------------------------------------------------------------------------
# Dead-configuration pruning
# ---------------------------------------------------------------------------


def update_footprint(program: Program, *goals: Formula):
    """Predicates the program (plus the given goals) can ever insert or
    delete.  Used by :func:`dead_config`: tests on predicates outside the
    insert footprint can never *become* true, absence tests on predicates
    outside the delete footprint can never become true either.

    The rulebase's contribution is cached on the program (rulebases are
    immutable), so nested isolation searches -- which recompute the
    footprint for each sub-goal -- only walk the sub-goal itself.
    """
    insertable, deletable = program.update_footprint()
    if not goals:
        return insertable, deletable
    ins_extra = set(insertable)
    del_extra = set(deletable)
    for body in goals:
        for sub in walk_formulas(body):
            if isinstance(sub, Ins):
                ins_extra.add(sub.atom.pred)
            elif isinstance(sub, Del):
                del_extra.add(sub.atom.pred)
    return frozenset(ins_extra), frozenset(del_extra)


def dead_config(
    proc: Formula,
    db: Database,
    insertable: frozenset,
    deletable: frozenset,
) -> bool:
    """True if *proc* can provably never complete from *db*.

    The check looks at each concurrent branch's *frontier* (the next
    formula it must execute).  A branch is permanently stuck -- and the
    whole configuration dead -- when its frontier is

    * a tuple test with no matching fact, on a predicate nothing can
      insert (waiting for a fact that can never arrive);
    * an absence test that currently fails, on a predicate nothing can
      delete; or
    * a failing builtin (builtins are state-independent).

    This prunes exponentially many doomed interleavings: without it, a
    branch that grabbed the wrong resource keeps every *other* branch
    exploring before the failure is discovered.  Pruning is sound
    because frontier failure of such a branch is invariant under any
    sibling activity.
    """
    if isinstance(proc, Truth):
        return False
    if isinstance(proc, Test):
        return proc.atom.pred not in insertable and not db.holds(proc.atom)
    if isinstance(proc, Neg):
        return proc.atom.pred not in deletable and db.holds(proc.atom)
    if isinstance(proc, Builtin):
        try:
            return proc.evaluate({}) is None
        except ValueError:
            # Unbound variables: a sibling may still bind them.
            return False
    if isinstance(proc, Seq):
        return dead_config(proc.parts[0], db, insertable, deletable)
    if isinstance(proc, Conc):
        return any(dead_config(p, db, insertable, deletable) for p in proc.parts)
    if isinstance(proc, Isol):
        # Every execution of the isolated body starts with the body's
        # own frontier, so a dead body frontier kills the iso too.
        return dead_config(proc.body, db, insertable, deletable)
    # Ins/Del/Call frontiers can always act (or need deeper search).
    return False


def frontier_blocked(proc: Formula, db: Database) -> bool:
    """True if *proc* currently has no enabled elementary frontier.

    Weaker than :func:`dead_config`: a blocked configuration may be
    unblocked by facts a sibling inserts later, so it cannot be pruned --
    but a scheduler should *defer* it.  The depth-first simulator orders
    successor configurations so that blocked ones are explored last;
    without this, a rule choice whose guard is not yet satisfied (e.g.
    the stop rule of an iteration testing a flag the loop body has not
    emitted yet) poisons the search, which then enumerates every
    interleaving of the sibling processes before backtracking out.
    """
    if isinstance(proc, Truth):
        return False
    if isinstance(proc, Test):
        return not db.holds(proc.atom)
    if isinstance(proc, Neg):
        return db.holds(proc.atom)
    if isinstance(proc, Builtin):
        try:
            return proc.evaluate({}) is None
        except ValueError:
            return True  # unbound: cannot fire until a sibling binds it
    if isinstance(proc, (Ins, Del)):
        return not proc.atom.is_ground()
    if isinstance(proc, Seq):
        return frontier_blocked(proc.parts[0], db)
    if isinstance(proc, Conc):
        return all(frontier_blocked(p, db) for p in proc.parts)
    if isinstance(proc, Isol):
        # An isolated body that cannot currently run should be deferred
        # (e.g. a stop rule's atomic emptiness check taken while work
        # remains -- committing to it early abandons the only consumer
        # of that work and poisons the search).  For pure-read bodies we
        # can decide enabledness exactly and cheaply; otherwise fall
        # back to the body's frontier.
        verdict = _pure_read_satisfiable(proc.body, db)
        if verdict is not None:
            return not verdict
        return frontier_blocked(proc.body, db)
    return False


def _pure_read_satisfiable(body: Formula, db: Database) -> Optional[bool]:
    """For bodies built only from tests / absence tests / builtins and
    sequential composition: is the body satisfiable in *db* right now?
    Returns None when the body contains updates, calls, or concurrency
    (not decidable by inspection)."""

    def pure(f: Formula) -> bool:
        if isinstance(f, (Test, Neg, Builtin, Truth)):
            return True
        if isinstance(f, Seq):
            return all(pure(p) for p in f.parts)
        return False

    if not pure(body):
        return None

    def sat(f: Formula, theta) -> bool:
        if isinstance(f, Truth):
            return True
        if isinstance(f, Test):
            return any(True for _ in db.match(f.atom, theta))
        if isinstance(f, Neg):
            return not db.holds(f.atom, theta)
        if isinstance(f, Builtin):
            try:
                return f.evaluate(theta) is not None
            except ValueError:
                return False
        if isinstance(f, Seq):
            return _sat_seq(f.parts, 0, theta)
        raise TypeError  # pragma: no cover - `pure` excludes the rest

    def _sat_seq(parts, idx, theta) -> bool:
        if idx == len(parts):
            return True
        part = parts[idx]
        if isinstance(part, Test):
            return any(
                _sat_seq(parts, idx + 1, t2) for t2 in db.match(part.atom, theta)
            )
        if isinstance(part, Builtin):
            try:
                t2 = part.evaluate(theta)
            except ValueError:
                return False
            return t2 is not None and _sat_seq(parts, idx + 1, t2)
        return sat(part, theta) and _sat_seq(parts, idx + 1, theta)

    return sat(body, {})


# ---------------------------------------------------------------------------
# Canonicalization for memoization
# ---------------------------------------------------------------------------
#
# The canonical key of a node is computed *compositionally* and cached on
# the node (formula trees are immutable, so nothing ever invalidates).
# Each node stores a pair
#
#     (shape, varseq)
#
# where ``shape`` is a hashable structure in which this node's variables
# appear as local first-occurrence indices ``('v', i)``, and ``varseq``
# is the tuple of distinct variables in that numbering order.  A
# composite node embeds each child as ``(child_shape, perm)`` with
# ``perm`` mapping the child's local indices to the parent's -- so
# cross-branch variable sharing is captured without renumbering the
# child's whole subtree.  Because a step's residual shares all untouched
# subtrees with its parent process (see ``apply_subst``), re-keying a
# successor configuration only does work proportional to the changed
# spine, not the whole tree.
#
# ``shape`` alone is the public key: ``varseq`` is first-occurrence
# ordered by construction, so the key is invariant under variable
# renaming, and composing the perms bottom-up reproduces exactly the
# global first-occurrence numbering the previous from-scratch algorithm
# produced.

#: Bound on how many concurrent-branch orderings are tried when several
#: branches have identical shapes.  Tied groups are tiny in practice
#: (the bound allows e.g. one group of 4 plus a pair); past it we keep
#: the stable order, which is sound and only costs memo sharing.
_MAX_TIE_CANDIDATES = 64


def _ckey_pair(f: Formula, sort_conc: bool):
    cache = getattr(f, "_ckey_cache", None)
    if cache is None:
        cache = {}
        object.__setattr__(f, "_ckey_cache", cache)
    pair = cache.get(sort_conc)
    if pair is None:
        pair = _ckey_build(f, sort_conc)
        cache[sort_conc] = pair
    return pair


def _ckey_build(f: Formula, sort_conc: bool):
    if isinstance(f, Truth):
        return (("T",), ())
    if isinstance(f, (Test, Neg, Ins, Del, Call)):
        local: Dict[Variable, int] = {}
        keys = []
        for t in f.atom.args:
            if isinstance(t, Variable):
                idx = local.get(t)
                if idx is None:
                    idx = len(local)
                    local[t] = idx
                keys.append(("v", idx))
            else:
                keys.append(("c", type(t.value).__name__, str(t.value)))
        shape = (type(f).__name__, f.atom.pred, tuple(keys))
        return (shape, tuple(local))
    if isinstance(f, Builtin):
        local = {}
        shape = (
            "B",
            f.op,
            _ckey_expr(f.left, local),
            _ckey_expr(f.right, local),
        )
        return (shape, tuple(local))
    if isinstance(f, Isol):
        # A single child: its local numbering *is* the parent's.  The
        # attempt budget is part of the shape: a capped iso and an
        # uncapped one are different processes (one can fail where the
        # other diverges).
        cshape, cvars = _ckey_pair(f.body, sort_conc)
        return (("I", f.budget, cshape), cvars)
    if isinstance(f, Seq):
        return _ckey_assemble(
            "S", [_ckey_pair(p, sort_conc) for p in f.parts]
        )
    if isinstance(f, Conc):
        pairs = [_ckey_pair(p, sort_conc) for p in f.parts]
        if not sort_conc:
            return _ckey_assemble("C", pairs)
        return _ckey_conc_sorted(pairs)
    raise TypeError("cannot canonicalize %r" % type(f).__name__)


def _ckey_expr(expr, local: Dict[Variable, int]):
    if isinstance(expr, Variable):
        idx = local.get(expr)
        if idx is None:
            idx = len(local)
            local[expr] = idx
        return ("v", idx)
    if hasattr(expr, "op"):
        return (
            "e",
            expr.op,
            _ckey_expr(expr.left, local),
            _ckey_expr(expr.right, local),
        )
    return ("c", type(expr.value).__name__, str(expr.value))


def _ckey_assemble(tag: str, pairs):
    """Combine ordered child (shape, varseq) pairs into the parent pair,
    renumbering variables by first occurrence across the children."""
    order: Dict[Variable, int] = {}
    embedded = []
    for cshape, cvars in pairs:
        perm = []
        for v in cvars:
            idx = order.get(v)
            if idx is None:
                idx = len(order)
                order[v] = idx
            perm.append(idx)
        embedded.append((cshape, tuple(perm)))
    return ((tag,) + tuple(embedded), tuple(order))


def _ckey_conc_sorted(pairs):
    """Canonical (shape, varseq) for a concurrent node, invariant under
    branch reordering.

    Branches are sorted by their perm-free shapes; groups of branches
    with *identical* shapes can still differ in how their variables are
    shared with the rest of the process, so within the tie groups every
    ordering (bounded by :data:`_MAX_TIE_CANDIDATES`) is tried and the
    lexicographically least assembled key wins.  The candidate set
    depends only on the multiset of branches, which is what makes the
    key genuinely commutative -- the previous implementation kept input
    order on ties and keyed ``p(X,Y) | p(Z,X)`` apart from its swap.
    """
    decorated = sorted(pairs, key=lambda pr: repr(pr[0]))
    groups: List[list] = []
    for pr in decorated:
        if groups and groups[-1][0][0] == pr[0]:
            groups[-1].append(pr)
        else:
            groups.append([pr])
    n_candidates = 1
    for g in groups:
        for k in range(2, len(g) + 1):
            n_candidates *= k
    if n_candidates == 1 or n_candidates > _MAX_TIE_CANDIDATES:
        return _ckey_assemble("C", [pr for g in groups for pr in g])
    best = None
    best_render = None
    for arrangement in itertools.product(
        *(itertools.permutations(g) for g in groups)
    ):
        ordering = [pr for g in arrangement for pr in g]
        assembled = _ckey_assemble("C", ordering)
        render = repr(assembled[0])
        if best_render is None or render < best_render:
            best_render = render
            best = assembled
    return best


def canonical_key(proc: Formula, sort_conc: bool = True):
    """A hashable structural key for *proc*, invariant under variable
    renaming and (optionally) under reordering of concurrent branches.

    Renaming-apart matters because call unfolding freshens rule variables
    with a global counter: two searches reaching "the same" residual
    process would otherwise never share a memo entry.  Branch-order
    invariance matters because interleaving semantics makes ``a | b``
    and ``b | a`` the same process.

    Keys are assembled from per-node summaries cached on the (immutable)
    nodes, so residual processes -- which share almost all structure with
    their parent configuration -- are re-keyed in time proportional to
    what actually changed.  ``sort_conc=False`` disables branch sorting
    for the ablation benchmark.
    """
    return _ckey_pair(proc, sort_conc)[0]
