"""Tests for the interactive TD session."""

import io

import pytest

from repro.repl import Repl


def run_session(*lines):
    out = io.StringIO()
    repl = Repl(out=out)
    for line in lines:
        alive = repl.handle(line)
        if not alive:
            break
    return repl, out.getvalue()


class TestCommands:
    def test_rule_and_fact(self):
        repl, out = run_session(
            "rule p(X) <- q(X).",
            "fact q(a).",
            "program",
            "db",
        )
        assert "added 1 rule(s)." in out
        assert "p(X) <- q(X)." in out
        assert "q(a)." in out

    def test_query_shows_bindings_and_delta(self):
        _repl, out = run_session(
            "rule take(X) <- item(X) * del.item(X) * ins.got(X).",
            "fact item(a). item(b).",
            "?- take(X).",
        )
        assert "X = a" in out and "X = b" in out
        assert "+{got(a)}" in out
        assert "-{item(a)}" in out

    def test_query_failure_prints_no(self):
        _repl, out = run_session("rule p <- q(zz).", "?- p.")
        assert "no." in out

    def test_query_does_not_change_db(self):
        repl, _out = run_session(
            "rule take(X) <- item(X) * del.item(X).",
            "fact item(a).",
            "?- take(X).",
        )
        assert len(repl.db) == 1

    def test_run_shows_trace(self):
        _repl, out = run_session(
            "rule go <- ins.p(a) * iso(del.p(a)).",
            "run go.",
        )
        assert "ins.p(a)" in out
        assert "iso:" in out

    def test_commit_applies_final_state(self):
        repl, out = run_session(
            "rule go <- ins.flag.",
            "commit go.",
            "db",
        )
        assert "committed." in out
        assert "flag." in out
        assert len(repl.db) == 1

    def test_commit_failure_leaves_db(self):
        repl, out = run_session(
            "rule go <- missing(x) * ins.flag.",
            "commit go.",
        )
        assert "cannot commit." in out
        assert len(repl.db) == 0

    def test_classify_and_reset(self):
        repl, out = run_session(
            "rule p <- ins.a * p.",
            "classify",
            "reset",
            "program",
        )
        assert "fully bounded" in out
        assert "session cleared." in out
        assert "(no rules)" in out

    def test_parse_errors_are_recoverable(self):
        repl, out = run_session("rule p <- ((.", "fact q(a).")
        assert "error:" in out
        assert len(repl.db) == 1

    def test_quit_ends_session(self):
        repl = Repl(out=io.StringIO())
        assert repl.handle("quit") is False

    def test_unknown_command(self):
        _repl, out = run_session("frobnicate")
        assert "unknown command" in out

    def test_load_files(self, tmp_path):
        rules = tmp_path / "r.td"
        rules.write_text("p(X) <- q(X).")
        facts = tmp_path / "f.facts"
        facts.write_text("q(a).")
        _repl, out = run_session(
            "load %s" % rules,
            "loaddb %s" % facts,
            "?- p(X).",
        )
        assert "loaded 1 rule(s)." in out
        assert "X = a" in out

    def test_loop_reads_stream(self):
        out = io.StringIO()
        Repl(out=out).loop(io.StringIO("fact a.\nquit\n"), banner=False)
        assert "inserted 1 fact(s)." in out.getvalue()
        assert "bye." in out.getvalue()


class TestWhy:
    def test_why_explains_failure(self):
        _repl, out = run_session(
            "rule go <- permit(W) * ins.ok.",
            "why go.",
        )
        assert "cannot commit" in out
        assert "permit" in out

    def test_why_on_committing_goal(self):
        _repl, out = run_session("rule go <- ins.ok.", "why go.")
        assert "can commit" in out


class TestModuleEntryPoint:
    """python -m repro.repl takes the same profiling flags as the CLI."""

    def test_plain_session(self, monkeypatch, capsys):
        import io
        import sys

        from repro.repl import main

        monkeypatch.setattr(sys, "stdin", io.StringIO("quit\n"))
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "bye." in out
        assert "== profile" not in out

    def test_profile_flag_prints_report(self, monkeypatch, capsys):
        import io
        import sys

        from repro.repl import main

        monkeypatch.setattr(
            sys,
            "stdin",
            io.StringIO("rule p <- ins.a.\n?- p.\nquit\n"),
        )
        assert main(["--profile"]) == 0
        out = capsys.readouterr().out
        assert "== profile" in out
        assert "search.configs_expanded" in out

    def test_trace_out_and_append(self, monkeypatch, tmp_path, capsys):
        import io
        import sys

        from repro.obs import read_jsonl
        from repro.repl import main

        trace = tmp_path / "repl.jsonl"
        session = "rule p <- ins.a.\n?- p.\nquit\n"
        monkeypatch.setattr(sys, "stdin", io.StringIO(session))
        assert main(["--trace-out", str(trace)]) == 0
        first = len(read_jsonl(trace.read_text()))
        assert first > 0
        monkeypatch.setattr(sys, "stdin", io.StringIO(session))
        assert main(["--trace-out", str(trace), "--trace-append"]) == 0
        assert len(read_jsonl(trace.read_text())) == 2 * first
