"""Safe (1-bounded) Petri nets and their embedding into TD.

The paper's related-work section contrasts TD with Petri-net workflow
formalisms; the embedding here makes the comparison executable.  A safe
net's marking is a *set* of marked places -- exactly a TD database state
over propositional facts -- and a transition is a TD rule that tests and
deletes the preset and inserts the postset.  Firing sequences become
sequential TD executions, so reachability questions route to the tabled
sequential engine (decidable, as Petri-net reachability is), and the
native breadth-first explorer below serves as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.database import Database
from ..core.formulas import Call, Del, Formula, Ins, Neg, Test, conc, seq
from ..core.program import Program, Rule
from ..core.terms import Atom, atom

__all__ = ["PetriNet", "petri_to_td"]

Marking = FrozenSet[str]


@dataclass
class PetriNet:
    """A safe Petri net: named places and transitions with pre/post sets.

    Safety (1-boundedness) is *assumed* of the input net and *checked*
    during exploration: firing a transition whose postset intersects the
    current marking outside its preset would create a second token, and
    :meth:`reachable` raises in that case.
    """

    places: FrozenSet[str]
    transitions: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]]
    initial: Marking

    def __post_init__(self):
        for name, (pre, post) in self.transitions.items():
            unknown = (pre | post) - self.places
            if unknown:
                raise ValueError(
                    "transition %s uses unknown places %s" % (name, sorted(unknown))
                )
        if not self.initial <= self.places:
            raise ValueError("initial marking uses unknown places")

    # -- native semantics -------------------------------------------------------

    def enabled(self, marking: Marking) -> List[str]:
        return [
            name
            for name, (pre, _post) in sorted(self.transitions.items())
            if pre <= marking
        ]

    def fire(self, marking: Marking, name: str) -> Marking:
        pre, post = self.transitions[name]
        if not pre <= marking:
            raise ValueError("transition %s is not enabled" % name)
        after = (marking - pre) | post
        overlap = (marking - pre) & post
        if overlap:
            raise ValueError(
                "net is not safe: firing %s would double-mark %s"
                % (name, sorted(overlap))
            )
        return frozenset(after)

    def reachable(self, max_markings: int = 1_000_000) -> Set[Marking]:
        """All markings reachable from the initial one (BFS)."""
        frontier = [self.initial]
        seen: Set[Marking] = {self.initial}
        while frontier:
            next_frontier = []
            for marking in frontier:
                for name in self.enabled(marking):
                    succ = self.fire(marking, name)
                    if succ not in seen:
                        if len(seen) >= max_markings:
                            raise MemoryError("too many reachable markings")
                        seen.add(succ)
                        next_frontier.append(succ)
            frontier = next_frontier
        return seen

    def can_reach(self, target: Marking) -> bool:
        return frozenset(target) in self.reachable()


def petri_to_td(net: PetriNet, target: Marking) -> Tuple[Program, Formula, Database]:
    """Embed *net* into sequential TD, asking whether *target* (an exact
    marking) is reachable.

    Each transition becomes a ``fire_t`` rule; ``run`` nondeterministically
    fires transitions (tail recursion) and commits when the database
    equals the target marking.  Returns (program, goal, initial db) with
    the goal committing iff the target marking is reachable -- routed to
    the tabled sequential engine, this is a decision procedure.
    """
    rules: List[Rule] = []
    for name, (pre, post) in sorted(net.transitions.items()):
        parts: List[Formula] = []
        for p in sorted(pre):
            parts.append(Test(atom("m", p)))
        for p in sorted(pre):
            parts.append(Del(atom("m", p)))
        for p in sorted(post):
            parts.append(Ins(atom("m", p)))
        rules.append(Rule(atom("fire", name), seq(*parts)))

    # at_target: the current marking is exactly `target`.
    target_parts: List[Formula] = []
    for p in sorted(target):
        target_parts.append(Test(atom("m", p)))
    for p in sorted(net.places - set(target)):
        target_parts.append(Neg(atom("m", p)))
    rules.append(Rule(atom("at_target"), seq(*target_parts)))

    # run: commit at the target, or fire any transition and continue.
    rules.append(Rule(atom("run"), Call(atom("at_target"))))
    for name in sorted(net.transitions):
        rules.append(
            Rule(atom("run"), seq(Call(atom("fire", name)), Call(atom("run"))))
        )

    program = Program(rules)
    goal = Call(atom("run"))
    db = Database([atom("m", p) for p in sorted(net.initial)])
    return program, goal, db
