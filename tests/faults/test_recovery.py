"""Recovery combinators: retry under transient faults, fallback,
budgeted attempts, compensation -- all compiled to plain TD rules."""

import pytest

from repro import (
    Database,
    Interpreter,
    parse_database,
    parse_goal,
    parse_program,
)
from repro.core.program import Program
from repro.faults import (
    FaultInjector,
    FaultPlan,
    StepFault,
    Window,
    compensate,
    fallback,
    retry,
    with_budget,
)
from repro.faults.recovery import _RECOVERY_PRED


def run(recovered, program_text="", db_text="", plan=None, goal=None,
        max_configs=200_000):
    program, db = recovered.install(
        parse_program(program_text), parse_database(db_text)
    )
    interp = Interpreter(
        program,
        max_configs=max_configs,
        faults=FaultInjector(plan) if plan is not None else None,
    )
    return list(interp.solve(goal or recovered.goal, db))


BANK = """
transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
withdraw(Acct, Amt) <-
    balance(Acct, Bal) * Bal >= Amt *
    del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
deposit(Acct, Amt) <-
    balance(Acct, Bal) *
    del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
"""

BANK_DB = "balance(a, 100). balance(b, 10)."


def app_states(solutions):
    """Final databases modulo the combinators' bookkeeping tokens.

    Under angelic nondeterminism a retry-wrapped goal has one successful
    execution per number of tokens burned before the committing attempt,
    so ``solve`` may enumerate several solutions that differ only in
    leftover tokens -- the application-visible state must still be
    unique.
    """
    return {
        frozenset(
            str(f) for f in s.database if not _RECOVERY_PRED.match(f.pred)
        )
        for s in solutions
    }


class TestRetry:
    def test_rejects_non_positive_attempts(self):
        with pytest.raises(ValueError):
            retry("ins.p(a)", 0)

    def test_plain_goal_still_commits(self):
        sols = run(retry("transfer(a, b, 30)", 3), BANK, BANK_DB)
        assert app_states(sols) == {
            frozenset({"balance(a, 70)", "balance(b, 40)"})
        }

    def test_commits_under_transient_fault(self):
        # The fault makes every withdraw fail while its window is open;
        # each failed isolated attempt ticks the injector forward, so a
        # later attempt lands after the window closes.
        plan = FaultPlan(
            0, step_faults=(StepFault("del", "balance", Window(0, 12)),)
        )
        sols = run(retry("transfer(a, b, 30)", 20), BANK, BANK_DB, plan=plan)
        assert app_states(sols) == {
            frozenset({"balance(a, 70)", "balance(b, 40)"})
        }

    def test_fails_under_permanent_fault(self):
        plan = FaultPlan(
            0, step_faults=(StepFault("del", "balance", Window(0, None)),)
        )
        assert run(retry("transfer(a, b, 30)", 5), BANK, BANK_DB, plan=plan) == []

    def test_bindings_flow_out_of_the_committing_attempt(self):
        recovered = retry("pick(X)", 3)
        sols = run(recovered, "pick(X) <- item(X) * del.item(X).", "item(a).")
        assert sols
        for sol in sols:
            assert [str(t) for t in sol.bindings.values()] == ["a"]

    def test_counter_fact_matches_the_bookkeeping_regex(self):
        recovered = retry("ins.p(a)", 4)
        (counter,) = recovered.facts
        assert _RECOVERY_PRED.match(counter.pred)
        assert str(counter.args[0]) == "3"
        assert not _RECOVERY_PRED.match("balance")
        assert not _RECOVERY_PRED.match("retry_1")

    def test_single_attempt_needs_no_counter(self):
        assert retry("ins.p(a)", 1).facts == ()


class TestFallback:
    def test_primary_preferred_by_the_simulator(self):
        # ``solve`` enumerates both branches (angelic nondeterminism);
        # the DFS simulator honors program order, so the primary wins.
        recovered = fallback("ins.p(primary)", "ins.p(backup)")
        program, db = recovered.install(Program([]), Database())
        execution = Interpreter(program).simulate(recovered.goal, db)
        assert any(str(f) == "p(primary)" for f in execution.database)

    def test_alternate_taken_when_primary_fails(self):
        recovered = fallback("missing(x) * ins.p(primary)", "ins.p(backup)")
        sols = run(recovered)
        assert len(sols) == 1
        assert any(str(f) == "p(backup)" for f in sols[0].database)


class TestWithBudget:
    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            with_budget("ins.p(a)", 0)

    def test_blown_cap_fails_the_attempt_not_the_search(self):
        # The primary spins through an unbounded state space; the cap
        # fails that attempt cheaply and the fallback commits.
        spin = "spin(N) <- N2 is N + 1 * ins.t(N2) * spin(N2)."
        recovered = fallback(with_budget("spin(0)", 25), "ins.ok(yes)")
        sols = run(recovered, spin, max_configs=5_000)
        assert len(sols) == 1
        assert any(str(f) == "ok(yes)" for f in sols[0].database)


class TestCompensate:
    def test_undo_goal_reverses_the_committed_action(self):
        recovered = compensate("ins.flag(on)", "del.flag(on)")
        program, db = recovered.install(Program([]), Database())
        interp = Interpreter(program)
        (done,) = interp.solve(recovered.goal, db)
        assert any(str(f) == "flag(on)" for f in done.database)
        (undone,) = interp.solve(recovered.undo_goal, done.database)
        assert not any(str(f) == "flag(on)" for f in undone.database)


class TestNesting:
    def test_retry_of_fallback_carries_rules_and_facts(self):
        inner = fallback("missing(x)", "ins.p(backup)")
        outer = retry(inner, 3)
        assert all(rule in outer.rules for rule in inner.rules)
        sols = run(outer)
        assert app_states(sols) == {frozenset({"p(backup)"})}
