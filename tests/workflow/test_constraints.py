"""Tests for intertask dependency constraints."""

import pytest

from repro.workflow import (
    Agent,
    Choice,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)
from repro.workflow.constraints import (
    Before,
    Exclusive,
    MustFollow,
    Requires,
    check_history,
    check_trace,
)


@pytest.fixture
def pipeline_result():
    spec = WorkflowSpec(
        "flow",
        SeqFlow(Step("prep"), Step("scan"), Step("report")),
        (Task("prep", role="t"), Task("scan", role="t"), Task("report", role="t")),
    )
    sim = WorkflowSimulator([spec], agents=[Agent("a1", ("t",))])
    return sim.run(["w1", "w2"])


@pytest.fixture
def choice_result():
    spec = WorkflowSpec(
        "flow",
        SeqFlow(Step("triage"), Choice(Step("fast"), Step("slow"))),
        (Task("triage", role="t"), Task("fast", role="t"), Task("slow", role="t")),
    )
    sim = WorkflowSimulator([spec], agents=[Agent("a1", ("t",))])
    return sim.run(["w1"])


class TestSatisfiedConstraints:
    def test_before_holds_on_sequential_pipeline(self, pipeline_result):
        assert check_trace(pipeline_result, [Before("prep", "scan")]) == []
        assert check_trace(pipeline_result, [Before("scan", "report")]) == []

    def test_requires_holds(self, pipeline_result):
        assert check_trace(pipeline_result, [Requires("report", "prep")]) == []

    def test_exclusive_holds_for_choice(self, choice_result):
        assert check_trace(choice_result, [Exclusive("fast", "slow")]) == []
        assert check_history(choice_result.history, [Exclusive("fast", "slow")]) == []

    def test_mustfollow_holds(self, pipeline_result):
        assert check_trace(pipeline_result, [MustFollow("prep", "report")]) == []


class TestViolations:
    def test_before_violated(self, pipeline_result):
        violations = check_trace(pipeline_result, [Before("report", "prep")])
        assert len(violations) == 2  # both items
        assert "w1" in {v.item for v in violations}

    def test_requires_violated_when_prerequisite_absent(self, pipeline_result):
        violations = check_trace(pipeline_result, [Requires("prep", "audit")])
        assert violations and all(v.constraint.prerequisite == "audit" for v in violations)

    def test_mustfollow_violated(self, choice_result):
        # whichever branch ran, the other's response is missing
        ran = {str(f.args[0]) for f in choice_result.history.facts("done")}
        branch = "fast" if "fast" in ran else "slow"
        violations = check_trace(choice_result, [MustFollow(branch, "audit")])
        assert len(violations) == 1

    def test_history_checker_matches_trace_checker(self, choice_result):
        for c in (Exclusive("fast", "slow"), MustFollow("triage", "fast")):
            trace_v = {str(v) for v in check_trace(choice_result, [c])}
            hist_v = {str(v) for v in check_history(choice_result.history, [c])}
            assert trace_v == hist_v

    def test_history_checker_rejects_ordering_constraints(self, choice_result):
        with pytest.raises(ValueError):
            check_history(choice_result.history, [Before("a", "b")])

    def test_violation_rendering(self, pipeline_result):
        (v, *_rest) = check_trace(pipeline_result, [Before("report", "prep")])
        assert "Before" in str(v)
