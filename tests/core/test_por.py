"""Unit tests for the partial-order reducer (repro.core.por).

The solution-level differential lives in ``test_transitions_diff.py``;
here we pin the machinery itself: footprint computation, the conflict
relation, ample-branch selection, the toggle, and the headline
reduction on the ``conc_fanout`` profile workload.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    SearchBudgetExceeded,
    parse_database,
    parse_goal,
    parse_program,
)
from repro.core.por import (
    EMPTY_FOOTPRINT,
    PartialOrderReducer,
    _conflicts,
    footprint,
    frontier_footprint,
    signature_footprints,
)
from repro.obs import Instrumentation, instrumented


def fp(reads=(), ins=(), dels=()):
    return (frozenset(reads), frozenset(ins), frozenset(dels))


class TestFootprints:
    def test_signature_closure_follows_calls(self):
        program = parse_program(
            """
            top <- middle * ins.log(done).
            middle <- item(X) * del.item(X).
            """
        )
        fps = signature_footprints(program)
        assert fps[("middle", 0)] == fp(reads=["item"], dels=["item"])
        # top's closure includes everything middle may do.
        assert fps[("top", 0)] == fp(
            reads=["item"], ins=["log"], dels=["item"]
        )

    def test_closure_is_cached_on_the_program(self):
        program = parse_program("p <- ins.a.")
        assert signature_footprints(program) is signature_footprints(program)

    def test_footprint_of_negation_is_a_read(self):
        program = parse_program("p <- not q(_).")
        body = program.rules[0].body
        assert footprint(program, body) == fp(reads=["q"])

    def test_recursive_closure_reaches_fixpoint(self):
        program = parse_program(
            """
            even <- done.
            even <- tick(T) * del.tick(T) * odd.
            odd <- tick(T) * del.tick(T) * even.
            """
        )
        fps = signature_footprints(program)
        assert fps[("even", 0)] == fps[("odd", 0)] == fp(
            reads=["done", "tick"], dels=["tick"]
        )

    def test_frontier_of_seq_is_its_head(self):
        program = parse_program("p <- a(X) * ins.b(X).")
        body = program.rules[0].body
        assert frontier_footprint(program, body) == fp(reads=["a"])
        assert footprint(program, body) == fp(reads=["a"], ins=["b"])

    def test_frontier_of_call_is_empty(self):
        # Unfolding a call touches no data: rule choice is preserved by
        # the reduction, so an ample call branch still explores every
        # rule.
        program = parse_program("p <- q.\nq <- ins.a.")
        body = program.rules[0].body  # Call(q)
        assert frontier_footprint(program, body) == EMPTY_FOOTPRINT
        assert footprint(program, body) == fp(ins=["a"])

    def test_frontier_of_iso_is_full_body_closure(self):
        program = parse_program("p <- iso(a(X) * ins.b(X)).")
        body = program.rules[0].body
        assert frontier_footprint(program, body) == fp(reads=["a"], ins=["b"])


class TestConflicts:
    def test_inserts_commute(self):
        assert not _conflicts(fp(ins=["a"]), fp(ins=["a"]))

    def test_deletes_commute(self):
        assert not _conflicts(fp(dels=["a"]), fp(dels=["a"]))

    def test_insert_vs_delete_conflicts(self):
        assert _conflicts(fp(ins=["a"]), fp(dels=["a"]))
        assert _conflicts(fp(dels=["a"]), fp(ins=["a"]))

    def test_read_vs_write_conflicts_both_directions(self):
        assert _conflicts(fp(reads=["a"]), fp(ins=["a"]))
        assert _conflicts(fp(reads=["a"]), fp(dels=["a"]))
        assert _conflicts(fp(ins=["a"]), fp(reads=["a"]))

    def test_disjoint_predicates_do_not_conflict(self):
        assert not _conflicts(fp(reads=["a"], ins=["b"]), fp(reads=["c"], dels=["d"]))


class TestAmpleSelection:
    def _ample(self, program, goal_text):
        goal = program.resolve_goal(parse_goal(goal_text))
        reducer = PartialOrderReducer(program)
        idx, _ = reducer._ample_index(goal.parts, EMPTY_FOOTPRINT, frozenset())
        return idx

    def test_insert_only_branch_is_ample(self):
        program = parse_program("p <- ins.a.\nq <- b(X) * del.b(X) * q.\nq <- not b(_).")
        assert self._ample(program, "p | q") == 0

    def test_frontier_conflict_blocks_ampleness(self):
        # Left's first step deletes what right reads, and right's first
        # step reads what left deletes: neither frontier is independent,
        # so every interleaving is expanded.
        program = parse_program("dummy <- ins.unused.")
        assert (
            self._ample(program, "(del.b(m) * ins.a(m)) | (b(Y) * ins.c(Y))")
            is None
        )

    def test_shared_variable_blocks_ampleness(self):
        program = parse_program("dummy <- ins.unused.")
        assert self._ample(program, "ins.a(Y) | b(Y)") is None

    def test_bind_free_frontier_rescues_shared_variable(self):
        # The branches share X, but the left branch's *next* step is a
        # ground test: no binding can flow in either direction through
        # it, so the dynamic re-check keeps the ample decision that the
        # all-or-nothing variable test used to throw away.
        program = parse_program("dummy <- ins.unused.")
        goal = program.resolve_goal(parse_goal("(a(m) * ins.r(X)) | b(X)"))
        reducer = PartialOrderReducer(program)
        idx, rescued = reducer._ample_index(
            goal.parts, EMPTY_FOOTPRINT, frozenset()
        )
        assert idx == 0 and rescued

    def test_rescued_decision_counts_and_agrees_with_full_expansion(self):
        # End-to-end: the rescued ample set must bump the counter and
        # lose no solutions against the unreduced search.
        program = parse_program(
            "go(X) <- (a(m) * ins.r(X)) | (b(X) * ins.s(X))."
        )
        db = parse_database("a(m). b(k). b(l).")
        goal = parse_goal("go(X)")

        def solutions(**kw):
            interp = Interpreter(program, **kw)
            return {
                (
                    tuple(sorted((str(v), str(t)) for v, t in s.bindings.items())),
                    s.database,
                )
                for s in interp.solve(goal, db)
            }

        inst = Instrumentation.create()
        with instrumented(inst):
            reduced = solutions()
        assert inst.metrics.counter("por.recheck_rescued") > 0
        assert reduced == solutions(por=False)

    def test_leftmost_independent_branch_wins(self):
        program = parse_program("dummy <- ins.unused.")
        # Two insert-only writers conflict with a reader of both
        # predicates, so nothing is ample ...
        assert self._ample(program, "ins.a | ins.b | (a * b)") is None
        # ... but without the reader the leftmost writer is.
        assert self._ample(program, "ins.a | ins.b") == 0

    def test_bare_call_branch_is_trivially_ample(self):
        # Unfolding touches no data, so a call branch is always ample
        # (modulo variable sharing); any read/write conflict surfaces
        # one configuration later, after the rule body is exposed.
        program = parse_program("p <- b(X) * ins.a(X).\nq <- b(Y) * del.b(Y).")
        assert self._ample(program, "p | q") == 0
        # Once unfolded, the left branch's frontier reads ``b`` which the
        # sibling deletes, so it is no longer ample; the right branch's
        # frontier is a pure read against an insert-only sibling closure
        # and takes over as the representative.
        assert (
            self._ample(program, "(b(X) * ins.a(X)) | (b(Y) * del.b(Y))") == 1
        )


class TestReductionEndToEnd:
    def test_toggle_controls_reducer(self):
        program = parse_program("p <- ins.a.")
        assert Interpreter(program)._reducer is not None
        assert Interpreter(program, por=False)._reducer is None
        # Attached faults bypass the reducer even when por=True (the
        # chaos differential in test_transitions_diff.py runs it).
        class _Injector:
            def perturb(self, proc, db, steps):
                return steps

        interp = Interpreter(program, faults=_Injector())
        assert interp._reducer is not None
        assert interp.faults is not None

    def test_conc_fanout_reduced_at_least_2x(self):
        # The acceptance benchmark: on the conc_fanout profile workload
        # the reducer must cut both transition work and unification
        # fan-out by >= 2x (measured ~100x / ~86x; asserting the floor).
        from repro.obs.analyze import _FANOUT_TD

        db_text = "item(j1). item(j2). item(j3). item(j4). item(j5)."

        def measure(por):
            inst = Instrumentation.create()
            with instrumented(inst):
                interp = Interpreter(parse_program(_FANOUT_TD), por=por)
                sols = list(
                    interp.solve(parse_goal("spawn"), parse_database(db_text))
                )
            assert len(sols) == 1
            return sols[0].database, inst.metrics

        final_on, on = measure(True)
        final_off, off = measure(False)
        assert final_on == final_off
        assert off.counter("search.steps") >= 2 * on.counter("search.steps")
        assert off.counter("unify.attempts") >= 2 * on.counter("unify.attempts")
        assert on.counter("por.ample_configs") > 0
        assert on.counter("por.steps_pruned") > 0
        assert off.counter("por.ample_configs") == 0

    def test_forever_blocked_branch_prunes_finitely(self):
        # A branch nothing can ever unblock deadlocks the whole goal;
        # the reducer proves it and fails finitely, where the naive
        # enumeration chases the independent looping branch (whose
        # process tree grows without bound) into the budget.  ``init``
        # keeps ``gate`` statically insertable so the dead-config filter
        # cannot claim the credit.  (This is the small version of the
        # diverging counter machine in
        # tests/paper/test_complexity_claims.py.)
        text = """
        go <- init * (stuck | looper).
        init <- ins.gate(g) * del.gate(g).
        stuck <- gate(_).
        looper <- looper * looper.
        """
        program = parse_program(text)
        assert Interpreter(program, max_configs=500).succeeds("go", Database()) is False
        with pytest.raises(SearchBudgetExceeded):
            Interpreter(program, max_configs=500, por=False).succeeds(
                "go", Database()
            )

    def test_dfs_simulate_agrees_under_reduction(self):
        from repro.obs.analyze import _FANOUT_TD

        db = parse_database("item(j1). item(j2). item(j3).")
        on = Interpreter(parse_program(_FANOUT_TD)).simulate("spawn", db)
        off = Interpreter(parse_program(_FANOUT_TD), por=False).simulate("spawn", db)
        assert on is not None and off is not None
        assert on.database == off.database
