"""The in-memory reference backend: a transactional shell over
:class:`~repro.core.database.Database`.

Because states are immutable and copy-on-write, transactions are free:
a savepoint just remembers the ``Database`` reference at the moment it
was taken, release discards that reference, and rollback restores it.
This backend is the semantic oracle every other backend is tested
against (``tests/store/test_protocol.py``) and the default the engines
fall back to when no store is attached.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.database import Database
from ..core.terms import Atom
from .base import Savepoint, Store, StoreError

__all__ = ["MemoryStore"]


class MemoryStore(Store):
    """Volatile store over the copy-on-write ``Database``."""

    def __init__(self, db: Optional[Database] = None):
        self._db = db if db is not None else Database()
        # LIFO stack of (savepoint, state-at-entry).
        self._stack: List[Tuple[Savepoint, Database]] = []
        self._serial = 0

    def database(self) -> Database:
        return self._db

    # -- updates --------------------------------------------------------------

    def insert(self, fact: Atom) -> Database:
        self._db = self._db.insert(fact)
        return self._db

    def delete(self, fact: Atom) -> Database:
        self._db = self._db.delete(fact)
        return self._db

    def insert_all(self, facts) -> Database:
        self._db = self._db.insert_all(facts)
        return self._db

    def delete_all(self, facts) -> Database:
        self._db = self._db.delete_all(facts)
        return self._db

    # -- transactions ---------------------------------------------------------

    def savepoint(self) -> Savepoint:
        self._serial += 1
        sp = Savepoint("sp%d" % self._serial, depth=len(self._stack))
        self._stack.append((sp, self._db))
        return sp

    def _pop_to(self, sp: Savepoint) -> Database:
        while self._stack:
            top, saved = self._stack.pop()
            if top is sp:
                return saved
        raise StoreError("unknown or already-closed savepoint: %r" % (sp,))

    def release(self, sp: Savepoint) -> None:
        # Releasing an outer savepoint implicitly commits the inner ones
        # still open above it (SQLite RELEASE semantics; nested iso that
        # succeed together commit together).
        self._pop_to(sp)

    def rollback(self, sp: Savepoint) -> None:
        self._db = self._pop_to(sp)
