"""Tests for failure diagnosis."""

import pytest

from repro import Database, parse_database, parse_program
from repro.verify import diagnose


class TestDiagnose:
    def test_committing_goal(self):
        prog = parse_program("go <- ins.done.")
        d = diagnose(prog, "go", Database())
        assert d.committed
        assert "can commit" in d.summary()

    def test_missing_fact_identified(self):
        prog = parse_program("go <- license(W) * ins.approved(W).")
        d = diagnose(prog, "go", Database())
        assert not d.committed
        assert any("license" in reason for reason, _n in d.blockers)

    def test_staffing_hole_reads_clearly(self):
        prog = parse_program(
            """
            task(W) <- available(A) * qualified(A, sequencer) *
                       del.available(A) * ins.done(W, A) * ins.available(A).
            """
        )
        db = parse_database("available(ana). qualified(ana, tech).")
        d = diagnose(prog, "task(w1)", db)
        assert not d.committed
        (top_reason, _count) = d.blockers[0]
        assert "qualified(ana, sequencer)" in top_reason
        assert d.example_trace is not None

    def test_guard_failure_identified(self):
        prog = parse_program("go <- bal(B) * B >= 100 * ins.ok.")
        d = diagnose(prog, "go", parse_database("bal(10)."))
        assert not d.committed
        assert any("guard fails" in r for r, _n in d.blockers)

    def test_absence_blocker_identified(self):
        prog = parse_program("go <- not lock(_) * ins.ok.")
        d = diagnose(prog, "go", parse_database("lock(x)."))
        assert not d.committed
        assert any("absence" in r for r, _n in d.blockers)

    def test_multiple_branches_aggregated(self):
        prog = parse_program(
            "go <- a(x) * ins.ok.\ngo <- b(x) * ins.ok.\ngo <- c(x) * ins.ok."
        )
        d = diagnose(prog, "go", Database())
        assert not d.committed
        reasons = {r for r, _n in d.blockers}
        assert {"waiting for fact a(x)", "waiting for fact b(x)",
                "waiting for fact c(x)"} <= reasons

    def test_iso_blockers_labelled(self):
        prog = parse_program("go <- iso(token(t) * del.token(t)).")
        d = diagnose(prog, "go", Database())
        assert not d.committed
        # the iso contributes no step at all, so the stuck frontier IS
        # the iso: its inner reason is surfaced with a marker
        assert any("inside iso" in r for r, _n in d.blockers)

    def test_top_limits_report(self):
        rules = "\n".join("go <- p%d(x) * ins.ok." % i for i in range(10))
        prog = parse_program(rules)
        d = diagnose(prog, "go", Database(), top=3)
        assert len(d.blockers) == 3


class TestNestedIsoDiagnosis:
    def test_blocker_inside_iso_with_updates(self):
        # the failure point is mid-way through an isolated body (an
        # overdraft guard) -- the nested analysis must surface it
        prog = parse_program(
            """
            transfer(F, T, Amt) <- iso(
                balance(F, Bal) * Bal >= Amt *
                del.balance(F, Bal) * B2 is Bal - Amt * ins.balance(F, B2)
            ).
            """
        )
        db = parse_database("balance(a, 100).")
        d = diagnose(prog, "transfer(a, b, 500)", db)
        assert not d.committed
        assert any(
            "inside iso" in r and "100 >= 500" in r for r, _n in d.blockers
        )

    def test_missing_fact_inside_iso(self):
        prog = parse_program("t <- iso(permit(x) * ins.ok * del.ok).")
        d = diagnose(prog, "t", parse_database(""))
        assert any("inside iso" in r and "permit" in r for r, _n in d.blockers)
