"""Partial-order reduction for the full-TD search engines.

Concurrent composition ``a | b`` is interleaving semantics: the naive
transition relation explores every schedule of elementary steps, even
though the paper's semantics only distinguishes executions by their
effect on the database and the answer bindings.  When two branches
touch disjoint parts of the store, all their interleavings commute and
reach the same final configurations -- so expanding *one* representative
schedule suffices.

This module implements an ample-set reducer over the same transition
relation as :func:`repro.core.transitions.enabled_steps`:

* Every formula node gets a **footprint** -- the predicates it may read
  (tuple tests, absence tests), insert, and delete, with calls expanded
  through the program's call graph (a per-signature closure cached on
  the program, like :meth:`Program.update_footprint`).  This extends
  the ``_never_steps`` freeness summaries from the indexed enumerator:
  where those decide *whether* a redex can step, footprints decide
  *what* the step can touch.
* At a concurrent node, a branch is **ample** when its frontier
  footprint cannot conflict with anything its siblings (or any
  concurrent competitor higher in the process tree) may ever do, and it
  shares no variables with them.  Conflict means read-vs-write overlap
  or insert-vs-delete on the same predicate; two inserts (or two
  deletes) of the same predicate commute under set semantics, which is
  what makes the paper's insert-only workflow fragment reduce so well.
* If an ample branch exists, only *its* steps are expanded; the sibling
  schedules are pruned (counted by ``por.steps_pruned``).  Otherwise
  every branch is expanded as before, with the sibling footprints
  joining the competitor set for nested concurrent nodes.

Soundness (why pruning loses no solutions): let ``t`` be the ample
branch of ``C = t | s1 | ... | sk`` (possibly nested under further
composition).  Any complete execution from ``C`` must eventually step
in ``t`` (concurrent parts are never ``true``; an execution that never
runs ``t`` never terminates).  Take the first ``t``-step ``s`` in such
an execution.  The competitor steps before ``s`` cannot change ``t``'s
enabled step set: they bind no variable of ``t`` (variable condition)
and write no predicate ``t``'s frontier reads (footprint condition) --
so ``s`` is already enabled at ``C``.  Conversely ``s`` binds no
competitor variable and its writes neither invalidate a competitor
read nor anti-commute with a competitor write, so executing ``s``
*first* and the prefix after it reaches the same configuration.  By
induction on execution length, every reachable (answers, final
database) pair of the full graph is reachable in the reduced graph at
the same or smaller depth -- BFS stays a fair semi-decision procedure
and the DFS failure memo stays sound.  The same argument covers the
two degenerate ample cases: a branch whose frontier can never fire
(nothing a disjoint competitor does can unblock it, so the whole
configuration is deadlocked and yielding nothing prunes it correctly),
and an isolated body (its frontier footprint is the body's full
closure, so a currently-failing ``iso`` attempt stays failing).

The reducer is *not* used when a fault injector is attached (the
injector perturbs schedules per tick, so every schedule must exist to
be perturbed -- this keeps ``tdlog chaos`` byte-identical) and not by
the state-space verifier (which counts the full graph by design).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from ..obs import hotspots as _hot
from .database import Database
from .formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
    conc,
    free_variables,
    seq,
    walk_formulas,
)
from .program import Program
from .terms import Signature
from .transitions import IsolRunner, Step, _never_steps, _steps

__all__ = [
    "Footprint",
    "PartialOrderReducer",
    "footprint",
    "frontier_footprint",
    "por_disabled",
    "por_forced_off",
    "signature_footprints",
]

#: When set, every :class:`repro.core.interpreter.Interpreter`
#: constructed ignores ``por=True``.  This is how the pruning audit
#: (``tdlog explain --audit-por``) replays a *fixed* workload -- one
#: that builds its own interpreters internally -- against the
#: full-interleaving oracle without threading a flag through it.
_FORCE_DISABLED = False


def por_forced_off() -> bool:
    """True while inside a :func:`por_disabled` block."""
    return _FORCE_DISABLED


@contextmanager
def por_disabled() -> Iterator[None]:
    """Force ``por=False`` on every interpreter built in this block."""
    global _FORCE_DISABLED
    previous = _FORCE_DISABLED
    _FORCE_DISABLED = True
    try:
        yield
    finally:
        _FORCE_DISABLED = previous


def _fp_lists(fp: "Footprint") -> Dict[str, list]:
    """A footprint as sorted lists (JSON-stable witness form)."""
    return {
        "reads": sorted(fp[0]),
        "inserts": sorted(fp[1]),
        "deletes": sorted(fp[2]),
    }

_EMPTY: frozenset = frozenset()

#: (reads, inserts, deletes) -- predicate names a (sub)process may touch.
Footprint = Tuple[frozenset, frozenset, frozenset]

EMPTY_FOOTPRINT: Footprint = (_EMPTY, _EMPTY, _EMPTY)


def signature_footprints(program: Program) -> Dict[Signature, Footprint]:
    """Per-derived-signature footprint closure, cached on the program.

    The direct footprint of each rule body is closed over the call
    graph by fixpoint iteration, so ``footprints[sig]`` covers every
    predicate any unfolding of ``sig`` may ever read, insert, or
    delete.  Programs are immutable, so the closure is computed once.
    """
    cached = getattr(program, "_por_signature_footprints", None)
    if cached is not None:
        return cached
    direct: Dict[Signature, Tuple[set, set, set]] = {}
    calls: Dict[Signature, set] = {}
    for rule in program.rules:
        sig = rule.head.signature
        reads, ins, dels = direct.setdefault(sig, (set(), set(), set()))
        callees = calls.setdefault(sig, set())
        for sub in walk_formulas(rule.body):
            if isinstance(sub, (Test, Neg)):
                reads.add(sub.atom.pred)
            elif isinstance(sub, Ins):
                ins.add(sub.atom.pred)
            elif isinstance(sub, Del):
                dels.add(sub.atom.pred)
            elif isinstance(sub, Call):
                callees.add(sub.atom.signature)
    changed = True
    while changed:
        changed = False
        for sig, callees in calls.items():
            acc = direct[sig]
            for callee in callees:
                sub_fp = direct.get(callee)
                if sub_fp is None:
                    continue  # undefined call: the engine raises on it
                for mine, theirs in zip(acc, sub_fp):
                    if not theirs <= mine:
                        mine |= theirs
                        changed = True
    result = {
        sig: (frozenset(r), frozenset(i), frozenset(d))
        for sig, (r, i, d) in direct.items()
    }
    setattr(program, "_por_signature_footprints", result)
    return result


def footprint(program: Program, f: Formula) -> Footprint:
    """Everything *f* may ever read / insert / delete (call closure
    included).  Cached on the node, tagged with the program it was
    computed against (nodes belong to one program in practice; the tag
    keeps a stale cache from ever being reused)."""
    cached = getattr(f, "_por_fp", None)
    if cached is not None and cached[0] is program:
        return cached[1]
    if isinstance(f, (Test, Neg)):
        fp: Footprint = (frozenset((f.atom.pred,)), _EMPTY, _EMPTY)
    elif isinstance(f, Ins):
        fp = (_EMPTY, frozenset((f.atom.pred,)), _EMPTY)
    elif isinstance(f, Del):
        fp = (_EMPTY, _EMPTY, frozenset((f.atom.pred,)))
    elif isinstance(f, Call):
        fp = signature_footprints(program).get(f.atom.signature, EMPTY_FOOTPRINT)
    elif isinstance(f, (Seq, Conc)):
        fp = EMPTY_FOOTPRINT
        for p in f.parts:
            fp = _union(fp, footprint(program, p))
    elif isinstance(f, Isol):
        fp = footprint(program, f.body)
    else:  # Truth, Builtin: no database footprint
        fp = EMPTY_FOOTPRINT
    object.__setattr__(f, "_por_fp", (program, fp))
    return fp


def frontier_footprint(program: Program, f: Formula) -> Footprint:
    """What the *first* steps of *f* may touch.

    A bare call unfolds without touching the database (rule choice is
    preserved by the reduction, so an ample call branch still explores
    every rule).  An isolated body executes atomically *now*, so its
    frontier is the body's full closure.  Sequential composition
    contributes only its head; concurrent composition the union of its
    branches' frontiers (including currently-blocked redexes, whose
    eventual effects are conservatively charged to the frontier).
    """
    cached = getattr(f, "_por_ffp", None)
    if cached is not None and cached[0] is program:
        return cached[1]
    if isinstance(f, Call):
        fp = EMPTY_FOOTPRINT
    elif isinstance(f, Seq):
        fp = (
            frontier_footprint(program, f.parts[0])
            if f.parts
            else EMPTY_FOOTPRINT
        )
    elif isinstance(f, Conc):
        fp = EMPTY_FOOTPRINT
        for p in f.parts:
            fp = _union(fp, frontier_footprint(program, p))
    elif isinstance(f, Isol):
        fp = footprint(program, f.body)
    else:
        fp = footprint(program, f)
    object.__setattr__(f, "_por_ffp", (program, fp))
    return fp


def _union(a: Footprint, b: Footprint) -> Footprint:
    if a is EMPTY_FOOTPRINT:
        return b
    if b is EMPTY_FOOTPRINT:
        return a
    return (a[0] | b[0], a[1] | b[1], a[2] | b[2])


def _frontier_vars(f: Formula) -> frozenset:
    """Free variables of *f*'s frontier redexes -- the variables its
    *next* step could bind or have bound out from under it.  An
    isolated body runs atomically now, so the whole body counts."""
    if isinstance(f, Truth):
        return _EMPTY
    if isinstance(f, Seq):
        return _frontier_vars(f.parts[0]) if f.parts else _EMPTY
    if isinstance(f, Conc):
        out = _EMPTY
        for p in f.parts:
            out = out | _frontier_vars(p)
        return out
    if isinstance(f, Isol):
        return frozenset(free_variables(f.body))
    return frozenset(free_variables(f))


def _frontier_bind_free(f: Formula) -> bool:
    """Can *f*'s next step neither produce nor consume a binding?

    True when every frontier redex is ground: a ground test, update,
    absence test, or builtin yields the empty substitution, and a
    ground call's unifier binds only the renamed rule's variables.  A
    step from such a frontier commutes with any competitor binding --
    the competitor cannot change which redexes are enabled (no free
    variable to instantiate) and the step binds nothing back -- which
    is what lets :meth:`PartialOrderReducer._ample_index` keep an
    ample branch that merely *mentions* a shared variable in the parts
    behind its frontier.
    """
    return not _frontier_vars(f)


def _conflicts(frontier: Footprint, future: Footprint) -> bool:
    """Can a frontier step and any future competitor step fail to
    commute?  Read-vs-write in either direction, or insert-vs-delete of
    the same predicate.  Insert/insert and delete/delete commute under
    set semantics."""
    fr, fi, fd = frontier
    tr, ti, td = future
    if fr and (not fr.isdisjoint(ti) or not fr.isdisjoint(td)):
        return True
    if tr and (not tr.isdisjoint(fi) or not tr.isdisjoint(fd)):
        return True
    if not fi.isdisjoint(td):
        return True
    if not fd.isdisjoint(ti):
        return True
    return False


class PartialOrderReducer:
    """Ample-set pruned drop-in for the indexed step enumerator.

    ``steps`` yields a sound subset of
    :func:`repro.core.transitions.enabled_steps`: at each concurrent
    node it expands only the leftmost *ample* branch when one exists.
    Selection is purely static per configuration (footprints and
    variable sharing), so the reduced relation is deterministic and the
    naive enumeration remains the differential oracle.
    """

    __slots__ = ("program",)

    def __init__(self, program: Program):
        self.program = program

    def steps(
        self,
        proc: Formula,
        db: Database,
        isol_runner: IsolRunner,
        metrics=None,
        tracer=None,
        prov=None,
        prov_parent=None,
    ) -> Iterator[Step]:
        """The reduced step set.  ``tracer`` (when attached) receives
        one ``por.pruned`` event per ample decision that actually
        deferred siblings; ``prov``/``prov_parent`` (a
        :class:`repro.obs.provenance.ProvenanceRecorder` and the node
        of the configuration being expanded) additionally record the
        full ample-set witness -- frontier and closure footprints,
        shared variables -- that ``explain --audit-por`` cross-checks."""
        return self._reduced(
            proc,
            db,
            isol_runner,
            EMPTY_FOOTPRINT,
            _EMPTY,
            metrics,
            tracer,
            prov,
            prov_parent,
        )

    # -- internals ------------------------------------------------------------

    def _reduced(
        self,
        proc: Formula,
        db: Database,
        isol_runner: IsolRunner,
        comp_fp: Footprint,
        comp_vars: frozenset,
        metrics,
        tracer=None,
        prov=None,
        prov_parent=None,
    ) -> Iterator[Step]:
        if isinstance(proc, Truth) or _never_steps(proc):
            return
        if isinstance(proc, Seq):
            head, rest = proc.parts[0], proc.parts[1:]
            for step in self._reduced(
                head, db, isol_runner, comp_fp, comp_vars, metrics,
                tracer, prov, prov_parent,
            ):
                yield Step(
                    step.action,
                    step.subst,
                    seq(step.residual, *rest),
                    step.database,
                    step.local,
                )
            return
        if isinstance(proc, Conc):
            parts = proc.parts
            idx, rescued = self._ample_index(parts, comp_fp, comp_vars)
            if idx is not None:
                attr = _hot._ACTIVE
                if (
                    metrics is not None
                    or tracer is not None
                    or prov is not None
                    or attr is not None
                ):
                    self._note_ample(
                        parts, idx, comp_fp, comp_vars,
                        metrics, tracer, prov, prov_parent, attr, rescued,
                    )
                branch = parts[idx]
                before, after = parts[:idx], parts[idx + 1 :]
                for step in self._reduced(
                    branch, db, isol_runner, comp_fp, comp_vars, metrics,
                    tracer, prov, prov_parent,
                ):
                    yield Step(
                        step.action,
                        step.subst,
                        conc(*before, step.residual, *after),
                        step.database,
                        step.local,
                    )
                return
            # No ample branch: expand all, and let nested concurrent
            # nodes prove independence against the siblings too.
            program = self.program
            fps = [footprint(program, p) for p in parts]
            fvs = [free_variables(p) for p in parts]
            for i, branch in enumerate(parts):
                if _never_steps(branch):
                    continue
                sib_fp = comp_fp
                sib_vars = comp_vars
                for j in range(len(parts)):
                    if j != i:
                        sib_fp = _union(sib_fp, fps[j])
                        sib_vars = sib_vars | fvs[j]
                before, after = parts[:i], parts[i + 1 :]
                for step in self._reduced(
                    branch, db, isol_runner, sib_fp, sib_vars, metrics,
                    tracer, prov, prov_parent,
                ):
                    yield Step(
                        step.action,
                        step.subst,
                        conc(*before, step.residual, *after),
                        step.database,
                        step.local,
                    )
            return
        # Elementary redexes, calls, and iso: no concurrency below here.
        yield from _steps(self.program, proc, db, isol_runner)

    def _note_ample(
        self,
        parts: Tuple[Formula, ...],
        idx: int,
        comp_fp: Footprint,
        comp_vars: frozenset,
        metrics,
        tracer,
        prov,
        prov_parent,
        attr=None,
        rescued: bool = False,
    ) -> None:
        """Report one ample-set decision: counters, an instant tracer
        event, and (with provenance attached) the full witness the
        pruning audit re-verifies.  Counter semantics are unchanged
        from before the witness existed: ``por.ample_configs`` per
        decision, ``por.steps_pruned`` by the number of step-capable
        siblings deferred; ``por.recheck_rescued`` additionally counts
        decisions the bind-free frontier re-check saved from degrading
        to full expansion.  ``attr`` (a cost attributor) additionally
        receives the same count as a ``por.pruned_credit`` charge."""
        pruned = [
            p for j, p in enumerate(parts) if j != idx and not _never_steps(p)
        ]
        if metrics is not None:
            metrics.inc("por.ample_configs")
            if rescued:
                metrics.inc("por.recheck_rescued")
            if pruned:
                metrics.inc("por.steps_pruned", len(pruned))
        if attr is not None and pruned:
            attr.charge("por.pruned_credit", len(pruned))
        if not pruned:
            return
        ample = parts[idx]
        if tracer is not None:
            tracer.event("por.pruned", ample=str(ample), pruned=len(pruned))
        if prov is not None:
            program = self.program
            ample_vars = free_variables(ample)
            witness: Dict[str, object] = {
                "ample": str(ample),
                "rescued": rescued,
                "frontier_vars": sorted(str(v) for v in _frontier_vars(ample)),
                "ample_frontier": _fp_lists(frontier_footprint(program, ample)),
                "competitors": _fp_lists(comp_fp),
                "competitor_shared_vars": sorted(
                    str(v) for v in (ample_vars & comp_vars)
                ),
                "pruned": [
                    {
                        "branch": str(p),
                        "closure": _fp_lists(footprint(program, p)),
                        "shared_vars": sorted(
                            str(v) for v in (ample_vars & free_variables(p))
                        ),
                    }
                    for p in pruned
                ],
            }
            prov.record(
                "por",
                "por: ample %s defers %d sibling branch(es)"
                % (ample, len(pruned)),
                parent=prov_parent,
                disposition="por-pruned",
                witness=witness,
            )

    def _ample_index(
        self,
        parts: Tuple[Formula, ...],
        comp_fp: Footprint,
        comp_vars: frozenset,
    ) -> Tuple[Optional[int], bool]:
        """Leftmost branch whose frontier is independent of every
        sibling's full closure and of the inherited competitors.

        Variable sharing alone no longer disqualifies a branch: when
        the shared variables cannot flow through the branch's *next*
        step -- every frontier redex is ground after the bindings
        applied so far, so the step neither binds a variable nor reads
        one a competitor could bind -- the ample decision is *rescued*
        (the dynamic re-check; counted by ``por.recheck_rescued``).
        Returns ``(index, rescued)``; ``(None, False)`` when every
        branch degrades to full expansion."""
        program = self.program
        for i, branch in enumerate(parts):
            ffp = frontier_footprint(program, branch)
            if _conflicts(ffp, comp_fp):
                continue
            bvars = free_variables(branch)
            shared = bool(comp_vars) and not bvars.isdisjoint(comp_vars)
            ok = True
            for j, sibling in enumerate(parts):
                if j == i:
                    continue
                if _conflicts(ffp, footprint(program, sibling)):
                    ok = False
                    break
                if bvars and not bvars.isdisjoint(free_variables(sibling)):
                    shared = True
            if not ok:
                continue
            if shared and not _frontier_bind_free(branch):
                continue
            return i, shared
        return None, False
