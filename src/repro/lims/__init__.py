"""Genome-laboratory LIMS workload (LabFlow-1 flavoured).

The paper grounds its examples in the workflows of the Whitehead/MIT
Center for Genome Research: factory-like production lines pushing tens of
millions of laboratory experiments, with an *insert-only* experiment
history ("experimental results are accumulated in the database, and
queried by analysis programs, but never deleted or altered") and agents
(machines, technicians) as shared resources.  The authors' LabFlow-1
benchmark [26] stressed storage managers with exactly this shape of
workload.

We cannot ship the genome center's LIMS, so this subpackage builds the
closest synthetic equivalent: a gel-mapping pipeline workflow, agent
pools with realistic qualification mixes, sample batches, and a direct
generator of insert-only history databases for query benchmarks.  The
substitution is recorded in DESIGN.md section 4.
"""

from .lab import (
    build_lab_simulator,
    build_network_simulator,
    gel_pipeline,
    lab_agents,
    mapping_then_sequencing,
    network_agents,
    sample_batch,
    sequencing_pipeline,
    synthetic_history,
)

__all__ = [
    "build_lab_simulator",
    "build_network_simulator",
    "gel_pipeline",
    "lab_agents",
    "mapping_then_sequencing",
    "network_agents",
    "sample_batch",
    "sequencing_pipeline",
    "synthetic_history",
]
