"""Property-based cross-validation of the evaluation engines.

The strongest correctness evidence in the repository: randomly generated
programs in the overlap of two engines' sublanguages must get identical
answers from both.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import (
    Database,
    Interpreter,
    NonrecursiveEngine,
    SequentialEngine,
    parse_database,
    parse_goal,
    parse_program,
)

# Random *sequential nonrecursive* programs over a tiny vocabulary:
# bodies are sequences of tests / inserts / deletes / negations over
# p/1, q/1 with constants {a, b}.

_ops = st.sampled_from(
    [
        "p(a)", "p(b)", "q(a)", "q(b)",
        "p(X)", "q(X)",
        "ins.p(a)", "ins.p(b)", "ins.q(a)", "ins.q(b)",
        "del.p(a)", "del.p(b)", "del.q(a)",
        "not p(a)", "not q(b)",
    ]
)


@st.composite
def rule_bodies(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    return " * ".join(draw(_ops) for _ in range(n))


@st.composite
def programs(draw):
    n_rules = draw(st.integers(min_value=1, max_value=3))
    rules = []
    for i in range(n_rules):
        rules.append("t <- %s." % draw(rule_bodies()))
    return parse_program("\n".join(rules))


@st.composite
def small_dbs(draw):
    facts = draw(
        st.lists(
            st.sampled_from(["p(a)", "p(b)", "q(a)", "q(b)"]),
            max_size=4,
            unique=True,
        )
    )
    return parse_database(" ".join(f + "." for f in facts))


class TestEngineAgreement:
    @settings(max_examples=60, deadline=None)
    @given(programs(), small_dbs())
    def test_interpreter_vs_sequential(self, prog, db):
        goal = parse_goal("t")
        bfs = Interpreter(prog, max_configs=200_000).final_databases(goal, db)
        seq = SequentialEngine(prog).final_databases(goal, db)
        assert bfs == seq

    @settings(max_examples=60, deadline=None)
    @given(programs(), small_dbs())
    def test_interpreter_vs_nonrecursive(self, prog, db):
        goal = parse_goal("t")
        bfs = Interpreter(prog, max_configs=200_000).final_databases(goal, db)
        nr = NonrecursiveEngine(prog).final_databases(goal, db)
        assert bfs == nr

    @settings(max_examples=40, deadline=None)
    @given(programs(), small_dbs())
    def test_succeeds_iff_some_final(self, prog, db):
        goal = parse_goal("t")
        interp = Interpreter(prog, max_configs=200_000)
        assert interp.succeeds(goal, db) == bool(interp.final_databases(goal, db))

    @settings(max_examples=40, deadline=None)
    @given(programs(), small_dbs())
    def test_simulate_consistent_with_solve(self, prog, db):
        goal = parse_goal("t")
        interp = Interpreter(prog, max_configs=200_000)
        exe = interp.simulate(goal, db)
        finals = interp.final_databases(goal, db)
        if exe is None:
            assert not finals
        else:
            assert exe.database in finals


class TestQueryOnlyVsDatalog:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from("abcd"),
                st.sampled_from("abcd"),
            ),
            max_size=8,
            unique=True,
        )
    )
    def test_transitive_closure_agreement(self, edges):
        from repro import atom
        from repro.datalog import evaluate, from_td

        prog = parse_program(
            "path(X, Y) <- e(X, Y).\npath(X, Y) <- e(X, Z) * path(Z, Y)."
        )
        db = Database([atom("e", a, b) for a, b in edges])
        dl_facts = evaluate(from_td(prog), db)
        td = SequentialEngine(prog)
        for x in "abcd":
            for y in "abcd":
                goal = parse_goal("path(%s, %s)" % (x, y))
                assert td.succeeds(goal, db) == (atom("path", x, y) in dl_facts)
