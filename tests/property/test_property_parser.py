"""Round-trip property tests: pretty-printed syntax re-parses to the same
structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import parse_goal, parse_program
from repro.core.formulas import (
    Builtin,
    Call,
    Del,
    Ins,
    Isol,
    Neg,
    conc,
    seq,
)
from repro.core.program import Program, Rule
from repro.core.terms import Atom, Constant, Variable

constants = st.sampled_from([Constant(c) for c in ("a", "b", "lab")]) | st.integers(
    min_value=0, max_value=99
).map(Constant)
variables = st.sampled_from([Variable(v) for v in ("X", "Y", "Zed")])
terms = constants | variables
preds = st.sampled_from(["p", "q", "task_run"])


@st.composite
def atoms(draw):
    arity = draw(st.integers(min_value=0, max_value=3))
    return Atom(draw(preds), tuple(draw(terms) for _ in range(arity)))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0:
            return Call(draw(atoms()))
        if choice == 1:
            return Ins(draw(atoms()))
        if choice == 2:
            return Del(draw(atoms()))
        return Neg(draw(atoms()))
    sub = formulas(depth=depth - 1)
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        parts = draw(st.lists(sub, min_size=2, max_size=3))
        return seq(*parts)
    if choice == 1:
        parts = draw(st.lists(sub, min_size=2, max_size=3))
        return conc(*parts)
    if choice == 2:
        return Isol(draw(sub))
    return draw(formulas(depth=0))


class TestGoalRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(formulas())
    def test_str_reparses_to_equal_structure(self, formula):
        # Printed goals re-parse to structurally identical formulas,
        # modulo base/derived resolution (every atom reparses as Call).
        text = str(formula)
        reparsed = parse_goal(text)
        assert str(reparsed) == text

    @settings(max_examples=60, deadline=None)
    @given(atoms(), atoms())
    def test_rule_round_trip(self, head, body_atom):
        rule = Rule(Atom("head_pred", head.args), Call(body_atom))
        text = str(rule)
        (reparsed,) = parse_program(text).rules
        assert str(reparsed) == text


class TestProgramRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(formulas(depth=1), min_size=1, max_size=4))
    def test_program_text_reparses(self, bodies):
        rules = [Rule(Atom("r%d" % i, ()), body) for i, body in enumerate(bodies)]
        program = Program(rules)
        reparsed = parse_program(str(program))
        assert [str(r) for r in reparsed.rules] == [str(r) for r in program.rules]
