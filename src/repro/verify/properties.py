"""Temporal properties over configuration graphs.

All functions take a :class:`~repro.verify.statespace.StateGraph` (a
finite graph for fully bounded programs) and answer in graph time.  The
vocabulary follows branching-time temporal logic:

* ``can_reach``     -- EF p: some execution reaches a p-state;
* ``inevitably``    -- AF p: every maximal execution reaches a p-state;
* ``invariant_holds`` -- AG p: p holds in every reachable state;
* ``deadlocks``     -- stuck states (no transition, not finished);
* ``may_diverge``   -- EG true over non-final states: an infinite run.

Database predicates are plain Python callables ``Database -> bool`` so
properties can say anything ("no agent double-booked", "every started
task eventually done", ...).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.database import Database
from .statespace import StateGraph, StateNode

__all__ = [
    "deadlocks",
    "invariant_holds",
    "can_reach",
    "inevitably",
    "may_diverge",
]

#: A state property: a predicate over database states.
StatePredicate = Callable[[Database], bool]


def deadlocks(graph: StateGraph) -> List[StateNode]:
    """Stuck configurations: not finished, yet no transition applies.

    In TD semantics these are just failed branches (the transaction
    cannot commit *that way*), but for a workflow designer each one is a
    diagnosis: an unsatisfiable resource requirement, a lost token, a
    circular wait.
    """
    return [
        node
        for node in graph.nodes
        if not node.final and not graph.edges.get(node.node_id)
    ]


def invariant_holds(
    graph: StateGraph, prop: StatePredicate
) -> Tuple[bool, Optional[List[str]]]:
    """AG prop: does *prop* hold in every reachable database state?

    Returns ``(True, None)`` or ``(False, counterexample)`` where the
    counterexample is the action trace from the initial state to the
    first violating one.
    """
    for node in graph.nodes:
        if not prop(node.database):
            return False, graph.path_to(node.node_id)
    return True, None


def can_reach(graph: StateGraph, prop: StatePredicate) -> bool:
    """EF prop: is some state satisfying *prop* reachable?"""
    return any(prop(node.database) for node in graph.nodes)


def inevitably(graph: StateGraph, prop: StatePredicate) -> bool:
    """AF prop: does every maximal execution pass through a prop-state?

    Computed as the usual least fixpoint: a state is good if it
    satisfies *prop*, or it has at least one transition and *all* its
    successors are good.  Deadlocked and final states that fail *prop*
    are immediate counterexamples.
    """
    n = len(graph.nodes)
    good = [prop(node.database) for node in graph.nodes]
    changed = True
    while changed:
        changed = False
        for node in graph.nodes:
            i = node.node_id
            if good[i]:
                continue
            succs = graph.successors(i)
            if succs and all(good[s] for s in succs):
                good[i] = True
                changed = True
    return good[graph.initial]


def may_diverge(graph: StateGraph) -> bool:
    """Is there an infinite execution (a reachable cycle)?

    Fully bounded workflows usually should *not* have one unless they
    iterate intentionally; a surprise cycle is a livelock diagnosis.
    """
    # iterative DFS cycle detection over the (finite) graph
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * len(graph.nodes)
    stack: List[Tuple[int, int]] = [(graph.initial, 0)]
    color[graph.initial] = GRAY
    while stack:
        node_id, idx = stack[-1]
        succs = graph.successors(node_id)
        if idx < len(succs):
            stack[-1] = (node_id, idx + 1)
            succ = succs[idx]
            if color[succ] == GRAY:
                return True
            if color[succ] == WHITE:
                color[succ] = GRAY
                stack.append((succ, 0))
        else:
            color[node_id] = BLACK
            stack.pop()
    return False
