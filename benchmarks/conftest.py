"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's artifacts (DESIGN.md
section 3): it sweeps a size parameter, prints the measured series as a
table (archived in EXPERIMENTS.md), asserts the *shape* the paper
predicts (who wins, what growth class), and registers one representative
configuration with pytest-benchmark for timing stats.

Shape assertions use machine-independent counters (execution steps,
table sizes) wherever possible so they hold on slow CI machines too.

The series tables are replayed in the terminal summary so they reach
stdout whatever capture mode pytest runs under.
"""

import pytest

from repro.complexity.runner import recorded_series


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_series()
    if not tables:
        return
    terminalreporter.section("experiment series (paper artifacts)")
    for table in tables:
        for line in table.splitlines():
            terminalreporter.write_line(line)
