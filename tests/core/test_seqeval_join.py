"""Join ordering in the sequential evaluator (SequentialEngine).

``_plan_seq`` reorders only maximal contiguous runs of ``Test`` parts
inside a sequence: tests neither update the database nor fail for
safety reasons, so such a run is a conjunctive query whose answer set
is order-independent.  Updates, calls, builtins, and negation are
barriers the plan must never cross.  Pinned here: the answer-set
differential against ``join_order=False``, barrier respect, and the
``join.reorders`` / ``unify.attempts`` counters.
"""

from repro import Database, SequentialEngine, parse_database, parse_goal, parse_program
from repro.obs import Instrumentation, instrumented


def canon(solutions):
    return sorted(
        (
            tuple(sorted((str(v), str(t)) for v, t in sol.bindings.items())),
            sol.database,
        )
        for sol in solutions
    )


#: ``pair`` is wide (30 facts), ``key`` a single fact; textually the
#: wide scan comes first, so the planner's win is large and measurable.
SKEWED = "pick(X) <- pair(X, Y) * key(X) * ins.chose(X).\n"
SKEWED_DB = (
    " ".join("pair(a%d, b%d)." % (i, i) for i in range(30)) + " key(a7)."
)


def run(text, goal, db_text, **kw):
    engine = SequentialEngine(parse_program(text), **kw)
    inst = Instrumentation.create()
    with instrumented(inst):
        solutions = list(
            engine.solve(parse_goal(goal), parse_database(db_text))
        )
    return solutions, inst.metrics


class TestDifferential:
    def test_skewed_run_answers_are_plan_independent(self):
        ordered, on = run(SKEWED, "pick(X)", SKEWED_DB)
        textual, off = run(SKEWED, "pick(X)", SKEWED_DB, join_order=False)
        assert canon(ordered) == canon(textual)
        assert len(ordered) == 1
        assert on.counter("join.reorders") == 1
        assert off.counter("join.reorders") == 0
        # The planned run probes ``key`` first and reaches ``pair`` with
        # X bound; the textual run fans out over all 30 pairs.
        assert on.counter("unify.attempts") * 2 <= off.counter(
            "unify.attempts"
        )

    def test_tabled_recursion_is_plan_independent(self):
        text = """
        walk(X, Y) <- edge(X, Y) * goal(Y) * ins.seen(Y).
        walk(X, Y) <- edge(X, Z) * walk(Z, Y).
        """
        db = "edge(a, b). edge(b, c). edge(c, d). goal(c). goal(d)."
        ordered, _ = run(text, "walk(a, Y)", db)
        textual, _ = run(text, "walk(a, Y)", db, join_order=False)
        assert canon(ordered) == canon(textual)
        assert ordered


class TestBarriers:
    def test_tests_never_cross_an_update(self):
        # ``q(X)`` only holds after the insert; a planner that hoisted
        # the empty (maximally selective) ``q`` test over the barrier
        # would lose the solution.
        ordered, _ = run("t(X) <- p(X) * ins.q(X) * q(X).", "t(X)", "p(a).")
        assert len(ordered) == 1

    def test_tests_never_cross_negation(self):
        # The run before ``not q(X)`` binds X; the run after it reads a
        # different predicate.  Moving either across the negation would
        # evaluate it unbound or against the wrong bindings.
        text = "t(X) <- p(X) * not q(X) * r(X) * ins.ok(X)."
        ordered, _ = run(text, "t(X)", "p(a). p(b). q(b). r(a). r(b).")
        textual, _ = run(
            text, "t(X)", "p(a). p(b). q(b). r(a). r(b).", join_order=False
        )
        assert canon(ordered) == canon(textual)
        assert len(ordered) == 1

    def test_tests_never_cross_a_builtin(self):
        # The builtin raises SafetyError on unbound input, so the test
        # run binding X must stay ahead of it.
        text = "t(X, Y) <- wide(Z) * n(X) * Y is X + 1 * m(Y) * ins.out(Y)."
        db = "wide(w1). wide(w2). n(1). m(2)."
        ordered, _ = run(text, "t(X, Y)", db)
        textual, _ = run(text, "t(X, Y)", db, join_order=False)
        assert canon(ordered) == canon(textual)
        assert len(ordered) == 1

    def test_single_test_runs_are_left_alone(self):
        # Nothing to reorder: the counter must stay silent.
        _, metrics = run(
            "t <- p(X) * ins.q(X) * r(X).", "t", "p(a). r(a)."
        )
        assert metrics.counter("join.reorders") == 0
