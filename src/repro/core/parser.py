"""Concrete syntax for Transaction Datalog.

The grammar follows the paper's notation, transliterated to ASCII::

    program   := (directive | rule)*
    directive := '#base' IDENT '/' INT '.'
    rule      := atom ('<-' body)? '.'
    body      := conc
    conc      := seq ('|' seq)*                     -- concurrent composition
    seq       := unary (('*' | ',') unary)*         -- sequential composition
    unary     := 'ins.' atom | 'del.' atom
               | 'not' atom | 'iso' '(' body ')'
               | 'true' | '(' body ')'
               | atom | builtin
    builtin   := term OP term | term 'is' arith
    atom      := IDENT ('(' term (',' term)* ')')?
    term      := IDENT | VAR | INT | '_'

``*`` transliterates the paper's sequential-composition operator (x) and
``iso(...)`` its isolation modality (.); the Unicode spellings ``⊗`` and
``⊙(...)`` are accepted too.  ``,`` is accepted as a synonym for ``*``
inside bodies, matching the Datalog reading of comma as serial
conjunction.  Comments run from ``%`` to end of line.

Terms starting with an uppercase letter or ``_`` are variables; ``_`` by
itself is an anonymous variable, fresh at each occurrence.

A *goal* is a body, optionally written ``?- body.``.

A *database* text is a list of ground facts: ``p(a). q(b, c).``
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from ..obs import hotspots as _hot
from .database import Database
from .formulas import (
    ArithExpr,
    BinOp,
    Builtin,
    Call,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    TRUTH,
    conc,
    seq,
)
from .program import Program, Rule
from .terms import Atom, Constant, Term, Variable

__all__ = [
    "ParseError",
    "as_goal",
    "parse_program",
    "parse_rules",
    "parse_goal",
    "parse_database",
    "parse_atom",
]


class ParseError(ValueError):
    """A syntax error, carrying line/column information."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_PUNCT = {
    "<-": "ARROW",
    ":-": "ARROW",
    "?-": "QUERY",
    ">=": "OP",
    "<=": "OP",
    "!=": "OP",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "DOT",
    "*": "STAR",
    "⊗": "STAR",
    "|": "BAR",
    "=": "OP",
    "<": "OP",
    ">": "OP",
    "+": "PLUS",
    "-": "MINUS",
    "/": "SLASH",
    "#": "HASH",
}

_KEYWORDS = {"not", "iso", "true", "is"}


@dataclass(frozen=True)
class _Token:
    kind: str  # IDENT, VAR, INT, INS, DEL, NOT, ISO, TRUE, IS, OP, ... , EOF
    text: str
    line: int
    column: int


def _tokenize(text: str) -> Iterator[_Token]:
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        if ch == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        # Two-character punctuation first.
        two = text[i : i + 2]
        if two in _PUNCT:
            yield _Token(_PUNCT[two], two, start_line, start_col)
            i += 2
            col += 2
            continue
        if ch in _PUNCT:
            if ch == "⊙":
                yield _Token("ISO", ch, start_line, start_col)
            else:
                yield _Token(_PUNCT[ch], ch, start_line, start_col)
            i += 1
            col += 1
            continue
        if ch == "⊙":
            yield _Token("ISO", ch, start_line, start_col)
            i += 1
            col += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            yield _Token("INT", text[i:j], start_line, start_col)
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            col += j - i
            i = j
            # ins.p / del.p fuse with the following dot so the lexer can
            # tell an elementary-update prefix from an end-of-rule dot.
            if word in ("ins", "del") and i < n and text[i] == ".":
                nxt = text[i + 1] if i + 1 < n else ""
                if nxt.isalpha() or nxt == "_":
                    yield _Token(word.upper(), word + ".", start_line, start_col)
                    i += 1
                    col += 1
                    continue
            if word in _KEYWORDS:
                yield _Token(word.upper(), word, start_line, start_col)
            elif word[0].isupper() or word[0] == "_":
                yield _Token("VAR", word, start_line, start_col)
            else:
                yield _Token("IDENT", word, start_line, start_col)
            continue
        raise ParseError("unexpected character %r" % ch, line, col)
    yield _Token("EOF", "", line, col)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str):
        self._tokens = list(_tokenize(text))
        self._pos = 0
        self._anon = itertools.count(1)

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, kind: str) -> _Token:
        tok = self._peek()
        if tok.kind != kind:
            raise ParseError(
                "expected %s but found %r" % (kind, tok.text or "end of input"),
                tok.line,
                tok.column,
            )
        return self._next()

    def _accept(self, kind: str) -> Optional[_Token]:
        if self._peek().kind == kind:
            return self._next()
        return None

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(message, tok.line, tok.column)

    # -- grammar ----------------------------------------------------------------

    def parse_program_items(self) -> Tuple[List[Rule], List[Tuple[str, int]]]:
        rules: List[Rule] = []
        base: List[Tuple[str, int]] = []
        while self._peek().kind != "EOF":
            if self._accept("HASH"):
                word = self._expect("IDENT")
                if word.text != "base":
                    raise ParseError(
                        "unknown directive #%s" % word.text, word.line, word.column
                    )
                name = self._expect("IDENT").text
                self._expect("SLASH")
                arity = int(self._expect("INT").text)
                self._expect("DOT")
                base.append((name, arity))
                continue
            rules.append(self._rule())
        return rules, base

    def _rule(self) -> Rule:
        head = self._atom()
        if self._accept("ARROW"):
            body = self._body()
        else:
            body = TRUTH
        self._expect("DOT")
        return Rule(head, body)

    def parse_goal_text(self) -> Formula:
        self._accept("QUERY")
        body = self._body()
        self._accept("DOT")
        self._expect("EOF")
        return body

    def parse_database_text(self) -> Database:
        facts = []
        while self._peek().kind != "EOF":
            a = self._atom()
            self._expect("DOT")
            if not a.is_ground():
                raise self._error("database facts must be ground: %s" % a)
            facts.append(a)
        return Database(facts)

    def parse_single_atom(self) -> Atom:
        a = self._atom()
        self._expect("EOF")
        return a

    def _body(self) -> Formula:
        parts = [self._seq()]
        while self._accept("BAR"):
            parts.append(self._seq())
        return conc(*parts)

    def _seq(self) -> Formula:
        parts = [self._unary()]
        while self._peek().kind in ("STAR", "COMMA"):
            self._next()
            parts.append(self._unary())
        return seq(*parts)

    def _unary(self) -> Formula:
        tok = self._peek()
        if tok.kind == "INS":
            self._next()
            return Ins(self._atom())
        if tok.kind == "DEL":
            self._next()
            return Del(self._atom())
        if tok.kind == "NOT":
            self._next()
            return Neg(self._atom())
        if tok.kind == "ISO":
            self._next()
            self._expect("LPAREN")
            body = self._body()
            self._expect("RPAREN")
            return Isol(body)
        if tok.kind == "TRUE":
            self._next()
            return TRUTH
        if tok.kind == "LPAREN":
            self._next()
            body = self._body()
            self._expect("RPAREN")
            return body
        if tok.kind in ("VAR", "INT", "MINUS"):
            # Must be a builtin: a variable or number can only start a
            # comparison / 'is' binding.
            return self._builtin(self._arith())
        if tok.kind == "IDENT":
            a = self._atom()
            nxt = self._peek()
            if not a.args and nxt.kind in ("OP", "IS", "PLUS", "MINUS"):
                # It was really a constant term starting a builtin.
                return self._builtin(Constant(a.pred))
            return Call(a)
        raise self._error("expected a formula, found %r" % tok.text)

    def _builtin(self, left: ArithExpr) -> Formula:
        tok = self._peek()
        if tok.kind == "IS":
            self._next()
            right = self._arith()
            return Builtin("is", left, right)
        if tok.kind == "OP":
            op = self._next().text
            right = self._arith()
            return Builtin(op, left, right)
        raise self._error("expected a comparison operator after term")

    def _arith(self) -> ArithExpr:
        # Note: '*' is sequential composition in TD, so the concrete
        # syntax supports only '+' and '-' in arithmetic; multiplication
        # exists in the AST (BinOp '*') for programmatic construction.
        expr = self._arith_primary()
        while self._peek().kind in ("PLUS", "MINUS"):
            op = self._next().text
            right = self._arith_primary()
            expr = BinOp(op, expr, right)
        return expr

    def _arith_primary(self) -> ArithExpr:
        tok = self._peek()
        if tok.kind == "LPAREN":
            self._next()
            expr = self._arith()
            self._expect("RPAREN")
            return expr
        if tok.kind == "MINUS":
            self._next()
            inner = self._arith_primary()
            return BinOp("-", Constant(0), inner)
        return self._term()

    def _atom(self) -> Atom:
        name = self._expect("IDENT").text
        args: List[Term] = []
        if self._accept("LPAREN"):
            args.append(self._term())
            while self._accept("COMMA"):
                args.append(self._term())
            self._expect("RPAREN")
        return Atom(name, tuple(args))

    def _term(self) -> Term:
        tok = self._next()
        if tok.kind == "IDENT":
            return Constant(tok.text)
        if tok.kind == "INT":
            return Constant(int(tok.text))
        if tok.kind == "VAR":
            if tok.text == "_":
                return Variable("_Anon%d" % next(self._anon))
            return Variable(tok.text)
        raise ParseError("expected a term, found %r" % tok.text, tok.line, tok.column)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_program(text: str, strict: bool = False) -> Program:
    """Parse a full TD program (rules + ``#base`` directives)."""
    # Parse time is attributed (under a "parse" phase) when a cost
    # attributor is ambient, so profile-run coverage excludes it from
    # engine phases instead of leaving it unattributed.
    with _hot.engine_frame(_hot.active_attributor(), "parse"):
        rules, base = _Parser(text).parse_program_items()
        return Program(rules, base=base, strict=strict)


def parse_rules(text: str) -> List[Rule]:
    """Parse rules without building a program (for program composition)."""
    rules, base = _Parser(text).parse_program_items()
    if base:
        raise ValueError("#base directives are not allowed in rule fragments")
    return rules


def parse_goal(text: str) -> Formula:
    """Parse a goal body, e.g. ``"workflow(w1) | simulate"``.

    The result still contains generic calls; pass it through
    :meth:`Program.resolve_goal` (the engines do this automatically).
    """
    return _Parser(text).parse_goal_text()


def as_goal(goal: Union[str, Formula]) -> Formula:
    """Coerce *goal* to a :class:`Formula`: strings are parsed, formulas
    pass through.

    This is the shared goal-coercion helper behind the unified solve
    surface -- every public entry point (``Interpreter.solve``/``run``/
    ``simulate``, the analytic engines, ``Engine``, ``select_engine``)
    accepts either form and funnels through here.
    """
    if isinstance(goal, str):
        return parse_goal(goal)
    if isinstance(goal, Formula):
        return goal
    raise TypeError(
        "goal must be a str or a Formula, not %r" % type(goal).__name__
    )


def parse_database(text: str) -> Database:
    """Parse ``"p(a). q(b, c)."`` into a :class:`Database`."""
    return _Parser(text).parse_database_text()


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"done(T, W)"``."""
    return _Parser(text).parse_single_atom()
