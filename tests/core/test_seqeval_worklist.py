"""Regression tests for the dependency-driven tabling driver.

The worklist driver replaced naive full-table rounds; these tests pin
the behaviours that broke (or could break) during that change.
"""

import pytest

from repro import Database, SequentialEngine, parse_database, parse_goal, parse_program


class TestEmptyAnswerKeys:
    def test_unsatisfiable_key_terminates(self):
        # A key with a legitimately empty answer set must be computed
        # once and never re-enqueued (the empty-set-is-falsy hang).
        e = SequentialEngine(parse_program("p <- q(zz).\nq(X) <- base(X)."))
        assert not e.succeeds(parse_goal("p"), parse_database("base(a)."))

    def test_failing_recursion_terminates(self):
        e = SequentialEngine(parse_program("loop <- step * loop.\nstep <- gate."))
        assert not e.succeeds(parse_goal("loop"), Database())

    def test_mixed_empty_and_nonempty_keys(self):
        e = SequentialEngine(
            parse_program(
                """
                main <- deadend.
                main <- useful.
                deadend <- nothing(x).
                useful <- ins.ok.
                """
            )
        )
        (sol,) = e.solve(parse_goal("main"), Database())
        assert sol.database == parse_database("ok.")


class TestDependencyPropagation:
    def test_late_answers_reach_dependents(self):
        # path(0,N) depends on a chain of keys; the base answer appears
        # deep in the chain and must propagate all the way back.
        prog = parse_program(
            "path(X, Y) <- e(X, Y).\npath(X, Y) <- e(X, Z) * path(Z, Y)."
        )
        e = SequentialEngine(prog)
        db = parse_database(" ".join("e(n%d, n%d)." % (i, i + 1) for i in range(9)))
        assert e.succeeds(parse_goal("path(n0, n9)"), db)

    def test_mutual_recursion_propagates_both_ways(self):
        prog = parse_program(
            """
            even(X) <- zero(X).
            even(X) <- pred(X, Y) * odd(Y).
            odd(X) <- pred(X, Y) * even(Y).
            """
        )
        e = SequentialEngine(prog)
        facts = ["zero(n0)."] + ["pred(n%d, n%d)." % (i + 1, i) for i in range(8)]
        db = parse_database(" ".join(facts))
        assert e.succeeds(parse_goal("even(n8)"), db)
        assert not e.succeeds(parse_goal("even(n7)"), db)

    def test_state_changing_recursion_chains(self):
        # answers carry output states; a grown state set must propagate
        prog = parse_program(
            """
            pump <- item(X) * del.item(X) * ins.out(X) * pump.
            pump <- not item(_).
            """
        )
        e = SequentialEngine(prog)
        finals = e.final_databases(
            parse_goal("pump"), parse_database("item(a). item(b). item(c).")
        )
        assert parse_database("out(a). out(b). out(c).") in finals


class TestTableReuseAcrossQueries:
    def test_second_query_reuses_and_extends(self):
        prog = parse_program(
            "path(X, Y) <- e(X, Y).\npath(X, Y) <- e(X, Z) * path(Z, Y)."
        )
        e = SequentialEngine(prog)
        db = parse_database("e(a, b). e(b, c). e(c, d).")
        assert e.succeeds(parse_goal("path(a, b)"), db)
        keys_before, _ = e.table_size
        # a different goal must extend the same table, not corrupt it
        assert e.succeeds(parse_goal("path(a, d)"), db)
        keys_after, _ = e.table_size
        assert keys_after >= keys_before
        # and the first result still holds
        assert e.succeeds(parse_goal("path(a, b)"), db)

    def test_different_databases_key_apart(self):
        prog = parse_program("hit <- p(a).")
        e = SequentialEngine(prog)
        assert e.succeeds(parse_goal("hit"), parse_database("p(a)."))
        assert not e.succeeds(parse_goal("hit"), parse_database("p(b)."))

    def test_goal_discovering_keys_after_drain(self):
        # The goal's own evaluation can reach new call patterns only
        # after earlier drains produced answers: the re-seed loop.
        prog = parse_program(
            """
            stage1(X) <- src(X) * ins.mid(X).
            stage2(Y) <- mid(Y) * ins.out(Y).
            """
        )
        e = SequentialEngine(prog)
        (sol,) = e.solve(
            parse_goal("stage1(X) * stage2(X)"), parse_database("src(v).")
        )
        assert sol.database == parse_database("src(v). mid(v). out(v).")
