"""Tests for the isolation modality: atomicity and serializability.

Isolation is the paper's bridge from processes back to transactions:
``iso(a)`` executes ``a`` with no interleaving from siblings, and
``iso(t1) | iso(t2) | ...`` executes the ``ti`` serializably.
"""

import pytest

from repro import Database, Interpreter, atom, parse_database, parse_goal, parse_program


def interp(text, **kw):
    return Interpreter(parse_program(text), **kw)


class TestAtomicity:
    def test_iso_executes_body(self):
        i = interp("t <- iso(ins.p(a) * ins.q(b)).")
        (sol,) = i.solve(parse_goal("t"), Database())
        assert sol.database == parse_database("p(a). q(b).")

    def test_iso_failure_is_failure(self):
        i = interp("t <- iso(ins.p(a) * missing(x)).")
        assert not i.succeeds(parse_goal("t"), Database())

    def test_iso_binds_outer_variables(self):
        i = interp("t(X) <- iso(item(X) * del.item(X)).")
        sols = list(i.solve(parse_goal("t(X)"), parse_database("item(a).")))
        assert len(sols) == 1
        assert str(next(iter(sols[0].bindings.values()))) == "a"

    def test_no_sibling_interleaving_inside_iso(self):
        # The isolated body requires flag absent at start AND end; the
        # sibling inserts flag.  Without isolation there is an
        # interleaving where the sibling's insert lands in the middle --
        # harmless here -- but crucially the isolated body can never
        # observe flag both absent and present.
        prog = """
        critical <- iso(not flag * ins.work * not flag).
        intruder <- ins.flag.
        """
        i = interp(prog)
        finals = i.final_databases(parse_goal("critical | intruder"), Database())
        # both orders exist (iso before/after intruder's insert)...
        assert parse_database("work. flag.") in finals
        # ...but in every final state work was decided atomically
        for db in finals:
            assert atom("work") in db

    def test_interleaving_possible_without_iso(self):
        # Contrast case: without iso the intruder CAN land mid-body, so
        # there is an execution where the second `not flag` fails -- but
        # also executions that commit.  With iso the mid-body landing is
        # impossible, which test_no_sibling_interleaving_inside_iso pins.
        prog = """
        critical <- not flag * ins.work * not flag.
        intruder <- ins.flag.
        """
        i = interp(prog)
        assert i.succeeds(parse_goal("critical | intruder"), Database())


class TestSerializability:
    def test_concurrent_isolated_transfers_conserve_money(self):
        prog = """
        transfer(F, T, Amt) <- iso(
            balance(F, B1) * B1 >= Amt *
            del.balance(F, B1) * B1n is B1 - Amt * ins.balance(F, B1n) *
            balance(T, B2) *
            del.balance(T, B2) * B2n is B2 + Amt * ins.balance(T, B2n)
        ).
        """
        i = interp(prog, max_configs=500_000)
        db = parse_database("balance(a, 100). balance(b, 100).")
        goal = parse_goal("transfer(a, b, 30) | transfer(b, a, 10)")
        finals = i.final_databases(goal, db)
        assert finals  # both transfers can commit
        for final in finals:
            total = sum(f.args[1].value for f in final.facts("balance"))
            assert total == 200

    def test_serializable_outcomes_only(self):
        # Two isolated increments of a register: the lost-update anomaly
        # (both read 0, both write 1) must be impossible.
        prog = """
        bump <- iso(reg(V) * del.reg(V) * V2 is V + 1 * ins.reg(V2)).
        """
        i = interp(prog)
        finals = i.final_databases(parse_goal("bump | bump"), parse_database("reg(0)."))
        assert finals == {parse_database("reg(2).")}

    def test_lost_update_without_isolation(self):
        # The same body without iso exhibits the anomaly: reg(1) is a
        # reachable final state (both processes read 0).
        prog = """
        bump <- reg(V) * del.reg(V) * V2 is V + 1 * ins.reg(V2).
        """
        i = interp(prog)
        finals = i.final_databases(parse_goal("bump | bump"), parse_database("reg(0)."))
        assert parse_database("reg(2).") in finals
        assert parse_database("reg(1).") in finals


class TestNestedTransactions:
    def test_subtransaction_failure_aborts_parent(self, bank_program, bank_db):
        i = Interpreter(bank_program)
        # withdraw would succeed but deposit's account is missing:
        # relative commit -- the whole transfer fails, leaving balances
        # untouched (the committed withdraw is rolled back with it).
        assert not i.succeeds(parse_goal("transfer(a, nosuch, 10)"), bank_db)

    def test_successful_nested_transfer(self, bank_program, bank_db):
        i = Interpreter(bank_program)
        (sol,) = i.solve(parse_goal("transfer(a, b, 30)"), bank_db)
        assert sol.database == parse_database("balance(a, 70). balance(b, 40).")

    def test_insufficient_funds(self, bank_program, bank_db):
        i = Interpreter(bank_program)
        assert not i.succeeds(parse_goal("transfer(b, a, 500)"), bank_db)

    def test_nested_iso(self):
        prog = """
        outer <- iso(ins.a * inner * ins.c).
        inner <- iso(ins.b).
        """
        i = interp(prog)
        (sol,) = i.solve(parse_goal("outer"), Database())
        assert sol.database == parse_database("a. b. c.")

    def test_iso_trace_records_subtrace(self):
        i = interp("t <- iso(ins.p(a)).")
        exe = i.simulate(parse_goal("t"), Database())
        iso_actions = [a for a in exe.trace if a.kind == "iso"]
        assert len(iso_actions) == 1
        assert any(sub.kind == "ins" for sub in iso_actions[0].subtrace)
