"""Tests for history monitoring queries."""

import pytest

from repro import Database, atom
from repro.datalog import evaluate
from repro.workflow import (
    agent_workload,
    completed_items,
    history_program,
    task_counts,
)
from repro.workflow.monitor import in_progress, status_report


@pytest.fixture
def history():
    return Database([
        atom("started", "prep", "w1"),
        atom("done", "prep", "w1", "alice"),
        atom("started", "prep", "w2"),
        atom("done", "prep", "w2", "bob"),
        atom("started", "scan", "w1"),
        atom("done", "scan", "w1", "auto"),
        atom("started", "scan", "w2"),  # w2's scan still running
        atom("available", "alice"),
        atom("available", "bob"),
        atom("available", "carol"),
    ])


class TestQueries:
    def test_completed_items(self, history):
        assert completed_items(history, "prep") == ["w1", "w2"]
        assert completed_items(history, "scan") == ["w1"]

    def test_task_counts(self, history):
        assert task_counts(history) == {"prep": 2, "scan": 1}

    def test_agent_workload(self, history):
        assert agent_workload(history) == {"alice": 1, "bob": 1, "auto": 1}

    def test_in_progress(self, history):
        assert in_progress(history) == [("scan", "w2")]

    def test_status_report_renders(self, history):
        report = status_report(history)
        assert "prep" in report and "alice" in report
        assert "scan/w2" in report


class TestHistoryProgram:
    def test_touched_and_idle(self, history):
        facts = evaluate(history_program(), history)
        assert atom("touched", "w1") in facts
        assert atom("touched", "w2") in facts
        assert atom("idle", "carol") in facts
        assert atom("idle", "alice") not in facts

    def test_worked_with(self, history):
        facts = evaluate(history_program(), history)
        assert atom("worked_with", "alice", "auto") in facts  # both on w1
        assert atom("worked_with", "alice", "bob") not in facts


class TestSpanCorrelation:
    def test_status_report_echoes_span_id(self, history):
        report = status_report(history, span_id="s12")
        assert report.splitlines()[0] == "engine trace span: s12"

    def test_status_report_omits_header_without_span(self, history):
        assert "engine trace span" not in status_report(history)

    def test_simulated_run_span_flows_into_report(self):
        from repro.lims import build_lab_simulator, sample_batch
        from repro.obs import Instrumentation, instrumented

        inst = Instrumentation.create()
        with instrumented(inst):
            result = build_lab_simulator().run(sample_batch(1))
        assert result.span_id is not None
        report = status_report(result.history, span_id=result.span_id)
        assert "engine trace span: %s" % result.span_id in report
        # the id names a real span in the engine trace
        assert any(s.span_id == result.span_id for s in inst.tracer.spans)
