"""Human-readable profiling reports over a metrics/trace bundle.

This is what ``--profile`` prints: one aligned text table covering the
engine chosen, the sublanguage, every counter/gauge/histogram, wall
times, and a digest of the span tree.  The format is stable-ish but
meant for eyes; machine consumers should use
:meth:`repro.obs.metrics.Metrics.snapshot` or the JSON-lines trace.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from .context import Instrumentation
from .metrics import Metrics

__all__ = ["render_report", "render_metrics"]

#: Counters every profile report shows even when zero -- the headline
#: numbers a reader expects to find regardless of which engine ran.
_ALWAYS_SHOW_COUNTERS = (
    "search.configs_expanded",
    "search.steps",
    "unify.attempts",
    "table.hits",
    "table.misses",
    "por.steps_pruned",
    "frontier.subsumed",
    "join.reorders",
    "prov.nodes",
    "prov.dropped",
)
_ALWAYS_SHOW_GAUGES = (
    "budget.spent",
    "budget.limit",
)


def _rows(title: str, pairs) -> List[str]:
    lines = [title + ":"]
    width = max((len(name) for name, _ in pairs), default=0)
    for name, value in pairs:
        lines.append("  %-*s  %s" % (width, name, value))
    return lines


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.3f s" % seconds
    return "%.3f ms" % (seconds * 1e3)


def render_metrics(metrics: Metrics) -> str:
    """The metrics registry alone, as an aligned text table."""
    lines: List[str] = []
    if metrics.info:
        lines.extend(_rows("run", sorted(metrics.info.items())))
    counters = dict(metrics.counters)
    for name in _ALWAYS_SHOW_COUNTERS:
        counters.setdefault(name, 0)
    lines.extend(_rows("counters", sorted(counters.items())))
    gauges = dict(metrics.gauges)
    for name in _ALWAYS_SHOW_GAUGES:
        gauges.setdefault(name, 0)
    lines.extend(
        _rows("gauges", [(k, "%g" % v) for k, v in sorted(gauges.items())])
    )
    if metrics.histograms:
        lines.extend(
            _rows(
                "histograms",
                [
                    (
                        name,
                        "count=%d mean=%.2f min=%g p50=%g p95=%g max=%g"
                        % (
                            h.count,
                            h.mean,
                            h.min or 0,
                            h.percentile(50),
                            h.percentile(95),
                            h.max or 0,
                        ),
                    )
                    for name, h in sorted(metrics.histograms.items())
                ],
            )
        )
    if metrics.timers:
        lines.extend(
            _rows(
                "wall time",
                [
                    (name, _format_seconds(seconds))
                    for name, seconds in sorted(metrics.timers.items())
                ],
            )
        )
    return "\n".join(lines)


def render_report(inst: Instrumentation) -> str:
    """Full profile report: metrics table plus a span-tree digest."""
    lines = ["== profile " + "=" * 49, render_metrics(inst.metrics)]
    spans = inst.tracer.spans
    if spans:
        by_name = Counter(span.name for span in spans)
        pairs = [
            (name, "%d span%s" % (n, "" if n == 1 else "s"))
            for name, n in sorted(by_name.items())
        ]
        pairs.append(("tree depth", str(inst.tracer.max_depth)))
        lines.extend(_rows("spans", pairs))
    return "\n".join(lines)
