"""Evaluator for *nonrecursive* Transaction Datalog.

Theorem 4.7 of the paper: dropping recursion collapses data complexity
from RE to below PTIME.  The reason is visible in the evaluator below --
with an acyclic call graph, top-down evaluation bottoms out after at most
``depth(call graph)`` unfoldings, and memoizing on ``(call, state)``
pairs keeps the work polynomial in the database for a fixed program.

The evaluator accepts sequential nonrecursive programs directly.  For
nonrecursive programs that *do* use concurrent composition, the engine
delegates to the small-step interpreter, which terminates on them (the
configuration space is finite because processes cannot grow), but note
that naive interleaving search is exponential in the number of branches:
the paper's polynomial bound relies on cleverer algorithms than
interleaving enumeration.  The benchmark suite measures exactly this
contrast.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..obs import hotspots as _hot
from ..obs.context import Instrumentation, NOOP, active
from ..obs.provenance import active_recorder, db_delta, render_bindings
from .database import Database
from .errors import SafetyError, UnsupportedProgramError
from .formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
    formula_variables,
    walk_formulas,
)
from .interpreter import Interpreter, Solution, _resolve_store
from .parser import as_goal
from .program import Program
from .seqeval import _canonical_call
from .terms import Atom, Variable
from .unify import Substitution, apply_atom, unify_atoms, walk

__all__ = ["NonrecursiveEngine"]


class NonrecursiveEngine:
    """Memoized top-down evaluator for nonrecursive TD.

    Use :func:`repro.core.analysis.analyze` (or the engine façade) to
    check nonrecursiveness; this class trusts its caller and would loop
    on recursive programs like any top-down evaluator.
    """

    def __init__(
        self, program: Program, provenance=None, attribution=None, *, store=None
    ):
        self.program = program
        #: Optional storage backend (see :class:`repro.store.Store` and
        #: docs/STORAGE.md), duck-typed; supplies the initial state when
        #: ``solve`` is called without a database.  Explicit beats the
        #: ambient provider.
        self.store = store
        #: Derivation recorder (see :mod:`repro.obs.provenance`); falls
        #: back to the ambient recorder when unset.
        self.provenance = provenance
        #: Cost attributor (see :mod:`repro.obs.hotspots`); same
        #: explicit-beats-ambient resolution as ``provenance``.
        self.attribution = attribution
        self._has_conc = any(
            isinstance(sub, Conc)
            for rule in program.rules
            for sub in walk_formulas(rule.body)
        )
        self._fallback = (
            Interpreter(
                program,
                provenance=provenance,
                attribution=attribution,
                store=store,
            )
            if self._has_conc
            else None
        )
        # Memo: (canonical call atom, db) -> list of (values, db_out).
        self._memo: Dict[Tuple[Atom, Database], List] = {}
        # Instrumentation for the current solve (NOOP when inactive).
        self._obs: Instrumentation = NOOP
        # Provenance scratch for the current solve.
        self._prov_rec = None
        self._prov_root = None
        # Cost attributor scratch for the current solve (None when off).
        self._attr_cur = None

    def solve(
        self, goal: "str | Formula", db: Optional[Database] = None
    ) -> Iterator[Solution]:
        _, db = _resolve_store(self.store, db)
        goal = self.program.resolve_goal(as_goal(goal))
        goal_has_conc = any(isinstance(s, Conc) for s in walk_formulas(goal))
        if self._fallback is not None or goal_has_conc:
            fallback = self._fallback or Interpreter(
                self.program,
                provenance=self.provenance,
                attribution=self.attribution,
                store=self.store,
            )
            yield from fallback.solve(goal, db)
            return
        goal_vars = _ordered_vars(goal)
        obs = self._obs = active()
        prov = self._prov_rec = (
            self.provenance if self.provenance is not None else active_recorder()
        )
        attr = self._attr_cur = (
            self.attribution
            if self.attribution is not None
            else _hot.active_attributor()
        )
        self._prov_root = (
            prov.record("config", str(goal), disposition="root")
            if prov is not None
            else None
        )

        def _search():
            with obs.span("solve", engine="nonrec", goal=str(goal)):
                emitted = set()
                for theta, final_db in self._eval(goal, db, {}):
                    bindings = {v: walk(v, theta) for v in goal_vars}
                    key = (tuple(sorted(bindings.items())), final_db)
                    if key not in emitted:
                        emitted.add(key)
                        if obs.enabled:
                            obs.metrics.inc("search.solutions")
                        if prov is not None:
                            ins, dels = db_delta(db, final_db)
                            # Answer labels carry the bindings applied (see
                            # the same rendering choice in seqeval.solve).
                            label = (
                                str(apply_atom(goal.atom, bindings))
                                if isinstance(goal, Call)
                                else str(goal)
                            )
                            prov.record(
                                "answer",
                                label,
                                parent=self._prov_root,
                                disposition="solution",
                                bindings=render_bindings(bindings),
                                inserted=ins,
                                deleted=dels,
                            )
                        yield Solution(bindings, final_db)
                if obs.enabled:
                    obs.metrics.set_gauge("table.keys", len(self._memo))
                    obs.metrics.set_gauge(
                        "table.answers", sum(len(v) for v in self._memo.values())
                    )

        yield from _hot.meter_engine(attr, _search(), "nonrec")

    def succeeds(self, goal: Formula, db: Database) -> bool:
        for _ in self.solve(goal, db):
            return True
        return False

    def final_databases(self, goal: Formula, db: Database) -> Set[Database]:
        return {sol.database for sol in self.solve(goal, db)}

    # -- evaluation ---------------------------------------------------------------

    def _eval(
        self, f: Formula, db: Database, theta: Substitution
    ) -> Iterator[Tuple[Substitution, Database]]:
        if isinstance(f, Truth):
            yield theta, db
            return
        if isinstance(f, Test):
            yield from ((t, db) for t in db.match(f.atom, theta))
            return
        if isinstance(f, Neg):
            if not db.holds(f.atom, theta):
                yield theta, db
            return
        if isinstance(f, Ins):
            a = apply_atom(f.atom, theta)
            if not a.is_ground():
                raise SafetyError("ins with unbound variables: %s" % (a,))
            yield theta, db.insert(a)
            return
        if isinstance(f, Del):
            a = apply_atom(f.atom, theta)
            if not a.is_ground():
                raise SafetyError("del with unbound variables: %s" % (a,))
            yield theta, db.delete(a)
            return
        if isinstance(f, Builtin):
            try:
                out = f.evaluate(theta)
            except ValueError as exc:
                raise SafetyError(str(exc)) from exc
            if out is not None:
                yield out, db
            return
        if isinstance(f, Seq):
            yield from self._eval_seq(f.parts, 0, db, theta)
            return
        if isinstance(f, Isol):
            yield from self._eval(f.body, db, theta)
            return
        if isinstance(f, Call):
            yield from self._eval_call(f.atom, db, theta)
            return
        raise UnsupportedProgramError(
            "formula %r is outside the nonrecursive sequential fragment"
            % type(f).__name__
        )

    def _eval_seq(self, parts, idx, db, theta):
        if idx == len(parts):
            yield theta, db
            return
        for theta2, db2 in self._eval(parts[idx], db, theta):
            yield from self._eval_seq(parts, idx + 1, db2, theta2)

    def _eval_call(self, atom: Atom, db: Database, theta: Substitution):
        instantiated = apply_atom(atom, theta)
        canon_atom, originals = _canonical_call(instantiated)
        key = (canon_atom, db)
        answers = self._memo.get(key)
        obs = self._obs
        prov = self._prov_rec
        if obs.enabled:
            obs.metrics.inc("table.misses" if answers is None else "table.hits")
        if answers is None:
            call_node = None
            if prov is not None:
                parent = prov.current_parent
                call_node = prov.record(
                    "call",
                    str(canon_atom),
                    parent=parent if parent is not None else self._prov_root,
                    witness={"table": "miss"},
                )
                # The compute section below runs to completion inside
                # this generator's first ``next()``, so push/pop nesting
                # is well-bracketed even across lazy consumers.
                prov.push(call_node)
            answers = []
            seen = set()
            canon_vars: List[Variable] = []
            seen_vars: Dict[Variable, None] = {}
            for t in canon_atom.args:
                if isinstance(t, Variable):
                    seen_vars.setdefault(t, None)
            canon_vars = list(seen_vars)
            attr = self._attr_cur
            try:
                # Indexed dispatch: head matching for this canonical call
                # shape is memoized on the program (see Program.match_rules).
                for rule, theta0 in self.program.match_rules(canon_atom):
                    # The compute section runs to completion inside the
                    # first ``next()``, so the per-rule attribution frame
                    # brackets exactly (same argument as the prov push).
                    rule_token = (
                        attr.push(rule=_hot.rule_label(rule.head), predicate=canon_atom.pred)
                        if attr is not None
                        else None
                    )
                    try:
                        for theta1, db_out in self._eval(rule.body, db, theta0):
                            values = tuple(walk(v, theta1) for v in canon_vars)
                            if any(isinstance(v, Variable) for v in values):
                                raise SafetyError(
                                    "rule for %s does not bind all head variables"
                                    % (canon_atom,)
                                )
                            entry = (values, db_out)
                            if entry not in seen:
                                seen.add(entry)
                                answers.append(entry)
                                if attr is not None:
                                    attr.charge("steps.expansions", 1)
                                    ins_a, dels_a = db_delta(db, db_out)
                                    delta = len(ins_a) + len(dels_a)
                                    if delta:
                                        attr.charge("db.delta", delta)
                                if prov is not None:
                                    ins, dels = db_delta(db, db_out)
                                    prov.record(
                                        "answer",
                                        str(
                                            apply_atom(
                                                canon_atom,
                                                dict(zip(canon_vars, values)),
                                            )
                                        ),
                                        parent=call_node,
                                        bindings=render_bindings(
                                            dict(zip(canon_vars, values))
                                        ),
                                        inserted=ins,
                                        deleted=dels,
                                        witness={"rule": str(rule.head)},
                                    )
                    finally:
                        if rule_token is not None:
                            attr.pop(rule_token)
            finally:
                if prov is not None:
                    prov.pop()
            self._memo[key] = answers
        for values, db_out in answers:
            out = dict(theta)
            consistent = True
            for v, value in zip(originals, values):
                bound = walk(v, out)
                if isinstance(bound, Variable):
                    out[bound] = value
                elif bound != value:
                    consistent = False
                    break
            if consistent:
                yield out, db_out


def _ordered_vars(goal: Formula) -> List[Variable]:
    seen: Dict[Variable, None] = {}
    for v in formula_variables(goal):
        seen.setdefault(v, None)
    return list(seen)
