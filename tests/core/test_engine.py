"""Tests for the engine façade: routing programs to evaluators."""

import pytest

from repro import (
    Database,
    Interpreter,
    NonrecursiveEngine,
    SequentialEngine,
    Sublanguage,
    parse_database,
    parse_goal,
    parse_program,
    select_engine,
)


class TestRouting:
    def test_query_only_routes_to_tabled(self, tc_program):
        eng = select_engine(tc_program)
        assert eng.sublanguage is Sublanguage.QUERY_ONLY
        assert isinstance(eng.backend, SequentialEngine)
        assert eng.decidable

    def test_nonrecursive_routes_to_nonrec(self):
        eng = select_engine(parse_program("p <- q(X) * ins.r(X)."))
        assert eng.sublanguage is Sublanguage.NONRECURSIVE
        assert isinstance(eng.backend, NonrecursiveEngine)

    def test_sequential_routes_to_tabled(self):
        eng = select_engine(parse_program("p <- p * ins.x.\np <- del.go."))
        assert eng.sublanguage is Sublanguage.SEQUENTIAL
        assert isinstance(eng.backend, SequentialEngine)

    def test_fully_bounded_routes_to_interpreter(self):
        prog = parse_program(
            "drain <- item(X) * del.item(X) * drain.\ndrain <- not item(_)."
        )
        eng = select_engine(prog)
        assert eng.sublanguage is Sublanguage.FULLY_BOUNDED
        assert isinstance(eng.backend, Interpreter)
        assert eng.decidable

    def test_full_td_routes_to_interpreter(self, simulate_program):
        eng = select_engine(simulate_program)
        assert eng.sublanguage is Sublanguage.FULL
        assert isinstance(eng.backend, Interpreter)
        assert not eng.decidable

    def test_goal_affects_routing(self, tc_program):
        # A query-only program stays query-only...
        assert select_engine(tc_program).sublanguage is Sublanguage.QUERY_ONLY
        # ...but an updating goal moves the combination up the map
        # (tail-recursive + insert => fully bounded, not query-only).
        eng = select_engine(tc_program, "path(a, X) * ins.found(X)")
        assert eng.sublanguage is Sublanguage.FULLY_BOUNDED

    def test_goal_level_concurrency_stays_bounded(self):
        # A fixed number of concurrent tail-recursive processes in the
        # *goal* does not grow with recursion: still fully bounded.
        prog = parse_program("p <- ins.x * del.x * p.\np <- done.")
        assert select_engine(prog, "p | p").sublanguage is Sublanguage.FULLY_BOUNDED


class TestUniformAPI:
    def test_string_goals_accepted(self, tc_program, chain_db):
        eng = select_engine(tc_program)
        assert eng.succeeds("path(a, d)", chain_db)
        assert not eng.succeeds("path(d, a)", chain_db)

    def test_solve_and_final_databases(self):
        eng = select_engine(parse_program("t <- q(X) * ins.r(X)."))
        db = parse_database("q(a). q(b).")
        finals = eng.final_databases("t", db)
        assert len(finals) == 2

    def test_simulate_works_for_analytic_backends(self, tc_program, chain_db):
        # simulation is small-step; the façade constructs an interpreter
        eng = select_engine(tc_program)
        exe = eng.simulate("path(a, d)", chain_db)
        assert exe is not None
        assert any("e(" in ev for ev in exe.events)

    def test_all_backends_agree(self):
        # one program expressible in several fragments, forced through
        # each backend explicitly
        prog = parse_program("t <- q(X) * not r(X) * ins.r(X).")
        goal = parse_goal("t")
        db = parse_database("q(a). q(b). r(b).")
        finals = [
            Interpreter(prog).final_databases(goal, db),
            SequentialEngine(prog).final_databases(goal, db),
            NonrecursiveEngine(prog).final_databases(goal, db),
        ]
        assert finals[0] == finals[1] == finals[2]


class TestUnifiedGoalAPI:
    """Every solve surface accepts str | Formula via the shared coercer."""

    def test_as_goal_coerces_and_rejects(self):
        from repro import Formula, as_goal

        g = as_goal("p(X) * q(X)")
        assert isinstance(g, Formula)
        assert as_goal(g) is g
        with pytest.raises(TypeError):
            as_goal(42)

    def test_interpreter_accepts_string_goals(self, tc_program, chain_db):
        interp = Interpreter(tc_program)
        sols = list(interp.solve("path(a, X)", chain_db))
        assert len(sols) == 3
        assert interp.succeeds("path(a, d)", chain_db)
        assert len(interp.final_databases("path(a, d)", chain_db)) == 1
        assert list(interp.run("path(a, d)", chain_db))

    def test_interpreter_simulate_accepts_string_goal(self, tc_program, chain_db):
        exe = Interpreter(tc_program).simulate("path(a, d)", chain_db, seed=3)
        assert exe is not None

    def test_sequential_engine_accepts_string_goals(self, tc_program, chain_db):
        assert len(list(SequentialEngine(tc_program).solve("path(a, X)", chain_db))) == 3

    def test_nonrec_engine_accepts_string_goals(self):
        prog = parse_program("t <- q(X) * ins.r(X).")
        eng = NonrecursiveEngine(prog)
        assert len(list(eng.solve("t", parse_database("q(a). q(b).")))) == 2

    def test_blessed_module_level_solve(self, tc_program, chain_db):
        from repro import solve

        sols = list(solve(tc_program, "path(a, X)", chain_db))
        assert len(sols) == 3

    def test_blessed_solve_accepts_formula(self, tc_program, chain_db):
        from repro import solve

        sols = list(solve(tc_program, parse_goal("path(a, X)"), chain_db))
        assert len(sols) == 3


class TestDeprecationShims:
    """Pre-PR positional call shapes keep working, with a warning."""

    def test_select_engine_positional_max_configs_warns(self, tc_program):
        with pytest.warns(DeprecationWarning, match="max_configs"):
            eng = select_engine(tc_program, "path(a, d)", 10_000)
        assert isinstance(eng.backend, SequentialEngine)

    def test_select_engine_keyword_max_configs_is_silent(self, tc_program):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            select_engine(tc_program, "path(a, d)", max_configs=10_000)

    def test_select_engine_positional_value_is_used(self):
        prog = parse_program("loop <- ins.a | loop.")  # full TD -> Interpreter
        with pytest.warns(DeprecationWarning):
            eng = select_engine(prog, None, 1234)
        assert isinstance(eng.backend, Interpreter)
        assert eng.backend.max_configs == 1234

    def test_interpreter_simulate_positional_seed_warns(self, tc_program, chain_db):
        interp = Interpreter(tc_program)
        with pytest.warns(DeprecationWarning, match="seed"):
            exe = interp.simulate(parse_goal("path(a, d)"), chain_db, 3)
        assert exe is not None
        with pytest.warns(DeprecationWarning):
            exe = interp.simulate(parse_goal("path(a, d)"), chain_db, None, 50_000)
        assert exe is not None

    def test_engine_simulate_positional_seed_warns(self, tc_program, chain_db):
        eng = select_engine(tc_program)
        with pytest.warns(DeprecationWarning):
            exe = eng.simulate("path(a, d)", chain_db, 3)
        assert exe is not None

    def test_too_many_positionals_still_a_type_error(self, tc_program, chain_db):
        interp = Interpreter(tc_program)
        with pytest.raises(TypeError):
            interp.simulate(parse_goal("path(a, d)"), chain_db, 1, 2, 3)
        with pytest.raises(TypeError):
            select_engine(tc_program, "path(a, d)", 1, 2)
