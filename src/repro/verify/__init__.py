"""Workflow verification: model checking bounded TD programs.

The paper's companion line of work (Davulcu, Kifer et al., PODS 1998)
uses TD as the target language for workflow *reasoning* -- consistency
and verification of workflow specifications.  Fully bounded TD makes
this feasible: its configuration space is finite, so safety and
liveness questions reduce to graph analysis.

This subpackage builds the reachable configuration graph of a program +
goal + initial database (:func:`explore`) and answers the questions a
workflow designer asks before deployment:

* :func:`deadlocks` -- stuck configurations (no step, not finished):
  e.g. a task whose role no agent covers, or two workflows waiting on
  each other's tokens;
* :func:`invariant_holds` -- a safety property over every reachable
  database state (with a counterexample trace when violated);
* :func:`can_reach` / :func:`inevitably` -- possibility and inevitability
  of a condition (EF / AF in temporal-logic terms);
* :func:`may_diverge` -- existence of an infinite run (a reachable
  cycle);
* :func:`verify_workflow` -- the packaged report for a workflow
  simulator setup.
"""

from .diagnose import Diagnosis, diagnose
from .statespace import StateGraph, StateNode, explore
from .properties import (
    can_reach,
    deadlocks,
    inevitably,
    invariant_holds,
    may_diverge,
)
from .workflows import WorkflowReport, verify_workflow

__all__ = [
    "Diagnosis",
    "StateGraph",
    "StateNode",
    "WorkflowReport",
    "can_reach",
    "deadlocks",
    "diagnose",
    "explore",
    "inevitably",
    "invariant_holds",
    "may_diverge",
    "verify_workflow",
]
