"""Unit tests for terms and atoms."""

import pytest

from repro.core.terms import (
    Atom,
    Constant,
    Variable,
    atom,
    const,
    is_ground,
    term_from_python,
    var,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant(2)

    def test_string_and_int_payloads_differ(self):
        assert Constant("1") != Constant(1)

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_str(self):
        assert str(Constant("lab")) == "lab"
        assert str(Constant(42)) == "42"


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_distinct_from_constant(self):
        assert Variable("X") != Constant("X")

    def test_str(self):
        assert str(Variable("Work")) == "Work"


class TestAtom:
    def test_signature(self):
        a = atom("done", "t1", "w1", "alice")
        assert a.signature == ("done", 3)
        assert a.arity == 3

    def test_propositional_atom(self):
        a = atom("halt")
        assert a.args == ()
        assert str(a) == "halt"

    def test_str_with_args(self):
        a = Atom("p", (Constant("a"), Variable("X")))
        assert str(a) == "p(a, X)"

    def test_is_ground(self):
        assert atom("p", "a", 3).is_ground()
        assert not Atom("p", (Variable("X"),)).is_ground()

    def test_variables_yields_repeats_in_order(self):
        x, y = Variable("X"), Variable("Y")
        a = Atom("p", (x, y, x))
        assert list(a.variables()) == [x, y, x]

    def test_atoms_hashable_and_ordered(self):
        atoms = {atom("p", "a"), atom("p", "a"), atom("q", "a")}
        assert len(atoms) == 2
        assert sorted(atoms) == [atom("p", "a"), atom("q", "a")]


class TestConversions:
    def test_term_from_python_passthrough(self):
        v = Variable("X")
        assert term_from_python(v) is v
        c = Constant("a")
        assert term_from_python(c) is c

    def test_term_from_python_wraps_scalars(self):
        assert term_from_python("a") == Constant("a")
        assert term_from_python(7) == Constant(7)

    def test_term_from_python_rejects_other_types(self):
        with pytest.raises(TypeError):
            term_from_python(3.14)
        with pytest.raises(TypeError):
            term_from_python(["list"])

    def test_const_var_helpers(self):
        assert const("a") == Constant("a")
        assert var("X") == Variable("X")

    def test_is_ground_helper(self):
        assert is_ground([atom("p", "a"), atom("q")])
        assert not is_ground([atom("p", "a"), Atom("q", (Variable("X"),))])
