"""Property-based tests (hypothesis) for the core data structures and
semantic invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Database, Interpreter, parse_goal, parse_program
from repro.core.formulas import apply_subst, conc, seq
from repro.core.parser import parse_goal as pg
from repro.core.terms import Atom, Constant, Variable, atom
from repro.core.transitions import canonical_key
from repro.core.unify import apply_atom, match_atom, unify_atoms

# -- strategies -------------------------------------------------------------

constants = st.sampled_from([Constant(c) for c in "abcde"]) | st.integers(
    min_value=0, max_value=9
).map(Constant)
variables = st.sampled_from([Variable(v) for v in ("X", "Y", "Z")])
terms = constants | variables
preds = st.sampled_from(["p", "q", "r"])


@st.composite
def atoms(draw, ground=False):
    pred = draw(preds)
    arity = draw(st.integers(min_value=0, max_value=3))
    pool = constants if ground else terms
    args = tuple(draw(pool) for _ in range(arity))
    return Atom(pred, args)


@st.composite
def databases(draw):
    facts = draw(st.lists(atoms(ground=True), max_size=12))
    return Database(facts)


# -- database laws ------------------------------------------------------------


class TestDatabaseLaws:
    @given(databases(), atoms(ground=True))
    def test_insert_then_contains(self, db, fact):
        assert fact in db.insert(fact)

    @given(databases(), atoms(ground=True))
    def test_delete_then_absent(self, db, fact):
        assert fact not in db.delete(fact)

    @given(databases(), atoms(ground=True))
    def test_insert_idempotent(self, db, fact):
        once = db.insert(fact)
        assert once.insert(fact) == once

    @given(databases(), atoms(ground=True))
    def test_delete_inverts_insert_on_fresh_fact(self, db, fact):
        if fact not in db:
            assert db.insert(fact).delete(fact) == db

    @given(databases(), atoms(ground=True), atoms(ground=True))
    def test_independent_updates_commute(self, db, f1, f2):
        if f1 != f2:
            assert db.insert(f1).insert(f2) == db.insert(f2).insert(f1)
            assert db.delete(f1).delete(f2) == db.delete(f2).delete(f1)

    @given(databases())
    def test_iteration_reconstructs(self, db):
        assert Database(list(db)) == db

    @given(databases(), databases())
    def test_equality_is_content(self, d1, d2):
        assert (d1 == d2) == (set(d1) == set(d2))


# -- unification laws -----------------------------------------------------------


class TestUnificationLaws:
    @given(atoms(), atoms())
    def test_unifier_actually_unifies(self, a1, a2):
        theta = unify_atoms(a1, a2)
        if theta is not None:
            assert apply_atom(a1, theta) == apply_atom(a2, theta)

    @given(atoms(), atoms(ground=True))
    def test_match_instantiates_to_fact(self, pattern, fact):
        theta = match_atom(pattern, fact)
        if theta is not None:
            assert apply_atom(pattern, theta) == fact

    @given(atoms())
    def test_self_unification_is_trivial(self, a):
        theta = unify_atoms(a, a)
        assert theta is not None
        assert apply_atom(a, theta) == a


# -- canonical key laws -----------------------------------------------------------


class TestCanonicalKeyLaws:
    @given(atoms(), atoms())
    def test_conc_commutative_under_key(self, a1, a2):
        from repro.core.formulas import Call

        f1 = conc(Call(a1), Call(a2))
        f2 = conc(Call(a2), Call(a1))
        assert canonical_key(f1, sort_conc=True) == canonical_key(f2, sort_conc=True)

    @given(atoms())
    def test_key_stable(self, a):
        from repro.core.formulas import Call

        f = seq(Call(a), Call(a))
        assert canonical_key(f) == canonical_key(f)


# -- semantic invariants ------------------------------------------------------------


def _finals(prog_text, goal_text, db):
    interp = Interpreter(parse_program(prog_text), max_configs=100_000)
    return interp.final_databases(parse_goal(goal_text), db)


class TestSemanticInvariants:
    @settings(max_examples=25, deadline=None)
    @given(databases())
    def test_query_preserves_database(self, db):
        finals = _finals("x <- y.", "p(X)", db)
        for final in finals:
            assert final == db

    @settings(max_examples=25, deadline=None)
    @given(databases(), atoms(ground=True))
    def test_ins_is_union(self, db, fact):
        goal = "ins.%s" % fact
        (final,) = _finals("x <- y.", goal, db)
        assert final == db.insert(fact)

    @settings(max_examples=20, deadline=None)
    @given(databases())
    def test_conc_of_inserts_order_independent(self, db):
        finals = _finals("x <- y.", "ins.m1 | ins.m2", db)
        assert finals == {db.insert(atom("m1")).insert(atom("m2"))}

    @settings(max_examples=20, deadline=None)
    @given(databases())
    def test_iso_equals_body_when_alone(self, db):
        # with no siblings, iso(a) and a have the same final states
        with_iso = _finals("x <- y.", "iso(del.p(a) * ins.q(b))", db)
        without = _finals("x <- y.", "del.p(a) * ins.q(b)", db)
        assert with_iso == without

    @settings(max_examples=15, deadline=None)
    @given(databases())
    def test_seq_associativity_semantics(self, db):
        lhs = _finals("x <- y.", "(ins.a * del.b) * ins.c", db)
        rhs = _finals("x <- y.", "ins.a * (del.b * ins.c)", db)
        assert lhs == rhs

    @settings(max_examples=15, deadline=None)
    @given(databases())
    def test_conc_commutativity_semantics(self, db):
        lhs = _finals("x <- y.", "(ins.a * del.c) | del.b", db)
        rhs = _finals("x <- y.", "del.b | (ins.a * del.c)", db)
        assert lhs == rhs
