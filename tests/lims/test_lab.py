"""Tests for the genome-laboratory workload generator."""

import pytest

from repro import Sublanguage, analyze
from repro.lims import (
    build_lab_simulator,
    gel_pipeline,
    lab_agents,
    sample_batch,
    synthetic_history,
)
from repro.lims.lab import PIPELINE_TASKS
from repro.workflow import agent_workload, completed_items, task_counts
from repro.workflow.compiler import compile_workflows


class TestGenerators:
    def test_sample_batch_ids(self):
        assert sample_batch(3) == ["dna0000", "dna0001", "dna0002"]
        assert sample_batch(2, prefix="rna") == ["rna0000", "rna0001"]

    def test_lab_agents_roles(self):
        agents = lab_agents(n_clerks=1, n_techs=3, n_rigs=1, n_readers=1)
        roles = {a.name: a.qualifications for a in agents}
        assert roles["clerk0"] == ("clerk",)
        assert roles["rig0"] == ("gel_rig",)
        # techs beyond the rig count double as readers
        assert "reader" in roles["tech2"]
        assert roles["tech0"] == ("tech",)

    def test_pipeline_spec_valid(self):
        spec = gel_pipeline(iterate=True)
        spec.validate()
        assert {t.name for t in spec.tasks} == {t.name for t in PIPELINE_TASKS}

    def test_pipeline_iterate_fully_bounded(self):
        prog = compile_workflows([gel_pipeline(iterate=True)])
        assert analyze(prog).fully_bounded


class TestSimulation:
    def test_batch_flows_through(self):
        sim = build_lab_simulator()
        res = sim.run(sample_batch(4))
        assert res.completed("analyze") == sample_batch(4)
        counts = task_counts(res.history)
        assert counts["receive"] == 4
        assert counts["read_gel"] == 4

    def test_iterated_pipeline_completes(self):
        sim = build_lab_simulator(iterate=True)
        res = sim.run(sample_batch(2))
        assert res.completed("analyze") == sample_batch(2)

    def test_agents_do_only_their_roles(self):
        sim = build_lab_simulator()
        res = sim.run(sample_batch(3))
        for fact in res.history.facts("done"):
            task, _item, agent = (str(t) for t in fact.args)
            if task == "run_gel":
                assert agent.startswith("rig")
            if task == "receive":
                assert agent.startswith("clerk")
            if task == "analyze":
                assert agent == "auto"


class TestSyntheticHistory:
    def test_history_shape(self):
        db = synthetic_history(10, seed=1)
        assert len(db.facts("done")) == 10 * len(PIPELINE_TASKS)
        assert len(db.facts("started")) == 10 * len(PIPELINE_TASKS)

    def test_history_matches_simulation_schema(self):
        # queries written against simulated histories work on synthetic
        # ones: same predicates, same roles
        db = synthetic_history(5, seed=2)
        assert completed_items(db, "analyze") == sample_batch(5)
        workload = agent_workload(db)
        assert workload["auto"] == 5

    def test_qualifications_respected(self):
        db = synthetic_history(20, seed=3)
        qualified = {}
        for f in db.facts("qualified"):
            qualified.setdefault(str(f.args[0]), set()).add(str(f.args[1]))
        role_of = {t.name: t.role for t in PIPELINE_TASKS}
        for f in db.facts("done"):
            task, _item, agent = (str(t) for t in f.args)
            role = role_of[task]
            if role is not None:
                assert role in qualified[agent]

    def test_deterministic_by_seed(self):
        assert synthetic_history(8, seed=7) == synthetic_history(8, seed=7)
        assert synthetic_history(8, seed=7) != synthetic_history(8, seed=8)
