"""Tests for the Turing machine simulator and TM -> 2-stack compilation."""

import pytest

from repro.machines import TuringMachine, tm_to_two_stack
from repro.machines.turing import BLANK, TMConfig


def scan_right_machine():
    """Scans a's rightward; accepts at the first blank."""
    return TuringMachine(
        states=frozenset({"q0", "qa"}),
        input_alphabet=frozenset({"a"}),
        tape_alphabet=frozenset({"a", BLANK}),
        transitions={
            ("q0", "a"): [("q0", "a", "R")],
            ("q0", BLANK): [("qa", BLANK, "R")],
        },
        start="q0",
        accepting=frozenset({"qa"}),
    )


def even_a_machine():
    """Accepts words with an even number of a's."""
    return TuringMachine(
        states=frozenset({"even", "odd", "acc"}),
        input_alphabet=frozenset({"a"}),
        tape_alphabet=frozenset({"a", BLANK}),
        transitions={
            ("even", "a"): [("odd", "a", "R")],
            ("odd", "a"): [("even", "a", "R")],
            ("even", BLANK): [("acc", BLANK, "R")],
        },
        start="even",
        accepting=frozenset({"acc"}),
    )


def flip_flop_machine():
    """Writes b over a, moves left and right -- exercises both directions
    and tape extension on the left edge."""
    return TuringMachine(
        states=frozenset({"s", "back", "acc"}),
        input_alphabet=frozenset({"a"}),
        tape_alphabet=frozenset({"a", "b", BLANK}),
        transitions={
            ("s", "a"): [("back", "b", "R")],
            ("back", "a"): [("s", "a", "L")],
            ("back", "b"): [("s", "b", "L")],
            ("back", BLANK): [("acc", BLANK, "R")],
            ("s", "b"): [("s", "b", "R")],
            ("s", BLANK): [("acc", BLANK, "R")],
        },
        start="s",
        accepting=frozenset({"acc"}),
    )


class TestSimulator:
    def test_accepts(self):
        tm = scan_right_machine()
        assert tm.accepts([])
        assert tm.accepts(["a", "a", "a"])

    def test_parity(self):
        tm = even_a_machine()
        assert tm.accepts([])
        assert not tm.accepts(["a"])
        assert tm.accepts(["a", "a"])
        assert not tm.accepts(["a", "a", "a"])

    def test_rejects_by_halting(self):
        tm = even_a_machine()
        assert not tm.accepts(["a"])  # halts in `odd` with no transition

    def test_left_edge_extends_tape(self):
        tm = flip_flop_machine()
        assert tm.accepts(["a", "a"])

    def test_run_trace_records_configs(self):
        tm = scan_right_machine()
        trace = tm.run_trace(["a", "a"])
        assert trace[0].state == "q0"
        assert trace[-1].state == "qa"
        assert len(trace) >= 3

    def test_timeout_on_divergence(self):
        tm = TuringMachine(
            states=frozenset({"s"}),
            input_alphabet=frozenset({"a"}),
            tape_alphabet=frozenset({"a", BLANK}),
            transitions={("s", BLANK): [("s", "a", "R")]},
            start="s",
            accepting=frozenset(),
        )
        with pytest.raises(TimeoutError):
            tm.accepts([], max_steps=100)

    def test_validation_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            TuringMachine(
                states=frozenset({"s"}),
                input_alphabet=frozenset({"a"}),
                tape_alphabet=frozenset({"a", BLANK}),
                transitions={("s", "a"): [("s", "a", "X")]},
                start="s",
                accepting=frozenset(),
            )

    def test_validation_requires_blank(self):
        with pytest.raises(ValueError):
            TuringMachine(
                states=frozenset({"s"}),
                input_alphabet=frozenset({"a"}),
                tape_alphabet=frozenset({"a"}),
                transitions={},
                start="s",
                accepting=frozenset(),
            )

    def test_config_render(self):
        cfg = TMConfig("q0", ("a", "b"), 1)
        assert cfg.render() == "a[q0]b"


class TestCompilationToTwoStack:
    WORDS = [[], ["a"], ["a", "a"], ["a", "a", "a"], ["a"] * 4]

    @pytest.mark.parametrize("word", WORDS, ids=lambda w: "len%d" % len(w))
    def test_parity_machine_equivalence(self, word):
        tm = even_a_machine()
        tsm = tm_to_two_stack(tm)
        assert tm.accepts(word) == tsm.accepts(word)

    @pytest.mark.parametrize("word", WORDS, ids=lambda w: "len%d" % len(w))
    def test_scan_machine_equivalence(self, word):
        tm = scan_right_machine()
        tsm = tm_to_two_stack(tm)
        assert tm.accepts(word) == tsm.accepts(word)

    def test_left_moving_machine_equivalence(self):
        tm = flip_flop_machine()
        tsm = tm_to_two_stack(tm)
        for word in ([], ["a"], ["a", "a"]):
            assert tm.accepts(word) == tsm.accepts(word)
