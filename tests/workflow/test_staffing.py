"""Tests for static staffing analysis."""

import pytest

from repro.workflow import (
    Agent,
    Choice,
    Iterate,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WorkflowSpec,
)
from repro.workflow.staffing import analyze_staffing, peak_role_demand


TASKS = (
    Task("a", role="tech"),
    Task("b", role="tech"),
    Task("c", role="reader"),
    Task("d", None),
)


def spec(body, name="wf", tasks=TASKS):
    return WorkflowSpec(name, body, tasks)


class TestPeakDemand:
    def test_sequence_takes_max(self):
        s = spec(SeqFlow(Step("a"), Step("b")))
        assert peak_role_demand(s) == {"tech": 1}

    def test_parallel_sums(self):
        s = spec(ParFlow(Step("a"), Step("b")))
        assert peak_role_demand(s) == {"tech": 2}

    def test_choice_takes_max_branch(self):
        s = spec(Choice(ParFlow(Step("a"), Step("b")), Step("c")))
        assert peak_role_demand(s) == {"tech": 2, "reader": 1}

    def test_mixed_nesting(self):
        s = spec(SeqFlow(ParFlow(Step("a"), Step("c")), Step("b")))
        assert peak_role_demand(s) == {"tech": 1, "reader": 1}

    def test_automated_tasks_demand_nothing(self):
        s = spec(ParFlow(Step("d"), Step("d")))
        assert peak_role_demand(s) == {}

    def test_iterate_and_nonvital_transparent(self):
        s = spec(Iterate(NonVital(Step("a")), until="ok"))
        assert peak_role_demand(s) == {"tech": 1}

    def test_subflow_resolved(self):
        sub = spec(ParFlow(Step("a"), Step("b")), name="sub")
        main = spec(SeqFlow(Step("c"), Subflow("sub")), name="main")
        assert peak_role_demand(main, [main, sub]) == {"tech": 2, "reader": 1}

    def test_recursive_subflow_cut_off(self):
        looping = spec(SeqFlow(Step("a"), Subflow("wf")))
        assert peak_role_demand(looping) == {"tech": 1}


class TestStaffingReport:
    def test_adequate_pool(self):
        report = analyze_staffing(
            [spec(ParFlow(Step("a"), Step("b")))],
            [Agent("t1", ("tech",)), Agent("t2", ("tech",))],
        )
        assert report.adequate
        assert report.peak_demand == {"tech": 2}
        assert not report.uncovered_roles

    def test_uncovered_role(self):
        report = analyze_staffing(
            [spec(Step("c"))], [Agent("t1", ("tech",))]
        )
        assert report.uncovered_roles == ("reader",)
        assert not report.adequate

    def test_bottleneck_detected(self):
        report = analyze_staffing(
            [spec(ParFlow(Step("a"), Step("b")))],
            [Agent("t1", ("tech",))],
        )
        assert report.bottleneck_roles == ("tech",)
        assert not report.adequate

    def test_irreplaceable_agents(self):
        report = analyze_staffing(
            [spec(SeqFlow(Step("a"), Step("c")))],
            [Agent("t1", ("tech",)), Agent("t2", ("tech", "reader"))],
        )
        assert report.irreplaceable_agents == {"t2": ("reader",)}

    def test_summary_renders(self):
        report = analyze_staffing(
            [spec(ParFlow(Step("a"), Step("b")))],
            [Agent("t1", ("tech",))],
        )
        text = report.summary()
        assert "bottleneck" in text
        assert "staffing adequate:   no" in text

    def test_matches_dynamic_verification(self):
        """Static 'not adequate' for uncovered roles implies dynamic
        'not completable' -- cross-check with the model checker."""
        from repro.verify import verify_workflow
        from repro.workflow import WorkflowSimulator

        s = spec(SeqFlow(Step("a"), Step("c")))
        pool = [Agent("t1", ("tech",))]
        static = analyze_staffing([s], pool)
        assert "reader" in static.uncovered_roles
        sim = WorkflowSimulator([s], agents=pool)
        dynamic = verify_workflow(sim, ["w1"], final_task="c")
        assert not dynamic.completable
