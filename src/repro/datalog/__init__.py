"""Classical Datalog substrate.

TD is "Datalog plus process modeling": its query-only fragment *is*
classical Datalog, and the paper repeatedly appeals to Datalog technology
(least fixpoints, tabling, magic sets) when discussing the tame
sublanguages.  This subpackage provides a standalone bottom-up Datalog
engine -- naive and seminaive evaluation with stratified negation -- used

* on its own, for monitoring queries over workflow histories;
* as an oracle: query-only TD programs are translated here and the two
  evaluators are property-tested against each other (experiment C5).
"""

from .ast import DatalogProgram, DatalogRule, Literal, StratificationError
from .engine import evaluate, evaluate_naive, from_td, query
from .magic import magic_query, magic_transform

__all__ = [
    "DatalogProgram",
    "DatalogRule",
    "Literal",
    "StratificationError",
    "evaluate",
    "evaluate_naive",
    "from_td",
    "magic_query",
    "magic_transform",
    "query",
]
