"""SQLite backend internals: durability, the WAL/snapshot lifecycle,
savepoint mapping, recovery, and the store's own counters."""

import sqlite3

import pytest

from repro import Database, SqliteStore, StoreError, parse_atom, parse_database
from repro.obs.context import Instrumentation, instrumented
from repro.store.sqlite import SCHEMA_VERSION


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "state.tdlog")


@pytest.fixture
def db():
    return parse_database("e(a, b). e(b, c). color(a, red).")


def facts(n, pred="p"):
    return [parse_atom("%s(%d)" % (pred, i)) for i in range(n)]


class TestDurability:
    def test_state_survives_reopen(self, path, db):
        with SqliteStore(path) as store:
            store.insert_all(db)
            store.delete(parse_atom("e(a, b)"))
        with SqliteStore(path) as store:
            assert store.database() == db.delete(parse_atom("e(a, b)"))

    def test_typed_constants_round_trip(self, path):
        # The reason facts are pickled: these two facts stringify
        # identically but are different atoms.
        from repro import atom, const

        a, b = atom("p", const(1)), atom("p", const("1"))
        with SqliteStore(path) as store:
            store.insert(a)
            store.insert(b)
        with SqliteStore(path) as store:
            assert a in store and b in store and len(store) == 2

    def test_recovery_replays_wal_tail_over_snapshot(self, path):
        with SqliteStore(path, snapshot_every=4) as store:
            store.insert_all(facts(4))  # folds into a snapshot
            store.insert_all(facts(2, "tail"))  # stays in the WAL
            assert store.stats()["generation"] == 1
            assert store.stats()["wal_length"] == 2
        inst = Instrumentation.create()
        with instrumented(inst):
            with SqliteStore(path, snapshot_every=100) as store:
                assert set(store) == set(facts(4)) | set(facts(2, "tail"))
        counters = inst.metrics.snapshot()["counters"]
        assert counters["store.recoveries"] == 1
        assert counters["store.wal_replayed"] == 2


class TestCheckpoint:
    def test_threshold_folds_wal(self, path):
        with SqliteStore(path, snapshot_every=3) as store:
            store.insert_all(facts(2))
            assert store.stats()["generation"] == 0
            store.insert(parse_atom("p(2)"))
            stats = store.stats()
            assert stats["generation"] == 1
            assert stats["wal_length"] == 0
            assert stats["snapshot_facts"] == 3

    def test_explicit_checkpoint(self, path, db):
        with SqliteStore(path) as store:
            store.insert_all(db)
            generation = store.checkpoint()
            assert generation == 1
            assert store.stats()["wal_length"] == 0
        with SqliteStore(path) as store:
            assert store.database() == db

    def test_no_checkpoint_inside_savepoint(self, path):
        with SqliteStore(path) as store:
            sp = store.savepoint()
            store.insert(parse_atom("p(1)"))
            with pytest.raises(StoreError, match="savepoint"):
                store.checkpoint()
            store.release(sp)
            store.checkpoint()

    def test_auto_checkpoint_deferred_past_open_savepoint(self, path, db):
        # The threshold trips inside the savepoint but must not fire
        # until the scope commits.
        with SqliteStore(path, snapshot_every=2) as store:
            sp = store.savepoint()
            store.insert_all(facts(5))
            assert store.stats()["generation"] == 0
            store.release(sp)
            assert store.stats()["generation"] == 1
        with SqliteStore(path) as store:
            assert set(store) == set(facts(5))

    def test_deferral_is_counted_once_per_episode(self, path):
        inst = Instrumentation.create()
        with instrumented(inst):
            with SqliteStore(path, snapshot_every=2) as store:
                sp = store.savepoint()
                # Trips the threshold repeatedly inside one scope: one
                # deferral episode, not one count per insert.
                store.insert_all(facts(6))
                store.release(sp)
        counters = inst.metrics.snapshot()["counters"]
        assert counters["store.checkpoint_deferred"] == 1
        assert counters["store.snapshots"] == 1

    def test_deferred_checkpoint_retries_after_rollback(self, path, db):
        # A rollback drains the stack too: the deferred fold must not
        # wait for the *next* mutation to happen.
        with SqliteStore(path, snapshot_every=2) as store:
            store.insert_all(db)  # tips over the threshold pre-scope
            assert store.stats()["generation"] == 1
            sp = store.savepoint()
            store.insert_all(facts(4, "tmp"))
            assert store.stats()["generation"] == 1  # deferred
            store.rollback(sp)
            # The aborted scope's rows are gone; the WAL tail that
            # remains is below threshold, so no spurious fold either.
            assert store.stats()["generation"] == 1
            sp2 = store.savepoint()
            store.insert_all(facts(4, "keep"))
            store.rollback(sp2)
            assert store.stats()["open_savepoints"] == 0
        with SqliteStore(path) as store:
            assert store.database() == db


class TestSavepointDurability:
    def test_rolled_back_scope_leaves_no_trace(self, path, db):
        with SqliteStore(path) as store:
            store.insert_all(db)
            sp = store.savepoint()
            store.insert(parse_atom("tmp(1)"))
            store.rollback(sp)
        with SqliteStore(path) as store:
            assert store.database() == db

    def test_unreleased_savepoint_dies_with_the_process(self, path, db):
        store = SqliteStore(path)
        store.insert_all(db)
        store.savepoint()
        store.insert(parse_atom("tmp(1)"))
        store.close()  # rolls the open scope back, like a kill
        with SqliteStore(path) as store:
            assert store.database() == db

    def test_released_scope_is_durable(self, path, db):
        with SqliteStore(path) as store:
            store.insert_all(db)
            with store.transaction():
                store.insert(parse_atom("tmp(1)"))
        with SqliteStore(path) as store:
            assert parse_atom("tmp(1)") in store


class TestLifecycle:
    def test_operations_after_close_raise(self, path):
        store = SqliteStore(path)
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            store.insert(parse_atom("p(1)"))

    def test_schema_version_mismatch(self, path):
        SqliteStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value=? WHERE key='schema_version'",
            (SCHEMA_VERSION + 1,),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="schema version"):
            SqliteStore(path)

    def test_snapshot_every_validation(self, path):
        with pytest.raises(ValueError):
            SqliteStore(path, snapshot_every=0)

    def test_stats_shape(self, path, db):
        with SqliteStore(path) as store:
            store.insert_all(db)
            stats = store.stats()
        assert stats["backend"] == "SqliteStore"
        assert stats["path"] == path
        assert stats["facts"] == 3
        assert stats["predicates"] == {"color": 1, "e": 2}
        assert stats["open_savepoints"] == 0


class TestCounters:
    def test_update_counters_and_fsync_histogram(self, path):
        inst = Instrumentation.create()
        with instrumented(inst):
            with SqliteStore(path) as store:
                store.insert_all(facts(3))
                store.delete(parse_atom("p(0)"))
                store.insert(parse_atom("p(1)"))  # no-op: not counted
                with store.transaction():
                    store.insert(parse_atom("q(1)"))
        snap = inst.metrics.snapshot()
        counters = snap["counters"]
        assert counters["store.opens"] == 1
        assert counters["store.inserts"] == 4
        assert counters["store.deletes"] == 1
        assert counters["store.wal_appends"] == 5
        assert counters["store.savepoints"] == 1
        assert counters["store.releases"] == 1
        assert "store.recoveries" not in counters
        # Every WAL append is timed into the fsync histogram.
        assert snap["histograms"]["store.wal_fsync_ms"]["count"] == 5
