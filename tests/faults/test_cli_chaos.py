"""The ``tdlog chaos`` subcommand: deterministic output, JSON reports,
workload listing, and exit codes."""

import json

import pytest

from repro.cli import main


class TestChaosCommand:
    def test_output_is_byte_identical_across_invocations(self, capsys):
        argv = ["chaos", "--plans", "3", "--only", "bank_transfer"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "chaos verdict: OK" in first

    def test_seed_changes_the_report(self, capsys):
        assert main(["chaos", "--plans", "4", "--only", "bank_transfer"]) == 0
        default = capsys.readouterr().out
        assert main(
            ["chaos", "--plans", "4", "--only", "bank_transfer",
             "--seed", "77"]
        ) == 0
        reseeded = capsys.readouterr().out
        assert default != reseeded

    def test_json_report_written(self, tmp_path, capsys):
        out_file = tmp_path / "chaos.json"
        assert main(
            ["chaos", "--plans", "3", "--only", "bank_transfer",
             "--json", str(out_file)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        assert payload["plans"] == 3
        (report,) = payload["reports"]
        assert report["workload"] == "bank_transfer"
        assert report["violations"] == 0
        assert len(report["outcomes"]) == 3
        assert all(o["violation"] is None for o in report["outcomes"])

    def test_list_workloads(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("bank_transfer", "genome_iso", "lab_workflow"):
            assert name in out

    def test_unknown_workload_rejected(self, capsys):
        assert main(["chaos", "--only", "nope"]) != 0

    def test_non_positive_plans_rejected(self, capsys):
        assert main(["chaos", "--plans", "0"]) != 0
