"""Two-stack machines.

A two-stack machine is a finite control with two pushdown stacks; it is
Turing-complete, which is exactly why the paper uses it (Corollary 4.6):
encoding one in TD needs only *three* concurrent processes -- one per
stack, one for the control.

Transition format: ``(state, top1, top2) -> [(state', gamma1, gamma2)]``
where ``topi`` is the popped top of stack *i* (the bottom marker ``$`` is
read but never removed) and ``gammai`` is the string pushed back, leftmost
symbol ending on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["TwoStackMachine", "TwoStackConfig", "BOTTOM"]

BOTTOM = "$"


@dataclass(frozen=True)
class TwoStackConfig:
    """State plus both stacks (tuples, top last)."""

    state: str
    stack1: Tuple[str, ...]
    stack2: Tuple[str, ...]


@dataclass
class TwoStackMachine:
    states: FrozenSet[str]
    alphabet: FrozenSet[str]
    transitions: Dict[
        Tuple[str, str, str], List[Tuple[str, Tuple[str, ...], Tuple[str, ...]]]
    ]
    start: str
    accepting: FrozenSet[str]

    def __post_init__(self):
        if BOTTOM in self.alphabet:
            raise ValueError("the bottom marker %r is reserved" % BOTTOM)
        for (q, a1, a2), outs in self.transitions.items():
            for sym in (a1, a2):
                if sym != BOTTOM and sym not in self.alphabet:
                    raise ValueError("unknown stack symbol %r" % sym)
            for q2, g1, g2 in outs:
                if q2 not in self.states:
                    raise ValueError("unknown target state %r" % q2)
                for g in (g1, g2):
                    for sym in g:
                        if sym not in self.alphabet:
                            raise ValueError("cannot push %r" % sym)

    # -- execution -------------------------------------------------------------

    def initial_config(self, stack2_word: Sequence[str] = ()) -> TwoStackConfig:
        """Start state; input loaded on stack 2 (first symbol on top)."""
        return TwoStackConfig(self.start, (), tuple(reversed(list(stack2_word))))

    @staticmethod
    def _top(stack: Tuple[str, ...]) -> str:
        return stack[-1] if stack else BOTTOM

    def step(self, config: TwoStackConfig) -> List[TwoStackConfig]:
        a1 = self._top(config.stack1)
        a2 = self._top(config.stack2)
        outs = self.transitions.get((config.state, a1, a2), [])
        result = []
        for q2, gamma1, gamma2 in outs:
            s1 = config.stack1 if a1 == BOTTOM else config.stack1[:-1]
            s2 = config.stack2 if a2 == BOTTOM else config.stack2[:-1]
            # gamma is pushed rightmost-first so its leftmost symbol ends
            # on top.
            s1 = s1 + tuple(reversed(gamma1))
            s2 = s2 + tuple(reversed(gamma2))
            result.append(TwoStackConfig(q2, s1, s2))
        return result

    def accepts(
        self, stack2_word: Sequence[str] = (), max_steps: int = 100_000
    ) -> bool:
        """Breadth-first acceptance with a step bound (RE question)."""
        frontier = [self.initial_config(stack2_word)]
        seen = set(frontier)
        steps = 0
        while frontier:
            next_frontier = []
            for config in frontier:
                if config.state in self.accepting:
                    return True
                for succ in self.step(config):
                    steps += 1
                    if steps > max_steps:
                        raise TimeoutError(
                            "two-stack machine did not halt within %d steps"
                            % max_steps
                        )
                    if succ not in seen:
                        seen.add(succ)
                        next_frontier.append(succ)
            frontier = next_frontier
        return False

    def run_trace(
        self, stack2_word: Sequence[str] = (), max_steps: int = 10_000
    ) -> List[TwoStackConfig]:
        """Deterministic run (first applicable transition each step)."""
        config = self.initial_config(stack2_word)
        trace = [config]
        for _ in range(max_steps):
            if config.state in self.accepting:
                return trace
            succs = self.step(config)
            if not succs:
                return trace
            config = succs[0]
            trace.append(config)
        raise TimeoutError("no halt within %d steps" % max_steps)
