"""Pluggable storage backends for TD database states.

See :mod:`repro.store.base` for the protocol and docs/STORAGE.md for
the backend matrix, savepoint mapping, recovery procedure, and the
failure matrix (crash point x recovery outcome x detection signal).

The one-liner entry point is :func:`open_store`::

    store = open_store("mem")                 # volatile reference backend
    store = open_store("sqlite:run.tdlog")    # WAL-durable SQLite file
    store = open_store("run.tdlog")           # extension implies sqlite
    store = open_store("run.tdlog", readonly=True)  # degraded-tolerant

which is exactly what ``tdlog --store`` feeds through.  Offline
verification and repair live in :mod:`repro.store.fsck` (``tdlog store
fsck``); the cross-process writer lease in :mod:`repro.store.lease`.
"""

from __future__ import annotations

from typing import Optional

from ..core.database import Database
from .base import (
    Savepoint,
    Store,
    StoreBusy,
    StoreCorrupt,
    StoreCrashed,
    StoreError,
    replay_trace,
)
from .context import (
    StoreProvider,
    active_store_provider,
    provide_store,
    using_store_provider,
)
from .fsck import FsckIssue, FsckReport, format_fsck, fsck
from .lease import DEFAULT_LEASE_TTL, LEASE_SUFFIX, WriterLease, read_lease
from .memory import MemoryStore
from .sqlite import QUARANTINE_SUFFIX, SCHEMA_VERSION, SqliteStore

__all__ = [
    "Store",
    "StoreError",
    "StoreCorrupt",
    "StoreBusy",
    "StoreCrashed",
    "Savepoint",
    "MemoryStore",
    "SqliteStore",
    "SCHEMA_VERSION",
    "QUARANTINE_SUFFIX",
    "WriterLease",
    "read_lease",
    "LEASE_SUFFIX",
    "DEFAULT_LEASE_TTL",
    "FsckIssue",
    "FsckReport",
    "fsck",
    "format_fsck",
    "StoreProvider",
    "active_store_provider",
    "using_store_provider",
    "provide_store",
    "replay_trace",
    "open_store",
]

#: Conventional file extension for SQLite-backed stores.
STORE_SUFFIX = ".tdlog"


def open_store(
    spec: str,
    *,
    db: Optional[Database] = None,
    faults=None,
    snapshot_every: Optional[int] = None,
    readonly: bool = False,
) -> Store:
    """Open a store from a CLI-style spec.

    ``"mem"`` gives a :class:`MemoryStore` (optionally seeded with
    *db*); ``"sqlite:PATH"`` -- or a bare path ending in ``.tdlog`` --
    opens a :class:`SqliteStore` at PATH.  A durable store that already
    holds facts keeps them (that is the point); *db* seeds it only when
    the file is fresh and empty.

    ``readonly=True`` opens a durable store without the writer lease
    and degraded-tolerant (recovery stops at -- rather than raises on
    -- damaged bytes; see ``stats()["degraded"]``), so an operator can
    always inspect a damaged or in-use store.  Volatile stores have
    nothing to inspect, so ``mem`` + ``readonly`` is an error.
    """
    if spec == "mem":
        if readonly:
            raise StoreError("readonly open is only meaningful for durable stores")
        return MemoryStore(db)
    if spec.startswith("sqlite:"):
        path = spec[len("sqlite:"):]
    elif spec.endswith(STORE_SUFFIX):
        path = spec
    else:
        raise StoreError(
            "unknown store spec %r (expected 'mem', 'sqlite:PATH', "
            "or a path ending in %r)" % (spec, STORE_SUFFIX)
        )
    if not path:
        raise StoreError("empty path in store spec %r" % (spec,))
    kwargs = {"faults": faults, "readonly": readonly}
    if snapshot_every is not None:
        kwargs["snapshot_every"] = snapshot_every
    store = SqliteStore(path, **kwargs)
    if db is not None and not readonly and len(store) == 0 and len(db) > 0:
        store.insert_all(db)
    return store
