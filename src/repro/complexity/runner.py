"""Measurement helpers shared by the benchmark scripts.

The paper's evaluation is a complexity map, so what the harness reports
is *growth shape*: time (or explored configurations / table size) as a
function of input size, plus a crude growth-class estimate that lets a
benchmark assert "this family scales exponentially, that one
polynomially" without depending on absolute machine speed.
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["measure", "estimate_growth", "print_series", "recorded_series"]

#: Every table printed this process, in order -- the benchmark suite's
#: conftest replays them in the terminal summary so they survive pytest's
#: output capture regardless of capture mode.
_SERIES_LOG: List[str] = []


def recorded_series() -> List[str]:
    """All series tables rendered so far (most recent last)."""
    return list(_SERIES_LOG)


def measure(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run *fn*, returning (result, wall-clock seconds)."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def estimate_growth(sizes: Sequence[float], costs: Sequence[float]) -> str:
    """Classify a cost curve as ``"polynomial"`` or ``"exponential"``.

    Fits both ``cost = a * size^k`` (log-log linear) and
    ``cost = a * b^size`` (semi-log linear) by least squares and returns
    the better fit.  Deliberately coarse: benchmarks assert the *class*,
    not constants.
    """
    pts = [(s, c) for s, c in zip(sizes, costs) if c > 0 and s > 0]
    if len(pts) < 3:
        return "inconclusive"
    xs = [s for s, _ in pts]
    ys = [c for _, c in pts]

    def residual(fx: Sequence[float], fy: Sequence[float]) -> float:
        n = len(fx)
        mean_x = sum(fx) / n
        mean_y = sum(fy) / n
        sxx = sum((x - mean_x) ** 2 for x in fx)
        if sxx == 0:
            return float("inf")
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(fx, fy)) / sxx
        intercept = mean_y - slope * mean_x
        return sum((y - (slope * x + intercept)) ** 2 for x, y in zip(fx, fy))

    log_ys = [math.log(y) for y in ys]
    poly_fit = residual([math.log(x) for x in xs], log_ys)
    expo_fit = residual(list(xs), log_ys)
    return "polynomial" if poly_fit <= expo_fit else "exponential"


def print_series(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Print one experiment's series as an aligned table.

    This is the harness's reporting format: each benchmark regenerates
    its paper artifact as one of these tables (EXPERIMENTS.md archives
    the output).
    """
    widths = [len(h) for h in header]
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                text = "%.4f" % cell
            else:
                text = str(cell)
            cells.append(text)
            widths[i] = max(widths[i], len(text))
        rendered.append(cells)
    lines = ["", "== %s ==" % title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    for cells in rendered:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    text_block = "\n".join(lines)
    _SERIES_LOG.append(text_block)
    print(text_block)
