"""Property-based cross-validation of machines and their TD encodings."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Interpreter
from repro.machines import (
    CounterMachine,
    Dec,
    Halt,
    Inc,
    PetriNet,
    counter_to_td,
    petri_to_td,
    solve_andor,
    andor_to_td,
)


# -- random *halting* counter machines ---------------------------------------
#
# Arbitrary counter programs may diverge (that is the point of RE), so we
# generate a shape that always halts: straight-line programs whose jumps
# only go forward, terminated by a Halt.


@st.composite
def forward_counter_machines(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    instrs = []
    for pc in range(n):
        kind = draw(st.sampled_from(["inc", "dec"]))
        counter = draw(st.integers(min_value=0, max_value=1))
        if kind == "inc":
            goto = draw(st.integers(min_value=pc + 1, max_value=n))
            instrs.append(Inc(counter, goto))
        else:
            g1 = draw(st.integers(min_value=pc + 1, max_value=n))
            g2 = draw(st.integers(min_value=pc + 1, max_value=n))
            instrs.append(Dec(counter, g1, g2))
    instrs.append(Halt(accept=draw(st.booleans())))
    return CounterMachine(tuple(instrs))


class TestCounterEncodingProperties:
    @settings(max_examples=15, deadline=None)
    @given(forward_counter_machines(), st.integers(min_value=0, max_value=2))
    def test_td_encoding_agrees_with_machine(self, machine, c0):
        program, goal, db = counter_to_td(machine, c0=c0)
        interp = Interpreter(program, max_configs=2_000_000)
        assert interp.succeeds(goal, db) == machine.accepts(c0=c0)


# -- random safe Petri nets ------------------------------------------------------


@st.composite
def safe_nets(draw):
    n_places = draw(st.integers(min_value=2, max_value=4))
    places = ["p%d" % i for i in range(n_places)]
    n_trans = draw(st.integers(min_value=1, max_value=3))
    transitions = {}
    for t in range(n_trans):
        pre = frozenset(draw(st.lists(st.sampled_from(places), min_size=1,
                                      max_size=2, unique=True)))
        post_pool = [p for p in places if p not in pre]
        if not post_pool:
            post = frozenset()
        else:
            post = frozenset(draw(st.lists(st.sampled_from(post_pool),
                                           min_size=0, max_size=2, unique=True)))
        transitions["t%d" % t] = (pre, post)
    initial = frozenset(draw(st.lists(st.sampled_from(places), min_size=1,
                                      max_size=2, unique=True)))
    return PetriNet(places=frozenset(places), transitions=transitions,
                    initial=initial)


class TestPetriEncodingProperties:
    @settings(max_examples=15, deadline=None)
    @given(safe_nets(), st.data())
    def test_td_reachability_agrees_with_native(self, net, data):
        try:
            reachable = net.reachable()
        except ValueError:
            return  # generated net turned out unsafe; out of scope
        # pick a target: half the time a reachable marking, half random
        targets = sorted(reachable, key=sorted)
        pick_reachable = data.draw(st.booleans())
        if pick_reachable:
            target = data.draw(st.sampled_from(targets))
        else:
            target = frozenset(
                data.draw(st.lists(st.sampled_from(sorted(net.places)),
                                   max_size=2, unique=True))
            )
        program, goal, db = petri_to_td(net, target)
        interp = Interpreter(program, max_configs=500_000)
        assert interp.succeeds(goal, db) == (frozenset(target) in reachable)


# -- random AND/OR graphs ----------------------------------------------------------


@st.composite
def andor_graphs(draw):
    from repro.machines import AndOrGraph

    n = draw(st.integers(min_value=1, max_value=5))
    nodes = ["n%d" % i for i in range(n)]
    axioms = frozenset(
        draw(st.lists(st.sampled_from(["ax0", "ax1"]), min_size=1, max_size=2,
                      unique=True))
    )
    kind = {}
    successors = {}
    pool = nodes + sorted(axioms)
    for i, node in enumerate(nodes):
        kind[node] = draw(st.sampled_from(["and", "or"]))
        # edges go to later nodes or axioms (DAG) -- keeps examples readable
        later = nodes[i + 1 :] + sorted(axioms)
        successors[node] = tuple(
            draw(st.lists(st.sampled_from(later), min_size=0, max_size=3))
        )
    return AndOrGraph(kind=kind, successors=successors, axioms=axioms)


class TestAndOrProperties:
    @settings(max_examples=20, deadline=None)
    @given(andor_graphs())
    def test_td_encoding_agrees_with_fixpoint(self, graph):
        from repro import SequentialEngine, parse_goal

        program, db = andor_to_td(graph)
        engine = SequentialEngine(program)
        solvable = solve_andor(graph)
        for node in sorted(graph.nodes()):
            goal = parse_goal("solve(%s)" % node)
            assert engine.succeeds(goal, db) == (node in solvable)
