"""Ablation benchmarks for the engine's design choices (DESIGN.md sec. 5).

Not a paper artifact: these measure our implementation decisions so the
complexity benchmarks can be trusted.

* BFS (fair semi-decision) vs DFS (simulation): DFS finds one execution
  far faster; BFS alone survives divergent sibling branches.
* Concurrent-branch canonicalization: sorting branches before variable
  numbering merges symmetric interleavings in the memo table.
* Dead-configuration pruning: the optimization that makes resource
  workflows simulate in linear time (without it, a branch that grabbed
  an unqualified agent poisons the search exponentially).
"""

import pytest

from repro import Interpreter, parse_goal, parse_program
from repro.complexity import measure, print_series
from repro.lims import build_lab_simulator, sample_batch


def test_bfs_vs_dfs_on_workflows(benchmark):
    # BFS first-solution cost explodes combinatorially with concurrent
    # instances -- which is precisely why simulation is DFS.  Even a
    # minimal one-task workflow makes the gap visible; the full lab
    # pipeline is BFS-infeasible beyond one instance.
    from repro.workflow import Agent, Step, Task, WorkflowSimulator, WorkflowSpec

    spec = WorkflowSpec("tiny", Step("a"), (Task("a", role="tech"),))
    sim = WorkflowSimulator([spec], agents=[Agent("t1", ("tech",))],
                            max_configs=20_000_000)
    rows = []
    for n in (1, 2, 3):
        items = ["w%d" % i for i in range(n)]
        db = sim.initial_database(items)
        goal = parse_goal("simulate")
        _, dfs_s = measure(lambda: sim.interpreter.simulate(goal, db))
        def bfs_first():
            for _sol in sim.interpreter.solve(goal, db):
                return True
            return False
        found, bfs_s = measure(bfs_first)
        assert found
        rows.append([n, dfs_s, bfs_s, bfs_s / max(dfs_s, 1e-9)])
    print_series(
        "ablation: DFS simulation vs BFS first-solution (one-task flow)",
        ["samples", "DFS s", "BFS s", "BFS/DFS"],
        rows,
    )
    # the gap widens with instances
    assert rows[-1][3] > rows[0][3]

    db = sim.initial_database(["w0", "w1", "w2"])
    benchmark.pedantic(
        lambda: sim.interpreter.simulate(parse_goal("simulate"), db),
        rounds=3,
        iterations=1,
    )


def test_bfs_fairness_vs_dfs_divergence(benchmark):
    """One rule diverges (growing continuation), the other commits.  BFS
    answers; DFS behaviour depends on rule order -- fairness is why the
    semi-decision procedure is breadth-first."""
    program = parse_program(
        """
        try <- diverge.
        try <- ins.ok.
        diverge <- diverge * ins.x.
        """
    )
    from repro import Database

    interp = Interpreter(program, max_configs=300_000)
    found, seconds = measure(lambda: interp.succeeds(parse_goal("try"), Database()))
    assert found
    print_series(
        "ablation: BFS fairness under a divergent branch",
        ["engine", "found", "seconds"],
        [["BFS", found, seconds]],
    )
    benchmark.pedantic(
        lambda: interp.succeeds(parse_goal("try"), Database()),
        rounds=3,
        iterations=1,
    )


def test_branch_sorting_memoization(benchmark):
    """Canonicalizing | branches merges symmetric configurations: the
    sorted key explores fewer configurations on symmetric fan-outs."""
    program = parse_program(
        """
        worker <- slot(X) * del.slot(X) * ins.done(X).
        """
    )
    goal_text = " | ".join(["worker"] * 4)
    db_text = " ".join("slot(s%d)." % i for i in range(4))
    from repro import parse_database

    db = parse_database(db_text)
    goal = parse_goal(goal_text)
    rows = []
    counts = []
    for sort_conc in (True, False):
        interp = Interpreter(program, max_configs=4_000_000,
                             sort_concurrent=sort_conc)
        finals, seconds = measure(lambda: interp.final_databases(goal, db))
        counts.append(len(finals))
        rows.append(["sorted" if sort_conc else "unsorted", len(finals), seconds])
    print_series(
        "ablation: concurrent-branch canonicalization",
        ["branch keying", "finals", "seconds"],
        rows,
    )
    # keying must not change semantics (same solution set either way)
    assert counts[0] == counts[1]
    interp = Interpreter(program, max_configs=4_000_000)
    benchmark.pedantic(lambda: interp.final_databases(goal, db), rounds=3, iterations=1)
