"""Experiment C4: nonrecursive TD decides in polynomial time.

Paper artifact: Theorem 4.7 ("if we eliminate recursion altogether, then
data complexity plummets from RE to less than PTIME").  A fixed
nonrecursive program is evaluated over growing databases; the measured
cost curve must classify as polynomial -- the contrast to C2's
exponential curve on the same harness.
"""

import pytest

from repro import select_engine
from repro.complexity import (
    chain_edges,
    estimate_growth,
    measure,
    nonrecursive_path_program,
    print_series,
)


def test_nonrecursive_polynomial_scaling(benchmark):
    program = nonrecursive_path_program()
    rows = []
    sizes = []
    times = []
    for n in (20, 40, 80, 160, 320):
        db = chain_edges(n, extra_random=n // 2, seed=n)
        engine = select_engine(program)
        ok, seconds = measure(lambda: engine.succeeds("witness", db))
        assert ok  # a chain of length >= 4 always has a 4-path
        rows.append([n, len(db), seconds])
        sizes.append(len(db))
        times.append(max(seconds, 1e-6))
    print_series(
        "C4: nonrecursive TD -- cost vs database size",
        ["chain length", "|db|", "seconds"],
        rows,
    )
    assert estimate_growth(sizes, times) == "polynomial"

    db = chain_edges(80, extra_random=40, seed=80)
    engine = select_engine(program)
    benchmark.pedantic(lambda: engine.succeeds("witness", db), rounds=3, iterations=1)


def test_negative_instances_also_polynomial(benchmark):
    """Failure must be decided, and cheaply: short chains have no 4-path."""
    program = nonrecursive_path_program()
    rows = []
    for n in (1, 2, 3):
        db = chain_edges(n)
        engine = select_engine(program)
        ok, seconds = measure(lambda: engine.succeeds("witness", db))
        assert not ok
        rows.append([n, seconds])
    print_series(
        "C4: nonrecursive TD -- negative instances decided",
        ["chain length", "seconds"],
        rows,
    )
    db = chain_edges(3)
    engine = select_engine(program)
    benchmark.pedantic(lambda: engine.succeeds("witness", db), rounds=3, iterations=1)
