"""Budget-spend reporting and workflow/engine span correlation."""

import pytest

from repro import (
    Database,
    Interpreter,
    SearchBudgetExceeded,
    parse_database,
    parse_goal,
    parse_program,
)
from repro.obs import Instrumentation, instrumented
from repro.workflow import Agent, Step, Task, WorkflowSpec
from repro.workflow.eventlog import event_log, to_json
from repro.workflow.monitor import status_report
from repro.workflow.scheduler import WorkflowSimulator


@pytest.fixture
def divergent_program():
    """Non-tail recursion: the continuation grows forever, so the
    configuration space is infinite and the budget must fire.  The
    tests below run with ``tabling=False``: the answer table proves
    this failure finitely, and here the *budget accounting* is under
    test, not the search strategy."""
    return parse_program("grow <- grow * ins.x.")


class TestBudgetSpend:
    def test_exception_carries_spend_figure(self, divergent_program):
        interp = Interpreter(divergent_program, max_configs=50, tabling=False)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            list(interp.solve(parse_goal("grow"), Database()))
        err = excinfo.value
        assert err.spent == err.explored == 51
        assert err.budget == 50
        assert "budget 50" in str(err)
        assert "spent 51" in str(err)

    def test_metrics_record_exhaustion(self, divergent_program):
        interp = Interpreter(divergent_program, max_configs=50, tabling=False)
        inst = Instrumentation.create()
        with instrumented(inst):
            with pytest.raises(SearchBudgetExceeded):
                list(interp.solve(parse_goal("grow"), Database()))
        assert inst.metrics.counter("budget.exceeded") == 1
        assert inst.metrics.gauge("budget.spent") == 51
        assert inst.metrics.counter("search.steps") == 51

    def test_spend_defaults_keep_old_constructor_shape(self):
        err = SearchBudgetExceeded(10, 5)
        assert err.spent == 10
        assert err.explored == 10
        assert err.budget == 5


@pytest.fixture
def tiny_workflow():
    spec = WorkflowSpec(
        name="job", body=Step("prep"), tasks=(Task("prep", role="tech"),)
    )
    agents = [Agent("ada", ("tech",))]
    return WorkflowSimulator([spec], agents)


class TestWorkflowCorrelation:
    def test_uninstrumented_run_has_no_span_id(self, tiny_workflow):
        result = tiny_workflow.run(["w1"])
        assert result.span_id is None
        assert all(r.span_id is None for r in event_log(result))
        assert "span_id" not in to_json(result)

    def test_instrumented_run_stamps_span_id(self, tiny_workflow):
        inst = Instrumentation.create()
        with instrumented(inst):
            result = tiny_workflow.run(["w1"])
        assert result.span_id is not None
        spans = {s.span_id: s for s in inst.tracer.spans}
        assert result.span_id in spans
        assert spans[result.span_id].name == "workflow.simulate"
        records = event_log(result)
        assert records and all(r.span_id == result.span_id for r in records)
        assert '"span_id"' in to_json(result)

    def test_explicit_span_id_override(self, tiny_workflow):
        result = tiny_workflow.run(["w1"])
        records = event_log(result, span_id="s99")
        assert records and all(r.span_id == "s99" for r in records)

    def test_status_report_echoes_span(self, tiny_workflow):
        result = tiny_workflow.run(["w1"])
        text = status_report(result.history, span_id="s42")
        assert "engine trace span: s42" in text
        assert "task counts:" in text
        # Without a span the header is unchanged from the pre-obs shape.
        assert status_report(result.history).startswith("task counts:")

    def test_engine_spans_nest_under_workflow_span(self, tiny_workflow):
        inst = Instrumentation.create()
        with instrumented(inst):
            result = tiny_workflow.run(["w1"])
        simulate = next(s for s in inst.tracer.spans if s.name == "simulate")
        assert simulate.parent_id == result.span_id
