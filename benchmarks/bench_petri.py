"""Experiment C8: safe Petri nets embed in TD.

Paper artifact: the related-work comparison with Petri-net workflow
formalisms.  A safe net's marking is a TD database over propositional
facts and its firing rule is a TD rule; reachability answered through
the TD engine must agree with a native breadth-first explorer, and both
must scale with the net's reachable state space.
"""

import pytest

from repro import select_engine
from repro.complexity import measure, print_series
from repro.machines import PetriNet, petri_to_td


def pipeline_net(n_stages: int) -> PetriNet:
    """A token moving through n sequential places."""
    places = frozenset("p%d" % i for i in range(n_stages + 1))
    transitions = {
        "t%d" % i: (frozenset({"p%d" % i}), frozenset({"p%d" % (i + 1)}))
        for i in range(n_stages)
    }
    return PetriNet(places=places, transitions=transitions,
                    initial=frozenset({"p0"}))


def fork_join_net(width: int) -> PetriNet:
    """Fork into `width` parallel branches, then join."""
    places = {"start", "end"}
    transitions = {}
    fork_post = set()
    join_pre = set()
    for i in range(width):
        a, b = "a%d" % i, "b%d" % i
        places |= {a, b}
        fork_post.add(a)
        join_pre.add(b)
        transitions["work%d" % i] = (frozenset({a}), frozenset({b}))
    transitions["fork"] = (frozenset({"start"}), frozenset(fork_post))
    transitions["join"] = (frozenset(join_pre), frozenset({"end"}))
    return PetriNet(
        places=frozenset(places),
        transitions=transitions,
        initial=frozenset({"start"}),
    )


def test_pipeline_reachability_agreement(benchmark):
    rows = []
    for n in (3, 6, 9):
        net = pipeline_net(n)
        target = frozenset({"p%d" % n})
        program, goal, db = petri_to_td(net, target)
        engine = select_engine(program, goal)
        td, td_s = measure(lambda: engine.succeeds(goal, db))
        native, native_s = measure(lambda: net.can_reach(target))
        assert td == native is True
        rows.append([n, td, td_s, native_s])
    print_series(
        "C8: pipeline nets -- TD embedding vs native reachability",
        ["stages", "reachable", "TD s", "native s"],
        rows,
    )
    net = pipeline_net(6)
    program, goal, db = petri_to_td(net, frozenset({"p6"}))
    engine = select_engine(program, goal)
    benchmark.pedantic(lambda: engine.succeeds(goal, db), rounds=3, iterations=1)


def test_fork_join_state_space(benchmark):
    """Fork/join nets have 2^width interleaving markings; both engines
    face the same state space."""
    rows = []
    for width in (2, 3, 4):
        net = fork_join_net(width)
        target = frozenset({"end"})
        program, goal, db = petri_to_td(net, target)
        engine = select_engine(program, goal)
        td, td_s = measure(lambda: engine.succeeds(goal, db))
        reachable, native_s = measure(lambda: len(net.reachable()))
        assert td
        rows.append([width, reachable, td_s, native_s])
    print_series(
        "C8: fork/join nets -- reachable markings and cost",
        ["width", "markings", "TD s", "native s"],
        rows,
    )
    markings = [r[1] for r in rows]
    assert markings == sorted(markings) and markings[-1] > markings[0]

    net = fork_join_net(3)
    program, goal, db = petri_to_td(net, frozenset({"end"}))
    engine = select_engine(program, goal)
    benchmark.pedantic(lambda: engine.succeeds(goal, db), rounds=3, iterations=1)


def test_unreachable_markings_refuted(benchmark):
    net = pipeline_net(4)
    # two places marked at once can never happen with one token
    target = frozenset({"p1", "p3"})
    program, goal, db = petri_to_td(net, target)
    engine = select_engine(program, goal)
    td, seconds = measure(lambda: engine.succeeds(goal, db))
    assert td == net.can_reach(target) is False
    print_series(
        "C8: unreachable marking refuted",
        ["target", "reachable", "seconds"],
        [["{p1, p3}", td, seconds]],
    )
    benchmark.pedantic(lambda: engine.succeeds(goal, db), rounds=3, iterations=1)
