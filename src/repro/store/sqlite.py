"""Durable store over stdlib ``sqlite3``: an append-only WAL of fact
deltas plus periodic snapshots.

Layout of a ``.tdlog`` file (three tables, schema version in ``meta``):

``meta(key, value)``
    ``schema_version``, ``generation`` (bumped per snapshot),
    ``checkpoint_seq`` (highest WAL sequence folded into the snapshot).
``snapshot(pred, fact)``
    The state as of the last checkpoint, one pickled ground atom per
    row (atoms carry ``__reduce__`` and re-intern on load; text
    round-trips are unsafe because ``Constant("1")`` and ``Constant(1)``
    render identically).
``wal(seq, op, pred, fact)``
    The delta log: ``+``/``-`` rows appended by every effective
    insert/delete since the checkpoint, in commit order.

The live state is a plain in-memory mirror
:class:`~repro.core.database.Database`, so queries, memo keys, and the
per-position indexes behave *identically* to the volatile backend --
durability is purely additive.  Every effective update appends a WAL
row first (``synchronous=FULL``: the row is on disk before the mirror
moves), which gives the recovery invariant: **state = snapshot +
replayed WAL tail**, no matter where the process died.

``iso`` maps onto SQL savepoints: the connection runs in autocommit, so
``SAVEPOINT`` opens a transaction scope whose WAL appends become
durable only on ``RELEASE``; ``ROLLBACK TO`` -- or a crash before the
release -- erases them, which is exactly the paper's
failed-subexecutions-leave-no-trace rule.  Checkpoints fold the WAL
into a fresh snapshot in one SQL transaction, and only run when no
savepoint is open (a checkpoint must not capture uncommitted state).

Crash injection mirrors the rest of the faults layer: the store
duck-types a plan's ``store_crashes`` windows against its own WAL
append counter and raises :class:`~repro.store.base.StoreCrashed` at
the torn moment -- row durable, mirror not updated.  See
:class:`repro.faults.plan.StoreCrash`.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import time
from typing import Iterable, List, Optional, Tuple

from ..core.database import Database
from ..core.terms import Atom
from ..obs.context import active
from .base import Savepoint, Store, StoreCrashed, StoreError

__all__ = ["SqliteStore", "SCHEMA_VERSION", "DEFAULT_SNAPSHOT_EVERY"]

SCHEMA_VERSION = 1

#: Checkpoint once the WAL tail reaches this many rows (tunable per
#: store; small enough that recovery replay stays short, large enough
#: that snapshot rewrites stay rare).
DEFAULT_SNAPSHOT_EVERY = 256

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshot (
    pred TEXT NOT NULL,
    fact BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS wal (
    seq  INTEGER PRIMARY KEY AUTOINCREMENT,
    op   TEXT NOT NULL CHECK (op IN ('+', '-')),
    pred TEXT NOT NULL,
    fact BLOB NOT NULL
);
"""


def _dump(fact: Atom) -> bytes:
    return pickle.dumps(fact, protocol=4)


def _load(blob: bytes) -> Atom:
    return pickle.loads(blob)


class SqliteStore(Store):
    """WAL-durable backend; see the module docstring for the design.

    ``faults=`` accepts anything with a ``store_crashes`` attribute of
    :class:`~repro.faults.plan.StoreCrash`-shaped entries (the store
    never imports the faults package, matching the core's discipline).
    """

    def __init__(
        self,
        path: str,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        faults=None,
    ):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.path = path
        self.snapshot_every = snapshot_every
        self._crash_windows = tuple(
            crash.window for crash in getattr(faults, "store_crashes", ())
        )
        self._appends = 0  # crash-injection tick: one per WAL append
        self._crashed = False
        self._closed = False
        self._stack: List[Tuple[Savepoint, Database]] = []
        self._serial = 0
        # Autocommit: explicit SAVEPOINT/RELEASE are the only
        # transaction boundaries, so their scope matches iso exactly.
        self._conn = sqlite3.connect(path, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.executescript(_SCHEMA)
        self._init_meta()
        self._db = self._recover()

    # -- open / recovery ------------------------------------------------------

    def _init_meta(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [("schema_version", SCHEMA_VERSION), ("generation", 0),
                 ("checkpoint_seq", 0)],
            )
        elif row[0] != SCHEMA_VERSION:
            raise StoreError(
                "%s: store schema version %d, expected %d"
                % (self.path, row[0], SCHEMA_VERSION)
            )

    def _meta(self, key: str) -> int:
        return self._conn.execute(
            "SELECT value FROM meta WHERE key=?", (key,)
        ).fetchone()[0]

    def _recover(self) -> Database:
        """Load the snapshot and replay the WAL tail over it -- the
        recovery procedure, run unconditionally on every open (with an
        empty tail it is just the snapshot load)."""
        facts = [
            _load(blob)
            for (blob,) in self._conn.execute("SELECT fact FROM snapshot")
        ]
        db = Database(facts)
        checkpoint_seq = self._meta("checkpoint_seq")
        replayed = 0
        for op, blob in self._conn.execute(
            "SELECT op, fact FROM wal WHERE seq > ? ORDER BY seq",
            (checkpoint_seq,),
        ):
            fact = _load(blob)
            db = db.insert(fact) if op == "+" else db.delete(fact)
            replayed += 1
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.opens")
            if replayed:
                obs.metrics.inc("store.recoveries")
                obs.metrics.inc("store.wal_replayed", replayed)
        return db

    # -- guards ---------------------------------------------------------------

    def _check_live(self) -> None:
        if self._crashed:
            raise StoreCrashed("%s: store crashed; reopen to recover" % self.path)
        if self._closed:
            raise StoreError("%s: store is closed" % self.path)

    # -- state ----------------------------------------------------------------

    def database(self) -> Database:
        self._check_live()
        return self._db

    # -- updates --------------------------------------------------------------

    def _append(self, op: str, fact: Atom) -> None:
        """Durably append one WAL row, honouring crash injection.

        The crash fires *after* the row is on disk but *before* the
        mirror advances: the store is then torn exactly the way a
        power-cut mid-commit tears a real system, and only the reopen
        replay may heal it.
        """
        self._appends += 1
        tick = self._appends
        start = time.perf_counter()
        self._conn.execute(
            "INSERT INTO wal (op, pred, fact) VALUES (?, ?, ?)",
            (op, fact.pred, _dump(fact)),
        )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.wal_appends")
            obs.metrics.observe("store.wal_fsync_ms", elapsed_ms)
        for window in self._crash_windows:
            if window.active(tick):
                self._crashed = True
                raise StoreCrashed(
                    "%s: injected crash at WAL append %d" % (self.path, tick)
                )

    def insert(self, fact: Atom) -> Database:
        self._check_live()
        new_db = self._db.insert(fact)
        if new_db is self._db:  # already present: sets, like the paper
            return self._db
        self._append("+", fact)
        self._db = new_db
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.inserts")
        self._maybe_checkpoint()
        return self._db

    def delete(self, fact: Atom) -> Database:
        self._check_live()
        new_db = self._db.delete(fact)
        if new_db is self._db:
            return self._db
        self._append("-", fact)
        self._db = new_db
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.deletes")
        self._maybe_checkpoint()
        return self._db

    # -- transactions (iso -> savepoint) ---------------------------------------

    def savepoint(self) -> Savepoint:
        self._check_live()
        self._serial += 1
        sp = Savepoint("iso_%d" % self._serial, depth=len(self._stack))
        self._conn.execute("SAVEPOINT %s" % sp.name)
        self._stack.append((sp, self._db))
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.savepoints")
        return sp

    def _pop_to(self, sp: Savepoint) -> Database:
        while self._stack:
            top, saved = self._stack.pop()
            if top is sp:
                return saved
        raise StoreError("unknown or already-closed savepoint: %r" % (sp,))

    def release(self, sp: Savepoint) -> None:
        self._check_live()
        self._pop_to(sp)
        self._conn.execute("RELEASE %s" % sp.name)
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.releases")
        # WAL rows from the released scope are durable now; fold them
        # if the tail has grown past the threshold.
        self._maybe_checkpoint()

    def rollback(self, sp: Savepoint) -> None:
        self._check_live()
        saved = self._pop_to(sp)
        # ROLLBACK TO undoes the scope's writes but leaves the
        # savepoint open; RELEASE closes it (standard SQLite pairing).
        self._conn.execute("ROLLBACK TO %s" % sp.name)
        self._conn.execute("RELEASE %s" % sp.name)
        self._db = saved
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.rollbacks")

    # -- checkpointing ---------------------------------------------------------

    def _wal_length(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM wal WHERE seq > ?",
            (self._meta("checkpoint_seq"),),
        ).fetchone()[0]

    def _maybe_checkpoint(self) -> None:
        # Never checkpoint inside an open savepoint: the mirror holds
        # uncommitted state a snapshot must not capture.
        if self._stack or self._wal_length() < self.snapshot_every:
            return
        self.checkpoint()

    def checkpoint(self) -> int:
        """Fold the WAL tail into a fresh snapshot; returns the new
        generation.  One SQL transaction, so a crash during the fold
        leaves the previous snapshot + WAL intact."""
        self._check_live()
        if self._stack:
            raise StoreError("cannot checkpoint inside an open savepoint")
        watermark = self._conn.execute(
            "SELECT COALESCE(MAX(seq), 0) FROM wal"
        ).fetchone()[0]
        generation = self._meta("generation") + 1
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute("DELETE FROM snapshot")
            self._conn.executemany(
                "INSERT INTO snapshot (pred, fact) VALUES (?, ?)",
                [(fact.pred, _dump(fact)) for fact in self._db],
            )
            self._conn.execute(
                "UPDATE meta SET value=? WHERE key='generation'", (generation,)
            )
            self._conn.execute(
                "UPDATE meta SET value=? WHERE key='checkpoint_seq'",
                (watermark,),
            )
            self._conn.execute("DELETE FROM wal WHERE seq <= ?", (watermark,))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.snapshots")
        return generation

    # -- lifecycle ------------------------------------------------------------

    def sync(self) -> None:
        self._check_live()
        self._conn.execute("PRAGMA wal_checkpoint(FULL)")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Closing with open savepoints rolls their scopes back (SQLite
        # closes the transaction on disconnect) -- same as a crash.
        self._conn.close()

    # -- introspection --------------------------------------------------------

    def stats(self):
        self._check_live()
        out = super().stats()
        out.update(
            path=self.path,
            generation=self._meta("generation"),
            checkpoint_seq=self._meta("checkpoint_seq"),
            wal_length=self._wal_length(),
            snapshot_facts=self._conn.execute(
                "SELECT COUNT(*) FROM snapshot"
            ).fetchone()[0],
            open_savepoints=len(self._stack),
        )
        return out
