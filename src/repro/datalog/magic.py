"""Magic-sets transformation for positive Datalog.

The paper points out that in the tame TD sublanguages "well-known
optimization techniques (such as magic sets or tabling) can be applied".
Tabling lives in :mod:`repro.core.seqeval`; this module supplies the
other named technique for the Datalog substrate.

Given a query with some arguments bound, the transformation specializes
the program so that bottom-up evaluation only derives facts *relevant*
to the query:

1. **Adornment** -- predicates are annotated with binding patterns
   (``b``/``f`` per argument).  Starting from the query's pattern,
   rules are adorned left-to-right (the standard sideways information
   passing): a body variable is bound if it occurs in the head's bound
   arguments or in an earlier body literal.
2. **Magic rules** -- for each adorned rule and each IDB body literal, a
   rule derives the magic fact (the relevant bound-argument tuples) for
   that literal from the head's magic fact and the preceding body
   literals; every original rule is guarded by its own magic fact.
3. **Seed** -- the query's bound constants become the initial magic fact.

Only positive programs are supported (magic sets with stratified
negation requires extra care we do not need here); a program with
negative literals raises :class:`ValueError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.database import Database
from ..core.terms import Atom, Constant, Term, Variable
from ..core.unify import Substitution
from .ast import DatalogProgram, DatalogRule, Literal
from .engine import evaluate

__all__ = ["magic_transform", "magic_query"]

#: An adornment: one character per argument, 'b' (bound) or 'f' (free).
Adornment = str


def _adorn_name(pred: str, adornment: Adornment) -> str:
    return "%s__%s" % (pred, adornment) if adornment else pred


def _magic_name(pred: str, adornment: Adornment) -> str:
    return "magic__%s__%s" % (pred, adornment)


def _pattern_of(atom: Atom, bound_vars: Set[Variable]) -> Adornment:
    out = []
    for t in atom.args:
        if isinstance(t, Constant) or t in bound_vars:
            out.append("b")
        else:
            out.append("f")
    return "".join(out)


def _bound_args(atom: Atom, adornment: Adornment) -> Tuple[Term, ...]:
    return tuple(t for t, a in zip(atom.args, adornment) if a == "b")


def magic_transform(
    program: DatalogProgram, query: Atom
) -> Tuple[DatalogProgram, List[Atom], str]:
    """Specialize *program* for *query*.

    Returns ``(magic program, seed facts, adorned query predicate)``.
    The adorned query predicate holds exactly the answers relevant to
    the query after evaluating the magic program over
    ``edb + seed facts``.
    """
    for rule in program.rules:
        for lit in rule.body:
            if not lit.positive:
                raise ValueError(
                    "magic sets here supports positive programs only; "
                    "rule for %s uses negation" % (rule.head,)
                )

    query_adornment = _pattern_of(query, set())
    if query.signature not in program.idb:
        raise ValueError("query predicate %s/%d is not defined by rules"
                         % query.signature)

    transformed: List[DatalogRule] = []
    worklist: List[Tuple[str, int, Adornment]] = [
        (query.pred, query.arity, query_adornment)
    ]
    seen: Set[Tuple[str, int, Adornment]] = set(worklist)

    while worklist:
        pred, arity, adornment = worklist.pop()
        for rule in program.rules:
            if rule.head.signature != (pred, arity):
                continue
            bound_vars: Set[Variable] = {
                t
                for t, a in zip(rule.head.args, adornment)
                if a == "b" and isinstance(t, Variable)
            }
            magic_head_atom = Atom(
                _magic_name(pred, adornment), _bound_args(rule.head, adornment)
            )
            new_body: List[Literal] = [Literal(magic_head_atom)]
            for lit in rule.body:
                atom = lit.atom
                if atom.signature in program.idb:
                    sub_adornment = _pattern_of(atom, bound_vars)
                    key = (atom.pred, atom.arity, sub_adornment)
                    if key not in seen:
                        seen.add(key)
                        worklist.append(key)
                    # magic rule: relevant bindings for the subgoal
                    magic_sub = Atom(
                        _magic_name(atom.pred, sub_adornment),
                        _bound_args(atom, sub_adornment),
                    )
                    transformed.append(
                        DatalogRule(magic_sub, tuple(new_body))
                    )
                    adorned = Atom(_adorn_name(atom.pred, sub_adornment), atom.args)
                    new_body.append(Literal(adorned))
                else:
                    new_body.append(lit)
                bound_vars |= set(atom.variables())
            adorned_head = Atom(_adorn_name(pred, adornment), rule.head.args)
            transformed.append(DatalogRule(adorned_head, tuple(new_body)))

    seed = Atom(
        _magic_name(query.pred, query_adornment),
        tuple(t for t in query.args if isinstance(t, Constant)),
    )
    magic_program = DatalogProgram(transformed)
    return magic_program, [seed], _adorn_name(query.pred, query_adornment)


def magic_query(
    program: DatalogProgram, edb: Database, query: Atom
) -> List[Substitution]:
    """Answer *query* goal-directedly via the magic transformation.

    Semantically identical to ``engine.query`` but only derives facts
    relevant to the query's bound arguments.
    """
    magic_program, seeds, answer_pred = magic_transform(program, query)
    facts = evaluate(magic_program, edb.insert_all(seeds))
    answers = []
    pattern = Atom(answer_pred, query.args)
    for theta in facts.match(pattern):
        answers.append(theta)
    return answers
