"""Workflow simulation: dynamic instance creation and environments.

Implements the paper's Example 3.2.  The driver rules::

    simulate <- workitem(W) * del.workitem(W) * (wf_main(W) | simulate).
    simulate <- not workitem(_).

spawn one *concurrent* workflow instance per work item: each recursive
call peels a work item off the database and runs its instance in
parallel with the rest of the simulation.  This is recursion through
concurrent composition -- the very feature the complexity section shows
makes TD Turing-complete -- used here the way the paper intends, as a
workflow engine.

Following Example 3.2's closing remark, the environment can itself be
"just another process": with ``environment=True`` the goal becomes
``simulate | env`` where ``env`` feeds pending items into the database
while the simulation is already running::

    env <- pending(W) * del.pending(W) * ins.workitem(W) * env.
    env <- not pending(_).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.database import Database
from ..core.formulas import Call, Conc, Del, Formula, Ins, Isol, Neg, Test, conc, seq
from ..obs.context import active
from ..core.interpreter import Execution, Interpreter
from ..core.program import Program, Rule
from ..core.terms import Atom, Variable, atom
from ..core.transitions import Action
from .compiler import agent_facts, compile_workflows, workflow_predicate
from .model import Agent, WorkflowSpec

__all__ = ["WorkflowSimulator", "SimulationResult", "driver_rules"]


def driver_rules(main_workflow: str) -> List[Rule]:
    """Example 3.2's instance-creation rules for the given main workflow."""
    w = Variable("W")
    workitem = Atom("workitem", (w,))
    return [
        Rule(
            atom("simulate"),
            seq(
                Test(workitem),
                Del(workitem),
                conc(
                    Call(Atom(workflow_predicate(main_workflow), (w,))),
                    Call(atom("simulate")),
                ),
            ),
        ),
        # Stop only when no work item is queued *and* the environment has
        # nothing left to feed -- otherwise the valid-but-unhelpful
        # interleaving "quit before the environment delivers" commits
        # with unprocessed items.  The two absence tests are wrapped in
        # iso(...) so they snapshot the *same* state: checked one at a
        # time, each could be true at a different moment with items in
        # flight in between.
        Rule(
            atom("simulate"),
            Isol(
                seq(
                    Neg(Atom("workitem", (Variable("_W"),))),
                    Neg(Atom("pending", (Variable("_P"),))),
                )
            ),
        ),
    ]


def environment_rules() -> List[Rule]:
    """The environment as another process, feeding pending work items."""
    w = Variable("W")
    pending = Atom("pending", (w,))
    return [
        Rule(
            atom("env"),
            seq(
                Test(pending),
                # Insert before deleting: the item is always visible as
                # pending or workitem, so the driver's stop rule cannot
                # fire inside the hand-off window.
                Ins(Atom("workitem", (w,))),
                Del(pending),
                Call(atom("env")),
            ),
        ),
        Rule(atom("env"), Neg(Atom("pending", (Variable("_P"),)))),
    ]


@dataclass
class SimulationResult:
    """Outcome of a workflow simulation run.

    ``span_id`` correlates this run with the engine trace: when the
    simulation ran under :func:`repro.obs.instrumented`, it is the id of
    the ``workflow.simulate`` span enclosing the engine's search spans,
    and event-log records carry it (see :mod:`repro.workflow.eventlog`).
    """

    execution: Execution
    span_id: Optional[str] = None

    @property
    def history(self) -> Database:
        """The final database (including the insert-only history)."""
        return self.execution.database

    @property
    def events(self) -> Tuple[str, ...]:
        """Elementary update events, in execution order."""
        return tuple(
            str(a)
            for a in self._flat_actions()
            if a.kind in ("ins", "del")
        )

    def _flat_actions(self) -> List[Action]:
        out: List[Action] = []

        def walk(actions: Sequence[Action]) -> None:
            for a in actions:
                if a.kind == "iso":
                    walk(a.subtrace)
                else:
                    out.append(a)

        walk(self.execution.trace)
        return out

    def completed(self, task: str) -> List[str]:
        """Work items for which ``done(task, W, _)`` is recorded."""
        items = set()
        for fact in self.history.facts("done"):
            t, w, _agent = fact.args
            if t.value == task:
                items.add(w.value)
        return sorted(items, key=str)


class WorkflowSimulator:
    """Build and run the full simulation program for a set of workflows.

    Parameters
    ----------
    specs:
        The workflow definitions; the first is the *main* workflow whose
        instances the driver spawns (others are reachable via
        ``Subflow``).
    agents:
        The shared agent pool (Example 3.3).
    extra_rules:
        Additional hand-written TD rules to merge in (e.g. a cooperating
        producer workflow written directly in TD).
    """

    def __init__(
        self,
        specs: Sequence[WorkflowSpec],
        agents: Sequence[Agent] = (),
        extra_rules: Sequence[Rule] = (),
        max_configs: int = 2_000_000,
        abortable: bool = False,
    ):
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("need at least one workflow spec")
        self.agents = list(agents)
        base_program = compile_workflows(self.specs, abortable=abortable)
        rules = list(base_program.rules)
        rules += driver_rules(self.specs[0].name)
        rules += environment_rules()
        rules += list(extra_rules)
        self.program = Program(rules)
        self.abortable = abortable
        self.interpreter = Interpreter(self.program, max_configs=max_configs)

    def initial_database(
        self, items: Sequence[str], pending: Sequence[str] = (), extra_facts=()
    ) -> Database:
        facts = [atom("workitem", w) for w in items]
        facts += [atom("pending", w) for w in pending]
        facts += agent_facts(self.agents)
        facts += list(extra_facts)
        return Database(facts)

    def run(
        self,
        items: Sequence[str],
        pending: Sequence[str] = (),
        environment: bool = False,
        extra_facts: Sequence[Atom] = (),
        extra_goal: Optional[Formula] = None,
        seed: Optional[int] = None,
        max_depth: int = 100_000,
        fault_plan=None,
        retry_attempts: int = 0,
        retry_budget: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate until every instance completes; returns the result.

        Raises :class:`RuntimeError` if no successful execution exists
        (e.g. no agent is qualified for some task: the workflow
        deadlocks, which TD reports as failure to commit).

        ``fault_plan`` runs this simulation under a deterministic
        :class:`~repro.faults.plan.FaultPlan` (a fresh injector per
        call, so the same plan perturbs identically every time).
        ``retry_attempts`` wraps the whole simulation goal in the
        ``retry`` recovery combinator with that many isolated attempts
        -- under transient faults the later attempts land after the
        fault windows close.  ``retry_budget`` additionally caps each
        attempt's search (``iso[k]``), so one wandering attempt fails
        at the cap instead of exhausting the whole budget.
        """
        db = self.initial_database(items, pending, extra_facts)
        goal: Formula = Call(atom("simulate"))
        if environment or pending:
            goal = conc(goal, Call(atom("env")))
        if extra_goal is not None:
            goal = conc(goal, extra_goal)
        interpreter = self.interpreter
        if retry_attempts:
            # Imported here: repro.faults sits above the workflow layer.
            from ..faults.recovery import retry

            recovered = retry(goal, retry_attempts, budget=retry_budget)
            program = self.program.extend(recovered.rules)
            db = db.insert_all(recovered.facts)
            goal = program.resolve_goal(recovered.goal)
            interpreter = Interpreter(
                program, max_configs=interpreter.max_configs
            )
        if fault_plan is not None:
            from ..faults.inject import FaultInjector

            interpreter = Interpreter(
                interpreter.program,
                max_configs=interpreter.max_configs,
                faults=FaultInjector(fault_plan),
            )
        obs = active()
        with obs.span("workflow.simulate", main=self.specs[0].name) as span:
            execution = interpreter.simulate(
                goal, db, seed=seed, max_depth=max_depth
            )
        if execution is None:
            raise RuntimeError(
                "workflow simulation cannot commit (deadlock or "
                "unsatisfiable resource requirements)"
            )
        if span is not None and execution.action_times:
            _emit_task_spans(obs.tracer, execution, span.span_id)
        return SimulationResult(
            execution, span_id=span.span_id if span is not None else None
        )


def _timed_events(execution: Execution) -> List[Tuple[str, float]]:
    """Flattened (event string, timestamp) pairs of an instrumented run.

    Timestamps come from :attr:`Execution.action_times`, one per
    top-level trace action; an ``iso`` executes atomically, so every
    event inside its subtrace inherits the isolation step's stamp.
    """

    out: List[Tuple[str, float]] = []

    def walk(action: Action, when: float) -> None:
        if action.kind == "iso":
            for sub in action.subtrace:
                walk(sub, when)
        elif action.kind in ("ins", "del"):
            out.append((str(action), when))

    for action, when in zip(execution.trace, execution.action_times):
        walk(action, when)
    return out


def _emit_task_spans(tracer, execution: Execution, parent_id: str) -> None:
    """Stamp one finished ``workflow.task`` span per completed task
    execution, parented on the enclosing ``workflow.simulate`` span.

    Start/done events pair FIFO per ``(task, item)`` -- the same
    discipline :func:`repro.workflow.analytics.task_executions` uses --
    and each span carries an ``occurrence`` index (done order) so
    analytics can join spans to executions even when a retried task runs
    the same (task, item) pair more than once.  An ``aborted`` event
    closes its start without emitting a span: the attempt never
    completed, so it has no task duration.
    """
    # Imported lazily: eventlog imports this module at load time.
    from .eventlog import _parse_args

    open_starts: dict = {}
    occurrences: dict = {}
    for event, when in _timed_events(execution):
        if event.startswith("ins.started("):
            task, item = _parse_args(event)[:2]
            open_starts.setdefault((task, item), []).append(when)
        elif event.startswith("ins.done("):
            task, item, agent = _parse_args(event)[:3]
            starts = open_starts.get((task, item))
            if not starts:
                continue
            start = starts.pop(0)
            occurrence = occurrences.get((task, item), 0)
            occurrences[(task, item)] = occurrence + 1
            tracer.add_span(
                "workflow.task",
                start,
                when,
                parent_id=parent_id,
                task=task,
                item=item,
                agent=agent,
                occurrence=occurrence,
            )
        elif event.startswith("ins.aborted("):
            task, item = _parse_args(event)[:2]
            starts = open_starts.get((task, item))
            if starts:
                starts.pop(0)
