"""Counter baselines and the regression-gate diff (tdlog profile ...)."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.analyze import (
    capture_snapshot,
    diff_baselines,
    diff_snapshot,
    load_baseline,
    parse_tolerance_overrides,
    profile_suite,
    render_diff,
    suite_config,
    write_baselines,
)

#: The quick configs used for gate-mechanics tests (the full suite runs
#: once, in TestCommittedBaselines).
FAST = ("bank_transfer", "path_tabled")


def fast_configs():
    return [suite_config(name) for name in FAST]


class TestSuite:
    def test_suite_names_unique_and_nonempty(self):
        names = [c.name for c in profile_suite()]
        assert len(names) == len(set(names)) and len(names) >= 5

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            suite_config("nope")

    def test_capture_is_deterministic_in_process(self):
        for config in fast_configs():
            assert capture_snapshot(config) == capture_snapshot(config)

    def test_capture_has_the_gate_counters(self):
        snapshot = capture_snapshot(suite_config("genome_simulate"))
        assert "search.configs_expanded" in snapshot["counters"]
        assert "unify.attempts" in snapshot["counters"]
        snapshot = capture_snapshot(suite_config("path_tabled"))
        assert "table.misses" in snapshot["counters"]


class TestBaselineFiles:
    def test_write_load_round_trip(self, tmp_path):
        paths = write_baselines(str(tmp_path), fast_configs())
        assert [os.path.basename(p) for p in paths] == [
            "bank_transfer.json", "path_tabled.json",
        ]
        record = load_baseline(paths[0])
        assert record["config"] == "bank_transfer"
        assert record["counters"]

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "counters": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(str(path))


class TestDiff:
    def test_clean_diff_passes(self, tmp_path):
        write_baselines(str(tmp_path), fast_configs())
        reports, problems = diff_baselines(str(tmp_path), configs=fast_configs())
        assert not problems
        assert all(r.ok for r in reports)

    def test_missing_baseline_is_a_problem(self, tmp_path):
        reports, problems = diff_baselines(
            str(tmp_path), configs=[suite_config("bank_transfer")]
        )
        assert not reports and len(problems) == 1

    def test_regression_detected_in_both_directions(self):
        base = {"config": "x", "counters": {"c": 100}, "gauges": {}, "info": {}}
        up = {"counters": {"c": 110}, "gauges": {}, "info": {}}
        down = {"counters": {"c": 90}, "gauges": {}, "info": {}}
        assert diff_snapshot(base, up).failures[0].status == "regressed"
        assert diff_snapshot(base, down).failures[0].status == "improved"
        assert not diff_snapshot(base, up, default_tolerance=0.1).failures
        assert not diff_snapshot(
            base, down, tolerances={"c": 0.1}
        ).failures

    def test_missing_and_new_counters(self):
        base = {"config": "x", "counters": {"gone": 5}, "gauges": {}, "info": {}}
        cur = {"counters": {"fresh": 5}, "gauges": {}, "info": {}}
        statuses = {d.name: d.status for d in diff_snapshot(base, cur).deltas}
        assert statuses["gone"] == "missing"
        assert statuses["fresh"] == "new"
        report = diff_snapshot(base, cur)
        assert not report.ok  # missing fails; new alone does not
        assert all(d.status != "missing" or not d.ok for d in report.deltas)

    def test_info_change_fails_the_gate(self):
        base = {
            "config": "x", "counters": {}, "gauges": {},
            "info": {"engine.backend": "SequentialEngine"},
        }
        cur = {"counters": {}, "gauges": {}, "info": {"engine.backend": "Interpreter"}}
        report = diff_snapshot(base, cur)
        assert [d.status for d in report.deltas] == ["changed"]
        assert not report.ok

    def test_render_shows_drift_and_summary(self):
        base = {"config": "cfg", "counters": {"c": 10}, "gauges": {}, "info": {}}
        cur = {"counters": {"c": 12}, "gauges": {}, "info": {}}
        text = render_diff([diff_snapshot(base, cur)])
        assert "cfg: DRIFT" in text
        assert "regressed" in text and "10 -> 12" in text
        assert "1 out of tolerance" in text

    def test_tolerance_overrides_parse(self):
        assert parse_tolerance_overrides(["a=0.5", "b.c=0"]) == {"a": 0.5, "b.c": 0.0}
        with pytest.raises(ValueError):
            parse_tolerance_overrides(["nonsense"])


class TestCli:
    def test_baseline_then_diff_green(self, tmp_path, capsys):
        out_dir = str(tmp_path / "baselines")
        rc = main(
            ["profile", "baseline", "--out", out_dir]
            + [arg for name in FAST for arg in ("--only", name)]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        rc = main(
            ["profile", "diff", "--baseline-dir", out_dir]
            + [arg for name in FAST for arg in ("--only", name)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 out of tolerance" in out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        out_dir = str(tmp_path / "baselines")
        main(["profile", "baseline", "--out", out_dir, "--only", "bank_transfer"])
        capsys.readouterr()
        path = os.path.join(out_dir, "bank_transfer.json")
        with open(path) as handle:
            record = json.load(handle)
        record["counters"]["unify.attempts"] -= 1  # pretend we got faster
        with open(path, "w") as handle:
            json.dump(record, handle)
        rc = main(
            ["profile", "diff", "--baseline-dir", out_dir, "--only", "bank_transfer"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "unify.attempts" in out and "DRIFT" in out

    def test_tolerance_flag_absorbs_drift(self, tmp_path, capsys):
        out_dir = str(tmp_path / "baselines")
        main(["profile", "baseline", "--out", out_dir, "--only", "bank_transfer"])
        path = os.path.join(out_dir, "bank_transfer.json")
        with open(path) as handle:
            record = json.load(handle)
        record["counters"]["unify.attempts"] += 1
        with open(path, "w") as handle:
            json.dump(record, handle)
        rc = main(
            [
                "profile", "diff", "--baseline-dir", out_dir,
                "--only", "bank_transfer", "--tolerance", "0.5",
            ]
        )
        capsys.readouterr()
        assert rc == 0

    def test_missing_baseline_dir_exits_nonzero(self, tmp_path, capsys):
        rc = main(
            [
                "profile", "diff",
                "--baseline-dir", str(tmp_path / "nope"),
                "--only", "bank_transfer",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1 and "MISSING" in out


class TestCommittedBaselines:
    """The committed snapshots must match a fresh capture -- this is the
    same check the CI profile-gate job runs."""

    def test_committed_baselines_in_sync(self):
        baseline_dir = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks", "baselines"
        )
        reports, problems = diff_baselines(os.path.abspath(baseline_dir))
        assert not problems, problems
        bad = [d for r in reports for d in r.failures]
        assert not bad, render_diff(reports, problems)
