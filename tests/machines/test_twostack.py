"""Tests for the two-stack machine model."""

import pytest

from repro.machines import TwoStackMachine
from repro.machines.twostack import BOTTOM, TwoStackConfig


def copy_machine():
    """Pops a's off stack 2 and pushes them on stack 1; accepts when
    stack 2 is empty."""
    return TwoStackMachine(
        states=frozenset({"mv", "acc"}),
        alphabet=frozenset({"a"}),
        transitions={
            ("mv", BOTTOM, "a"): [("mv", ("a",), ())],
            ("mv", "a", "a"): [("mv", ("a", "a"), ())],
            ("mv", BOTTOM, BOTTOM): [("acc", (), ())],
            ("mv", "a", BOTTOM): [("acc", ("a",), ())],
        },
        start="mv",
        accepting=frozenset({"acc"}),
    )


class TestModel:
    def test_bottom_reserved(self):
        with pytest.raises(ValueError):
            TwoStackMachine(
                states=frozenset({"s"}),
                alphabet=frozenset({BOTTOM}),
                transitions={},
                start="s",
                accepting=frozenset(),
            )

    def test_unknown_push_symbol_rejected(self):
        with pytest.raises(ValueError):
            TwoStackMachine(
                states=frozenset({"s"}),
                alphabet=frozenset({"a"}),
                transitions={("s", "a", "a"): [("s", ("z",), ())]},
                start="s",
                accepting=frozenset(),
            )

    def test_initial_config_loads_input_reversed(self):
        m = copy_machine()
        cfg = m.initial_config(["a", "a"])
        # first input symbol must be on top (stacks are top-last tuples)
        assert cfg.stack2 == ("a", "a")
        assert cfg.stack1 == ()


class TestExecution:
    @pytest.mark.parametrize("n", [0, 1, 2, 5])
    def test_copy_machine_accepts(self, n):
        assert copy_machine().accepts(["a"] * n)

    def test_trace_moves_symbols(self):
        trace = copy_machine().run_trace(["a", "a"])
        final = trace[-1]
        assert final.state == "acc"
        assert len(final.stack1) == 2
        assert final.stack2 == ()

    def test_stuck_machine_rejects(self):
        m = TwoStackMachine(
            states=frozenset({"s", "acc"}),
            alphabet=frozenset({"a"}),
            transitions={},
            start="s",
            accepting=frozenset({"acc"}),
        )
        assert not m.accepts(["a"])

    def test_gamma_push_order(self):
        # gamma ("x", "y") must leave "x" on top
        m = TwoStackMachine(
            states=frozenset({"s", "acc"}),
            alphabet=frozenset({"a", "x", "y"}),
            transitions={
                ("s", BOTTOM, "a"): [("s", ("x", "y"), ())],
                ("s", "x", BOTTOM): [("acc", (), ())],
            },
            start="s",
            accepting=frozenset({"acc"}),
        )
        cfg = m.initial_config(["a"])
        (cfg2,) = m.step(cfg)
        assert cfg2.stack1 == ("y", "x")  # top-last: x on top
        assert m.accepts(["a"])
