"""Tests for constraint enforcement (compiling dependencies into TD)."""

import pytest

from repro import Database, Interpreter, parse_goal
from repro.core.formulas import Call, conc
from repro.core.terms import Atom, Constant
from repro.workflow import (
    Agent,
    Choice,
    ParFlow,
    SeqFlow,
    Step,
    Task,
    WorkflowSpec,
    compile_workflows,
)
from repro.workflow.compiler import agent_facts
from repro.workflow.constraints import (
    Before,
    Exclusive,
    MustFollow,
    Requires,
    check_trace,
)
from repro.workflow.enforce import enforce
from repro.workflow.scheduler import SimulationResult


def parallel_spec():
    """Two tasks the flow runs in parallel -- unconstrained, either order."""
    return WorkflowSpec(
        "flow",
        ParFlow(Step("build"), Step("ship")),
        (Task("build", role="t"), Task("ship", role="t")),
    )


def run_goal(program, item="w1", seed=None):
    interp = Interpreter(program)
    db = Database(agent_facts([Agent("a1", ("t",))]))
    goal = Call(Atom("wf_flow", (Constant(item),)))
    exe = interp.simulate(goal, db, seed=seed)
    return exe


class TestRequires:
    def test_orders_parallel_tasks(self):
        program = enforce(
            compile_workflows([parallel_spec()]), [Requires("ship", "build")]
        )
        # under every seed, ship now starts after build completes
        for seed in (None, 1, 2, 3, 4):
            exe = run_goal(program, seed=seed)
            assert exe is not None
            result = SimulationResult(exe)
            assert check_trace(result, [Requires("ship", "build")]) == []

    def test_unconstrained_can_violate(self):
        program = compile_workflows([parallel_spec()])
        violated = False
        for seed in range(12):
            exe = run_goal(program, seed=seed)
            result = SimulationResult(exe)
            if check_trace(result, [Requires("ship", "build")]):
                violated = True
                break
        assert violated  # some schedule ships before building

    def test_impossible_requirement_blocks(self):
        # prerequisite that never runs: the guarded task deadlocks
        program = enforce(
            compile_workflows([parallel_spec()]), [Requires("ship", "audit")]
        )
        assert run_goal(program) is None


class TestExclusive:
    def test_choice_untouched(self):
        spec = WorkflowSpec(
            "flow",
            Choice(Step("fast"), Step("slow")),
            (Task("fast", role="t"), Task("slow", role="t")),
        )
        program = enforce(
            compile_workflows([spec]), [Exclusive("fast", "slow")]
        )
        exe = run_goal(program)
        assert exe is not None
        ran = {str(f.args[0]) for f in exe.database.facts("done")}
        assert len(ran & {"fast", "slow"}) == 1

    def test_parallel_both_becomes_unsatisfiable(self):
        # the flow demands both tasks; exclusivity makes that impossible
        program = enforce(
            compile_workflows([parallel_spec()]), [Exclusive("build", "ship")]
        )
        assert run_goal(program) is None


class TestValidation:
    def test_global_constraints_rejected(self):
        program = compile_workflows([parallel_spec()])
        with pytest.raises(ValueError):
            enforce(program, [Before("build", "ship")])
        with pytest.raises(ValueError):
            enforce(program, [MustFollow("build", "ship")])

    def test_unknown_task_rejected(self):
        program = compile_workflows([parallel_spec()])
        with pytest.raises(ValueError):
            enforce(program, [Requires("ghost", "build")])

    def test_enforcement_preserves_unconstrained_behaviour(self):
        base = compile_workflows([parallel_spec()])
        same = enforce(base, [])
        assert str(same) == str(base)
