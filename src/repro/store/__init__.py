"""Pluggable storage backends for TD database states.

See :mod:`repro.store.base` for the protocol and docs/STORAGE.md for
the backend matrix, savepoint mapping, and recovery procedure.

The one-liner entry point is :func:`open_store`::

    store = open_store("mem")                 # volatile reference backend
    store = open_store("sqlite:run.tdlog")    # WAL-durable SQLite file
    store = open_store("run.tdlog")           # extension implies sqlite

which is exactly what ``tdlog --store`` feeds through.
"""

from __future__ import annotations

from typing import Optional

from ..core.database import Database
from .base import Savepoint, Store, StoreCrashed, StoreError, replay_trace
from .context import (
    StoreProvider,
    active_store_provider,
    provide_store,
    using_store_provider,
)
from .memory import MemoryStore
from .sqlite import SqliteStore

__all__ = [
    "Store",
    "StoreError",
    "StoreCrashed",
    "Savepoint",
    "MemoryStore",
    "SqliteStore",
    "StoreProvider",
    "active_store_provider",
    "using_store_provider",
    "provide_store",
    "replay_trace",
    "open_store",
]

#: Conventional file extension for SQLite-backed stores.
STORE_SUFFIX = ".tdlog"


def open_store(
    spec: str,
    *,
    db: Optional[Database] = None,
    faults=None,
    snapshot_every: Optional[int] = None,
) -> Store:
    """Open a store from a CLI-style spec.

    ``"mem"`` gives a :class:`MemoryStore` (optionally seeded with
    *db*); ``"sqlite:PATH"`` -- or a bare path ending in ``.tdlog`` --
    opens a :class:`SqliteStore` at PATH.  A durable store that already
    holds facts keeps them (that is the point); *db* seeds it only when
    the file is fresh and empty.
    """
    if spec == "mem":
        return MemoryStore(db)
    if spec.startswith("sqlite:"):
        path = spec[len("sqlite:"):]
    elif spec.endswith(STORE_SUFFIX):
        path = spec
    else:
        raise StoreError(
            "unknown store spec %r (expected 'mem', 'sqlite:PATH', "
            "or a path ending in %r)" % (spec, STORE_SUFFIX)
        )
    if not path:
        raise StoreError("empty path in store spec %r" % (spec,))
    kwargs = {"faults": faults}
    if snapshot_every is not None:
        kwargs["snapshot_every"] = snapshot_every
    store = SqliteStore(path, **kwargs)
    if db is not None and len(store) == 0 and len(db) > 0:
        store.insert_all(db)
    return store
