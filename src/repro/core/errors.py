"""Exception hierarchy for the Transaction Datalog engines."""

from __future__ import annotations

from typing import Optional

__all__ = [
    "TDError",
    "SafetyError",
    "SearchBudgetExceeded",
    "UnsupportedProgramError",
]


class TDError(Exception):
    """Base class for engine errors."""


class SafetyError(TDError):
    """An elementary update or builtin was executed with unbound variables.

    TD is a safe language; engines surface violations loudly instead of
    guessing bindings.
    """


class SearchBudgetExceeded(TDError):
    """The search exhausted its configuration budget without an answer.

    Full TD is RE-complete, so the interpreter is a *semi*-decision
    procedure: when the budget runs out the query's status is unknown,
    which is reported as this exception rather than as failure.

    ``spent`` is how much of the budget was actually consumed when the
    search gave up (equal to ``explored`` unless the raiser counts
    something coarser, e.g. the state-space explorer counting interned
    states while nested isolation searches spend the same budget).
    """

    def __init__(self, explored: int, budget: int, spent: Optional[int] = None):
        self.explored = explored
        self.budget = budget
        self.spent = explored if spent is None else spent
        super().__init__(
            "search explored %d configurations (budget %d, spent %d) "
            "without resolving the goal" % (explored, budget, self.spent)
        )


class UnsupportedProgramError(TDError):
    """A program uses features outside the selected engine's sublanguage
    (e.g. concurrent composition fed to the sequential evaluator)."""
