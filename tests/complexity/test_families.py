"""Tests for the benchmark program families."""

import pytest

from repro import Database, Interpreter, parse_goal, select_engine
from repro.complexity import (
    binary_counter_family,
    chain_edges,
    diverging_counter_machine,
    grid_andor_graph,
    insert_only_closure,
    nonrecursive_path_program,
    transitive_closure_program,
)


class TestBinaryCounter:
    def test_counts_to_all_set(self):
        program, goal, db = binary_counter_family(3)
        exe = Interpreter(program, max_configs=2_000_000).simulate(goal, db)
        assert exe is not None
        # final state: all three bits set
        assert len(exe.database.facts("set")) == 3

    def test_program_is_fixed_data_grows(self):
        p2, _, d2 = binary_counter_family(2)
        p6, _, d6 = binary_counter_family(6)
        assert str(p2) == str(p6)  # same rules
        assert len(d6) > len(d2)  # more data

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            binary_counter_family(0)


class TestChainEdges:
    def test_chain_shape(self):
        db = chain_edges(4)
        assert len(db.facts("e")) == 4
        assert len(db.facts("src")) == 1

    def test_extra_random_edges(self):
        db = chain_edges(4, extra_random=10, seed=1)
        assert len(db.facts("e")) >= 4

    def test_seed_determinism(self):
        assert chain_edges(5, 5, seed=3) == chain_edges(5, 5, seed=3)


class TestDivergingMachine:
    def test_never_halts(self):
        with pytest.raises(TimeoutError):
            diverging_counter_machine().run(max_steps=50)


class TestGridAndOr:
    def test_layers_alternate(self):
        g = grid_andor_graph(depth=4, fanout=2, seed=0)
        assert g.kind["n0_0"] == "and"
        assert g.kind["n1_0"] == "or"

    def test_deterministic(self):
        g1 = grid_andor_graph(3, 2, seed=5)
        g2 = grid_andor_graph(3, 2, seed=5)
        assert g1.successors == g2.successors


class TestProgramFamiliesClassify:
    def test_families_land_in_expected_fragments(self):
        from repro import Sublanguage, classify

        assert classify(transitive_closure_program()) is Sublanguage.QUERY_ONLY
        assert classify(nonrecursive_path_program()) is Sublanguage.NONRECURSIVE
        from repro import analyze

        assert analyze(insert_only_closure()).insert_only
