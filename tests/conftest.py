"""Shared fixtures: small programs and databases used across test files."""

import itertools
import os

import pytest

from repro import Database, Interpreter, parse_database, parse_program


@pytest.fixture(autouse=True)
def _store_backend_matrix(tmp_path_factory):
    """CI matrix hook: with ``STORE=mem`` or ``STORE=sqlite`` in the
    environment, install an ambient store provider that mints a fresh
    backend per solve, so the whole engine suite exercises that storage
    backend without touching a single test.  Unset (the default), this
    fixture is a no-op.
    """
    backend = os.environ.get("STORE")
    if backend not in ("mem", "sqlite"):
        yield
        return

    from repro import MemoryStore, SqliteStore
    from repro.store import using_store_provider

    counter = itertools.count()
    stores = []
    root = tmp_path_factory.mktemp("ambient-store") if backend == "sqlite" else None

    class Mint:
        def provide(self, db):
            if backend == "mem":
                store = MemoryStore(db if db is not None else Database())
            else:
                store = SqliteStore(str(root / ("solve%d.tdlog" % next(counter))))
                if db is not None:
                    store.insert_all(db)
            stores.append(store)
            return store

    with using_store_provider(Mint()):
        yield
    for store in stores:
        try:
            store.close()
        except Exception:
            pass


@pytest.fixture
def empty_db():
    return Database()


@pytest.fixture
def bank_program():
    """The paper's Examples 2.1/2.2: nested banking transactions."""
    return parse_program(
        """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
    )


@pytest.fixture
def bank_db():
    return parse_database("balance(a, 100). balance(b, 10).")


@pytest.fixture
def tc_program():
    """Query-only recursive TD: transitive closure."""
    return parse_program(
        """
        path(X, Y) <- e(X, Y).
        path(X, Y) <- e(X, Z) * path(Z, Y).
        """
    )


@pytest.fixture
def chain_db():
    return parse_database("e(a, b). e(b, c). e(c, d).")


@pytest.fixture
def simulate_program():
    """The paper's Example 3.2 shape: dynamic instance creation."""
    return parse_program(
        """
        simulate <- workitem(W) * del.workitem(W) * (workflow(W) | simulate).
        simulate <- not workitem(_).
        workflow(W) <- ins.done(W).
        """
    )
