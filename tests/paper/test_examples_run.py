"""End-to-end checks: every example script runs cleanly.

The examples are the repository's quickstart surface; breaking one is a
release blocker, so they run (with captured output) as part of the test
suite.  Each assertion pins a line the walkthrough's narrative depends
on.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamplesRun:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "final state:" in out
        assert "after transfer:" in out
        assert "overdraft attempt commits: False" in out

    def test_banking(self, capsys):
        out = run_example("banking.py", capsys)
        assert "balance(alice, 70)" in out
        assert "commits: False" in out
        assert "isolated transfers always give 110" in out

    def test_genome_lab(self, capsys):
        out = run_example("genome_lab.py", capsys)
        assert "completed: dna0000" in out
        assert "task counts:" in out
        assert "conclusive results:" in out

    def test_cooperating_workflows(self, capsys):
        out = run_example("cooperating_workflows.py", capsys)
        assert "mapdata published at event" in out
        assert "assembly alone commits: False" in out

    def test_complexity_tour(self, capsys):
        out = run_example("complexity_tour.py", capsys)
        assert "query-only (Datalog)" in out
        assert "budget 5000" in out
        assert "native=True  TD=True" in out
        assert "drain with tokens commits:    True" in out

    def test_insurance_claims(self, capsys):
        out = run_example("insurance_claims.py", capsys)
        assert "paid out: claim000" in out
        assert "completable:         yes" in out
        assert "completable:         no" in out  # the skeleton-staff case
