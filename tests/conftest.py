"""Shared fixtures: small programs and databases used across test files."""

import pytest

from repro import Database, Interpreter, parse_database, parse_program


@pytest.fixture
def empty_db():
    return Database()


@pytest.fixture
def bank_program():
    """The paper's Examples 2.1/2.2: nested banking transactions."""
    return parse_program(
        """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
    )


@pytest.fixture
def bank_db():
    return parse_database("balance(a, 100). balance(b, 10).")


@pytest.fixture
def tc_program():
    """Query-only recursive TD: transitive closure."""
    return parse_program(
        """
        path(X, Y) <- e(X, Y).
        path(X, Y) <- e(X, Z) * path(Z, Y).
        """
    )


@pytest.fixture
def chain_db():
    return parse_database("e(a, b). e(b, c). e(c, d).")


@pytest.fixture
def simulate_program():
    """The paper's Example 3.2 shape: dynamic instance creation."""
    return parse_program(
        """
        simulate <- workitem(W) * del.workitem(W) * (workflow(W) | simulate).
        simulate <- not workitem(_).
        workflow(W) <- ins.done(W).
        """
    )
