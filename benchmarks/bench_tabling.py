"""Ablation: the tabled sequential engine's table dynamics.

Tabling is the optimization the paper names for the tame fragments;
these benchmarks measure its two practical payoffs on our
dependency-driven implementation:

* warm-table reuse: the table persists across queries, so repeated and
  overlapping queries cost a fraction of the first;
* goal-directedness: a ground point query touches fewer keys than an
  open query on the same data.
"""

import pytest

from repro import SequentialEngine, parse_goal
from repro.complexity import chain_edges, measure, print_series, transitive_closure_program


def test_warm_table_reuse(benchmark):
    program = transitive_closure_program()
    db = chain_edges(24)
    engine = SequentialEngine(program)
    _, cold_s = measure(lambda: list(engine.solve(parse_goal("path(0, X)"), db)))
    _, warm_s = measure(lambda: list(engine.solve(parse_goal("path(0, X)"), db)))
    _, overlap_s = measure(lambda: list(engine.solve(parse_goal("path(4, X)"), db)))
    rows = [
        ["cold path(0, X)", cold_s],
        ["warm repeat", warm_s],
        ["overlapping path(4, X)", overlap_s],
    ]
    print_series("tabling: warm-table reuse", ["query", "seconds"], rows)
    assert warm_s < cold_s
    assert overlap_s < cold_s

    fresh = SequentialEngine(program)
    benchmark.pedantic(
        lambda: list(fresh.solve(parse_goal("path(0, X)"), db)),
        rounds=3,
        iterations=1,
    )


def test_goal_directedness(benchmark):
    """A ground query near the chain's end touches a short key chain."""
    program = transitive_closure_program()
    db = chain_edges(24)
    rows = []
    point = SequentialEngine(program)
    _, point_s = measure(lambda: point.succeeds(parse_goal("path(20, 24)"), db))
    point_keys, _ = point.table_size
    full = SequentialEngine(program)
    _, full_s = measure(lambda: list(full.solve(parse_goal("path(X, Y)"), db)))
    full_keys, _ = full.table_size
    rows.append(["point path(20, 24)", point_keys, point_s])
    rows.append(["open path(X, Y)", full_keys, full_s])
    print_series(
        "tabling: goal-directedness (keys touched)",
        ["query", "table keys", "seconds"],
        rows,
    )
    assert point_keys < full_keys
    assert point_s < full_s

    benchmark.pedantic(
        lambda: SequentialEngine(program).succeeds(parse_goal("path(20, 24)"), db),
        rounds=3,
        iterations=1,
    )
