"""The ``Store`` storage protocol: the database surface the engines use.

A TD execution is a sequence of database states, and until this package
existed every state was an in-memory immutable
:class:`~repro.core.database.Database` that died with the process.  The
protocol below carves out the storage surface the engines actually
touch -- fact enumeration (``facts``), tuple testing (``matching`` /
``holds``), elementary updates (``insert`` / ``delete`` and their batch
forms), content identity for memo keys (``content_hash``), and the
per-``(pred, position)`` lazy indexes (``arg_index``) -- so that the
same search code can run against an in-memory state or a durable one.

Two backends ship with the repo (see docs/STORAGE.md for the matrix):

* :class:`repro.store.memory.MemoryStore` -- the reference backend: a
  thin transactional shell over the copy-on-write ``Database``.
* :class:`repro.store.sqlite.SqliteStore` -- the durable backend: an
  append-only write-ahead log of fact deltas with periodic snapshots
  over stdlib ``sqlite3``, where ``iso`` boundaries map to SQLite
  savepoints and recovery replays the WAL tail into the last snapshot.

Transactional semantics follow the paper's isolation construct: an
``iso(a)`` sub-execution is atomic, so a store maps it to a *savepoint*
-- ``savepoint()`` at entry, ``release()`` on commit, ``rollback()`` on
failure/backtrack (the logical-update-view-to-transaction mapping of
Wielemaker's transaction support for Prolog).  Savepoints nest and are
strictly LIFO, exactly like the nested ``iso`` they model.

The engines never import this package: they duck-type on the protocol
(the same discipline ``faults=`` uses), so ``repro.core`` stays free of
storage dependencies and a user-supplied store only needs to quack.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, Mapping

from ..core.database import Database
from ..core.terms import Atom
from ..core.unify import Substitution

__all__ = [
    "Store",
    "StoreError",
    "StoreCorrupt",
    "StoreBusy",
    "StoreCrashed",
    "Savepoint",
    "replay_trace",
]


class StoreError(RuntimeError):
    """A storage backend failed (bad savepoint discipline, closed store,
    unreadable file)."""


class StoreCorrupt(StoreError):
    """A durable store's bytes failed verification: a checksum mismatch,
    an unreadable record frame, or an unpicklable payload.

    Carries the location of the damage as structured fields so callers
    (CLI, fsck) can report it without a raw traceback: ``path`` (store
    file), ``table`` (``wal`` or ``snapshot``), ``rowid`` (the offending
    row, ``None`` when the damage is file-level), and ``reason``.
    """

    def __init__(self, path: str, table: str, rowid, reason: str):
        self.path = path
        self.table = table
        self.rowid = rowid
        self.reason = reason
        where = table if rowid is None else "%s row %s" % (table, rowid)
        super().__init__("%s: corrupt %s: %s" % (path, where, reason))


class StoreBusy(StoreError):
    """Another live process holds the writer lease (or SQLite kept
    reporting ``SQLITE_BUSY`` past the retry budget).  Read-only opens
    are still possible; see docs/STORAGE.md."""


class StoreCrashed(StoreError):
    """The store's simulated crash point fired (see
    :class:`repro.faults.plan.StoreCrash`): the process is considered
    dead from the store's point of view, and every further operation on
    this instance raises.  Recovery happens by *reopening* the store --
    the WAL tail replays into the last snapshot and any uncommitted
    savepoint is rolled back, exactly as after a real kill."""


class Savepoint:
    """An opaque savepoint token, returned by :meth:`Store.savepoint`.

    Tokens are positional: they record the depth at which they were
    taken so backends can enforce the LIFO discipline that nested
    ``iso`` guarantees.
    """

    __slots__ = ("name", "depth")

    def __init__(self, name: str, depth: int):
        self.name = name
        self.depth = depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Savepoint(%s, depth=%d)" % (self.name, self.depth)


class Store(ABC):
    """Abstract storage backend: a current database state plus a
    transactional update API.

    The *query* half of the protocol is implemented here once, by
    delegation to the immutable :meth:`database` snapshot -- backends
    only provide the state transitions.  This keeps every backend
    semantically interchangeable with the plain ``Database`` the
    engines search over: ``matching`` yields the same substitutions,
    ``content_hash`` agrees with ``hash(store.database())``, and the
    lazy ``arg_index`` structures are the exact objects PR 3's
    copy-on-write machinery builds.
    """

    # -- state ----------------------------------------------------------------

    @abstractmethod
    def database(self) -> Database:
        """The current state as an immutable :class:`Database`.

        This is the object engines memoize on and search over; it must
        be cheap (backends keep a live in-memory mirror rather than
        materializing on demand).
        """

    # -- queries (concrete: delegation to the mirror) -------------------------

    def facts(self, pred: str) -> FrozenSet[Atom]:
        """All facts for a predicate (empty frozenset if none)."""
        return self.database().facts(pred)

    def matching(
        self, pattern: Atom, subst: Substitution = {}
    ) -> Iterator[Substitution]:
        """Tuple testing: one extended substitution per matching fact
        (the elementary query operation of TD)."""
        return self.database().match(pattern, subst)

    def holds(self, pattern: Atom, subst: Substitution = {}) -> bool:
        """True if at least one fact matches *pattern*."""
        return self.database().holds(pattern, subst)

    def predicates(self) -> AbstractSet[str]:
        """Predicates that currently have at least one fact."""
        return self.database().predicates()

    def arg_index(self, pred: str, pos: int) -> Mapping:
        """The lazy per-``(pred, position)`` index of the current state
        (built on first use, shared copy-on-write across successor
        states).  Treat as read-only."""
        return self.database().arg_index(pred, pos)

    def content_hash(self) -> int:
        """Content identity of the current state -- equal for two stores
        holding the same facts, which is the property every memo table
        keyed on states relies on."""
        return hash(self.database())

    def __contains__(self, fact: Atom) -> bool:
        return fact in self.database()

    def __len__(self) -> int:
        return len(self.database())

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.database())

    # -- updates --------------------------------------------------------------

    @abstractmethod
    def insert(self, fact: Atom) -> Database:
        """Elementary insertion ``ins.p(t)``; returns the new state.
        Inserting a present fact is a no-op (states are sets)."""

    @abstractmethod
    def delete(self, fact: Atom) -> Database:
        """Elementary deletion ``del.p(t)``; returns the new state.
        Deleting an absent fact is a no-op."""

    def insert_all(self, facts: Iterable[Atom]) -> Database:
        db = self.database()
        for fact in facts:
            db = self.insert(fact)
        return db

    def delete_all(self, facts: Iterable[Atom]) -> Database:
        db = self.database()
        for fact in facts:
            db = self.delete(fact)
        return db

    # -- transactions ---------------------------------------------------------

    @abstractmethod
    def savepoint(self) -> Savepoint:
        """Open a nested transaction scope (an ``iso`` boundary)."""

    @abstractmethod
    def release(self, sp: Savepoint) -> None:
        """Commit the scope opened by *sp* into its parent."""

    @abstractmethod
    def rollback(self, sp: Savepoint) -> None:
        """Abort the scope opened by *sp*: the state reverts to the
        moment the savepoint was taken (rollback-on-failure leaves no
        trace, as the paper's semantics demand)."""

    @contextmanager
    def transaction(self) -> Iterator[Savepoint]:
        """``with store.transaction():`` -- savepoint on entry, release
        on success, rollback on any exception."""
        sp = self.savepoint()
        try:
            yield sp
        except BaseException:
            try:
                self.rollback(sp)
            except StoreCrashed:
                # A crashed store cannot roll back; reopening it will
                # (the uncommitted savepoint dies with the process).
                pass
            raise
        else:
            self.release(sp)

    # -- lifecycle ------------------------------------------------------------

    def sync(self) -> None:
        """Flush durable state (no-op for volatile backends)."""

    def close(self) -> None:
        """Release backend resources (no-op for volatile backends)."""

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Backend-described state summary (see ``tdlog store inspect``)."""
        db = self.database()
        counts: Dict[str, int] = {
            pred: len(db.facts(pred)) for pred in sorted(db.predicates())
        }
        return {
            "backend": type(self).__name__,
            "facts": len(db),
            "predicates": counts,
        }


def replay_trace(store: Store, actions: Iterable) -> Database:
    """Replay an execution trace's elementary updates into *store*.

    ``ins``/``del`` actions apply directly; an ``iso`` action replays
    its subtrace inside a nested savepoint (released on success, rolled
    back if the replay fails) -- the savepoint mapping of the paper's
    isolation construct.  A ``table`` action (the cached big-step
    execution of a tabled call) replays the same way.  Query actions
    (``test``, ``neg``, ``call``, ``builtin``) read but never write and
    are skipped.  Returns the store's final state.

    This is the durable twin of
    :func:`repro.core.transitions.replay_actions`.
    """
    db = store.database()
    for action in actions:
        kind = action.kind
        if kind == "ins":
            db = store.insert(action.atom)
        elif kind == "del":
            db = store.delete(action.atom)
        elif kind in ("iso", "table"):
            with store.transaction():
                db = replay_trace(store, action.subtrace)
    return db
