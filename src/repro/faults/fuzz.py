"""Crash-point and byte-corruption fuzzing for the durable store.

The chaos harness (:mod:`repro.faults.chaos`) perturbs *searches*; this
module perturbs the *storage layer* underneath them, with the same
determinism discipline: every case derives from one integer seed, and
the report contains outcome classes only -- no paths, no byte offsets,
no wall clock -- so ``tdlog chaos --store-faults`` is byte-identical
across machines and Python versions.

Two case families, one verdict rule:

**Crash cases** (:func:`run_crash_case`) drive a seeded script of
inserts/deletes/savepoints/releases/rollbacks/checkpoints against a
:class:`~repro.store.sqlite.SqliteStore` with a
:class:`~repro.faults.plan.StoreCrash` armed at one of the named crash
points, then *reopen* the file.  The oracle is the set of states a
clean run of the same script passes through at savepoint-stack-empty
moments: SQLite commits exactly at those boundaries, so whatever append,
fold, or release the crash tore, recovery must land on one of them --
anything else means a committed state leaked partial effects.

**Corruption cases** (:func:`run_corruption_case`) build a clean store,
then flip, truncate, or zero seeded bytes in its WAL/snapshot blobs and
reopen.  The oracle is the set of *WAL-prefix states* (snapshot plus
each successive surviving WAL row): a verified-checksum log may heal by
truncating a torn tail -- landing on a shorter prefix -- but may never
invent state.  A damaged store must either recover to a prefix state or
refuse with a structured :class:`~repro.store.base.StoreCorrupt`; when
it refuses, ``fsck`` must diagnose the damage, ``--repair`` (for WAL
damage) must roll back to a prefix state, and the read-only degraded
open must still work (for snapshot damage, which is unrepairable by
design).  A raw pickle traceback or an out-of-oracle state anywhere is
a violation.
"""

from __future__ import annotations

import os
import random
import shutil
import sqlite3
import tempfile
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..core.terms import Atom, Constant
from ..store import open_store
from ..store.base import StoreCorrupt, StoreCrashed, StoreError
from ..store.fsck import fsck
from ..store.sqlite import SqliteStore, decode_record
from .plan import CRASH_POINTS, FaultPlan, StoreCrash, Window

__all__ = [
    "FuzzOutcome",
    "run_crash_case",
    "run_corruption_case",
    "run_store_fuzz",
    "format_fuzz_report",
]

_PREDS = ("acct", "audit", "queue")

#: Corruption mutations the fuzzer draws from (by seed).  Each targets
#: a different layer of the frame: payload bytes (CRC catches), the
#: header itself (magic/length checks catch), and the
#: interrupted-append shape (length check classifies as torn).
MUTATIONS = (
    "flip-wal-payload",     # one payload byte of some WAL row
    "flip-wal-header",      # one header byte of some WAL row
    "truncate-wal-final",   # final WAL row cut short: a torn tail
    "truncate-wal-mid",     # a non-final WAL row cut short: damage
    "zero-wal-row",         # a whole WAL row replaced by zero bytes
    "flip-snapshot-payload",  # one payload byte of a snapshot row
)


@dataclass(frozen=True)
class FuzzOutcome:
    """One fuzz case's classification.  ``violation`` is ``None`` for
    every acceptable ending (oracle-equal recovery or clean refusal and
    diagnosis); anything else is the harness's verdict text."""

    family: str      # "crash" or "corruption"
    label: str       # crash point, or mutation name
    seed: int
    outcome: str     # outcome class, e.g. "recovered", "refused+repaired"
    violation: Optional[str] = None


# -- the scripted workload ----------------------------------------------------


def _fact(rng: random.Random) -> Atom:
    pred = rng.choice(_PREDS)
    return Atom(pred, (Constant(rng.randrange(12)), Constant(rng.randrange(4))))


def _script(seed: int, length: int = 36) -> List[Tuple]:
    """A seeded store-operation script: mostly inserts/deletes, with
    nested savepoints (released or rolled back) and a mid-script
    checkpoint so both snapshot and WAL tail end up populated."""
    rng = random.Random(seed)
    ops: List[Tuple] = []
    depth = 0
    checkpointed = False
    for i in range(length):
        if i >= length // 3 and depth == 0 and not checkpointed:
            ops.append(("checkpoint",))
            checkpointed = True
            continue
        roll = rng.random()
        if roll < 0.15 and depth < 3:
            ops.append(("savepoint",))
            depth += 1
        elif roll < 0.30 and depth > 0:
            ops.append(("release",) if rng.random() < 0.7 else ("rollback",))
            depth -= 1
        elif roll < 0.45:
            ops.append(("del", _fact(rng)))
        else:
            ops.append(("ins", _fact(rng)))
    while depth > 0:
        ops.append(("release",))
        depth -= 1
    # Guarantee a WAL tail past the checkpoint (corruption needs rows
    # to chew on).
    for _ in range(4):
        ops.append(("ins", _fact(rng)))
    return ops


def _apply(store, ops) -> List[FrozenSet[Atom]]:
    """Run the script; returns the committed (savepoint-stack-empty)
    states in order, starting with the initial state.  Raises whatever
    the store raises (the crash runner catches ``StoreCrashed``)."""
    states = [frozenset(store.database())]
    stack = []
    for op in ops:
        kind = op[0]
        if kind == "ins":
            store.insert(op[1])
        elif kind == "del":
            store.delete(op[1])
        elif kind == "savepoint":
            stack.append(store.savepoint())
        elif kind == "release":
            store.release(stack.pop())
        elif kind == "rollback":
            store.rollback(stack.pop())
        elif kind == "checkpoint":
            store.checkpoint()
        if not stack:
            states.append(frozenset(store.database()))
    return states


def _event_counts(path: str, seed: int) -> Tuple[List[FrozenSet[Atom]], dict]:
    """Clean run of the script at *path*: the stack-empty oracle states
    plus how many ticks each crash-point family saw (so a case can arm
    a window that actually fires)."""
    store = SqliteStore(path, snapshot_every=10_000)
    try:
        states = _apply(store, _script(seed))
        counts = {
            "pre-fsync": store._appends,
            "post-fsync": store._appends,
            "mid-checkpoint-fold": store._checkpoints,
            "mid-savepoint-release": store._released,
        }
    finally:
        store.close()
    return states, counts


# -- crash cases --------------------------------------------------------------


def run_crash_case(point: str, seed: int, directory: Optional[str] = None) -> FuzzOutcome:
    """Arm a :class:`StoreCrash` at *point*, run the seeded script until
    it fires, reopen, and check the recovered state against the
    stack-empty oracle."""
    workdir = tempfile.mkdtemp(prefix="tdlog-fuzz-", dir=directory)
    try:
        oracle_states, counts = _event_counts(
            os.path.join(workdir, "oracle.tdlog"), seed
        )
        events = counts[point]
        if events == 0:
            # The script happened to produce no event of this family
            # (e.g. every savepoint rolled back); nothing to crash.
            return FuzzOutcome("crash", point, seed, "no-event")
        tick = 1 + random.Random(
            (seed << 3) ^ CRASH_POINTS.index(point)
        ).randrange(events)
        plan = FaultPlan(
            seed=seed,
            store_crashes=(StoreCrash(Window(tick, tick + 1), point=point),),
        )
        path = os.path.join(workdir, "crash.tdlog")
        store = SqliteStore(path, snapshot_every=10_000, faults=plan)
        crashed = False
        try:
            _apply(store, _script(seed))
        except StoreCrashed:
            crashed = True
        finally:
            store.close()
        recovered = SqliteStore(path, snapshot_every=10_000)
        try:
            state = frozenset(recovered.database())
        finally:
            recovered.close()
        oracle = set(oracle_states)
        if state not in oracle:
            return FuzzOutcome(
                "crash", point, seed, "violation",
                violation="recovered state matches no committed state of "
                          "the clean run (crash point %s, tick %d)"
                          % (point, tick),
            )
        if not crashed:
            return FuzzOutcome("crash", point, seed, "no-crash")
        return FuzzOutcome("crash", point, seed, "recovered")
    except Exception as exc:  # any non-structured escape is a finding
        return FuzzOutcome(
            "crash", point, seed, "violation",
            violation="unexpected %s: %s" % (type(exc).__name__, exc),
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# -- corruption cases ---------------------------------------------------------


def _prefix_states(path: str) -> List[FrozenSet[Atom]]:
    """Snapshot state plus each successive WAL row applied: every state
    a checksum-verified recovery may legitimately land on."""
    conn = sqlite3.connect(path)
    try:
        facts = {
            decode_record(blob, path=path, table="snapshot", rowid=rowid)
            for rowid, blob in conn.execute("SELECT rowid, fact FROM snapshot")
        }
        checkpoint_seq = conn.execute(
            "SELECT value FROM meta WHERE key='checkpoint_seq'"
        ).fetchone()[0]
        states = [frozenset(facts)]
        for seq, op, blob in conn.execute(
            "SELECT seq, op, fact FROM wal WHERE seq > ? ORDER BY seq",
            (checkpoint_seq,),
        ):
            fact = decode_record(blob, path=path, table="wal", rowid=seq)
            if op == "+":
                facts.add(fact)
            else:
                facts.discard(fact)
            states.append(frozenset(facts))
    finally:
        conn.close()
    return states


def _mutate(path: str, mutation: str, rng: random.Random) -> bool:
    """Apply *mutation* to the store file's blobs; returns False when
    the store has no row the mutation could target."""
    conn = sqlite3.connect(path, isolation_level=None)
    try:
        wal_rows = list(conn.execute("SELECT seq, fact FROM wal ORDER BY seq"))
        snap_rows = list(conn.execute("SELECT rowid, fact FROM snapshot"))

        def flip(blob: bytes, index: int) -> bytes:
            out = bytearray(blob)
            out[index] ^= 1 + rng.randrange(255)
            return bytes(out)

        if mutation == "flip-wal-payload":
            if not wal_rows:
                return False
            seq, blob = wal_rows[rng.randrange(len(wal_rows))]
            if len(blob) <= 12:
                return False
            new = flip(blob, 12 + rng.randrange(len(blob) - 12))
        elif mutation == "flip-wal-header":
            if not wal_rows:
                return False
            seq, blob = wal_rows[rng.randrange(len(wal_rows))]
            new = flip(blob, rng.randrange(min(12, len(blob))))
        elif mutation == "truncate-wal-final":
            if not wal_rows:
                return False
            seq, blob = wal_rows[-1]
            new = bytes(blob[: 12 + rng.randrange(max(1, len(blob) - 12))])
        elif mutation == "truncate-wal-mid":
            if len(wal_rows) < 2:
                return False
            seq, blob = wal_rows[rng.randrange(len(wal_rows) - 1)]
            new = bytes(blob[: 12 + rng.randrange(max(1, len(blob) - 12))])
        elif mutation == "zero-wal-row":
            if not wal_rows:
                return False
            seq, blob = wal_rows[rng.randrange(len(wal_rows))]
            new = b"\x00" * len(blob)
        elif mutation == "flip-snapshot-payload":
            if not snap_rows:
                return False
            rowid, blob = snap_rows[rng.randrange(len(snap_rows))]
            conn.execute(
                "UPDATE snapshot SET fact=? WHERE rowid=?",
                (flip(blob, rng.randrange(len(blob))), rowid),
            )
            return True
        else:
            raise ValueError("unknown mutation %r" % mutation)
        conn.execute("UPDATE wal SET fact=? WHERE seq=?", (new, seq))
        return True
    finally:
        conn.close()


def run_corruption_case(seed: int, directory: Optional[str] = None) -> FuzzOutcome:
    """Build a clean store, damage seeded bytes, and check that reopen /
    fsck / repair tell a consistent, prefix-state story."""
    rng = random.Random(seed ^ 0xC0FFEE)
    mutation = MUTATIONS[seed % len(MUTATIONS)]
    workdir = tempfile.mkdtemp(prefix="tdlog-fuzz-", dir=directory)
    path = os.path.join(workdir, "victim.tdlog")
    try:
        store = SqliteStore(path, snapshot_every=10_000)
        try:
            _apply(store, _script(seed))
        finally:
            store.close()
        prefix_list = _prefix_states(path)
        prefixes = set(prefix_list)
        final_before = prefix_list[-1]
        if not _mutate(path, mutation, rng):
            return FuzzOutcome("corruption", mutation, seed, "no-target")
        try:
            reopened = SqliteStore(path, snapshot_every=10_000)
        except StoreCorrupt:
            return _diagnose_refusal(mutation, seed, path, prefixes)
        except Exception as exc:
            return FuzzOutcome(
                "corruption", mutation, seed, "violation",
                violation="reopen escaped with %s: %s"
                          % (type(exc).__name__, exc),
            )
        try:
            state = frozenset(reopened.database())
        finally:
            reopened.close()
        if state not in prefixes:
            return FuzzOutcome(
                "corruption", mutation, seed, "violation",
                violation="recovered state is not a WAL-prefix state "
                          "(mutation %s)" % mutation,
            )
        # Full log survived, or recovery healed by truncating the tail?
        outcome = (
            "recovered-full" if state == final_before else "recovered-prefix"
        )
        return FuzzOutcome("corruption", mutation, seed, outcome)
    except Exception as exc:  # pragma: no cover - harness bug surface
        return FuzzOutcome(
            "corruption", mutation, seed, "violation",
            violation="harness escaped with %s: %s" % (type(exc).__name__, exc),
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _diagnose_refusal(mutation: str, seed: int, path: str, prefixes) -> FuzzOutcome:
    """The store refused cleanly; fsck must agree, repair must restore a
    prefix state (WAL damage) or readonly must still open (snapshot
    damage)."""
    report = fsck(path)
    if report.ok:
        return FuzzOutcome(
            "corruption", mutation, seed, "violation",
            violation="store refused to open but fsck reports clean",
        )
    if any(issue.repairable for issue in report.issues):
        fsck(path, repair=True)
        try:
            repaired = SqliteStore(path, snapshot_every=10_000)
        except StoreError as exc:
            return FuzzOutcome(
                "corruption", mutation, seed, "violation",
                violation="store still refuses after repair: %s" % exc,
            )
        try:
            state = frozenset(repaired.database())
        finally:
            repaired.close()
        if state not in prefixes:
            return FuzzOutcome(
                "corruption", mutation, seed, "violation",
                violation="repaired state is not a WAL-prefix state",
            )
        return FuzzOutcome("corruption", mutation, seed, "refused+repaired")
    # Unrepairable (snapshot) damage: degraded read-only open must work.
    degraded = open_store(path, readonly=True)
    try:
        if degraded.stats().get("degraded") is None:
            return FuzzOutcome(
                "corruption", mutation, seed, "violation",
                violation="unrepairable damage but readonly open is not "
                          "degraded",
            )
    finally:
        degraded.close()
    return FuzzOutcome("corruption", mutation, seed, "refused+diagnosed")


# -- the matrix ---------------------------------------------------------------


def run_store_fuzz(
    crash_seeds: int = 8,
    corruption_cases: int = 64,
    base_seed: int = 0,
    directory: Optional[str] = None,
) -> List[FuzzOutcome]:
    """The full fuzz matrix: every named crash point x *crash_seeds*
    scripts, plus *corruption_cases* seeded byte-corruption cases."""
    outcomes: List[FuzzOutcome] = []
    for point in CRASH_POINTS:
        for i in range(crash_seeds):
            outcomes.append(run_crash_case(point, base_seed + i, directory))
    for i in range(corruption_cases):
        outcomes.append(run_corruption_case(base_seed + i, directory))
    return outcomes


def format_fuzz_report(outcomes: Sequence[FuzzOutcome]) -> str:
    """Deterministic text: outcome-class counts per label, violations in
    full, one verdict line (mirrors :func:`repro.faults.chaos.format_report`)."""
    lines: List[str] = []
    violations = [o for o in outcomes if o.violation]
    for family, title in (("crash", "crash points"), ("corruption", "byte corruption")):
        cases = [o for o in outcomes if o.family == family]
        if not cases:
            continue
        lines.append("store fuzz: %s (%d case(s))" % (title, len(cases)))
        labels = sorted({o.label for o in cases})
        for label in labels:
            tallies = {}
            for o in cases:
                if o.label == label:
                    tallies[o.outcome] = tallies.get(o.outcome, 0) + 1
            summary = ", ".join(
                "%s %d" % (outcome, count)
                for outcome, count in sorted(tallies.items())
            )
            lines.append("  %-22s: %s" % (label, summary))
    for o in violations:
        lines.append(
            "  VIOLATION %s/%s seed %d: %s" % (o.family, o.label, o.seed, o.violation)
        )
    lines.append(
        "store fuzz verdict: %s (%d case(s), %d violation(s))"
        % ("FAIL" if violations else "OK", len(outcomes), len(violations))
    )
    return "\n".join(lines)
