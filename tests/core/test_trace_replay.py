"""Trace-as-certificate tests: replaying an execution's updates over the
initial state must reproduce its final state."""

import pytest

from repro import Database, Interpreter, parse_database, parse_goal, parse_program
from repro.core.transitions import replay_actions


CASES = [
    # (program, goal, db)
    ("t <- ins.a * ins.b * del.a.", "t", ""),
    ("t <- p(X) * del.p(X) * ins.q(X).", "t", "p(a). p(b)."),
    ("t <- iso(ins.x * del.x * ins.y).", "t", ""),
    ("t <- iso(ins.a) * iso(del.a * ins.b).", "t", ""),
    (
        "drain <- item(X) * del.item(X) * drain.\ndrain <- not item(_).",
        "drain",
        "item(a). item(b). item(c).",
    ),
    (
        "p <- ins.l.\nq <- ins.r * del.l.",
        "p | q",
        "",
    ),
]


class TestReplay:
    @pytest.mark.parametrize("prog_text,goal_text,db_text", CASES)
    def test_simulate_trace_replays_to_final(self, prog_text, goal_text, db_text):
        prog = parse_program(prog_text)
        db = parse_database(db_text)
        exe = Interpreter(prog).simulate(parse_goal(goal_text), db)
        assert exe is not None
        assert replay_actions(exe.trace, db) == exe.database

    @pytest.mark.parametrize("prog_text,goal_text,db_text", CASES)
    def test_bfs_traces_replay_to_final(self, prog_text, goal_text, db_text):
        prog = parse_program(prog_text)
        db = parse_database(db_text)
        for exe in Interpreter(prog).run(parse_goal(goal_text), db):
            assert replay_actions(exe.trace, db) == exe.database

    def test_replay_is_pure(self):
        prog = parse_program("t <- ins.a.")
        db = Database()
        exe = Interpreter(prog).simulate(parse_goal("t"), db)
        replay_actions(exe.trace, db)
        assert db == Database()  # the initial state is untouched

    def test_workflow_trace_replays(self):
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator()
        items = sample_batch(3)
        db = sim.initial_database(items)
        result = sim.run(items)
        assert replay_actions(result.execution.trace, db) == result.history
