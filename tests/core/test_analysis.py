"""Tests for the sublanguage classifier (the paper's complexity map)."""

import pytest

from repro import Sublanguage, analyze, classify, parse_goal, parse_program


class TestFeatureDetection:
    def test_query_only(self):
        a = analyze(parse_program("p(X) <- q(X) * r(X)."))
        assert a.query_only and not a.uses_conc and not a.recursive
        assert a.classify() is Sublanguage.QUERY_ONLY

    def test_insert_only_flag(self):
        a = analyze(parse_program("p <- q(X) * ins.r(X)."))
        assert a.insert_only and a.uses_ins and not a.uses_del

    def test_deletion_detected(self):
        a = analyze(parse_program("p <- del.q(a)."))
        assert a.uses_del and not a.insert_only

    def test_concurrency_detected(self):
        a = analyze(parse_program("p <- a | b."))
        assert a.uses_conc

    def test_goal_contributes_features(self):
        prog = parse_program("p <- ins.q(a).")
        assert not analyze(prog).uses_conc
        assert analyze(prog, parse_goal("p | p")).uses_conc

    def test_iso_and_neg_and_builtin_flags(self):
        a = analyze(parse_program("p <- iso(not q(a) * 1 < 2)."))
        assert a.uses_iso and a.uses_neg and a.uses_builtin


class TestRecursionShapes:
    def test_nonrecursive(self):
        a = analyze(parse_program("p <- q.\nq <- r(X) * ins.s(X)."))
        assert not a.recursive
        assert a.classify() is Sublanguage.NONRECURSIVE

    def test_nonrecursive_query_only_classifies_query_only(self):
        # query-only wins over nonrecursive (it is the smaller language)
        a = analyze(parse_program("p <- q.\nq <- r(X)."))
        assert a.classify() is Sublanguage.QUERY_ONLY

    def test_direct_recursion(self):
        a = analyze(parse_program("p <- ins.x * p."))
        assert a.recursive and a.tail_recursive_only

    def test_mutual_recursion_via_scc(self):
        a = analyze(parse_program("p <- ins.x * q.\nq <- del.x * p."))
        assert a.recursive
        assert ("p", 0) in a.recursive_signatures
        assert ("q", 0) in a.recursive_signatures

    def test_non_tail_recursion(self):
        a = analyze(parse_program("p <- p * ins.x."))
        assert a.recursive and not a.tail_recursive_only
        assert not a.fully_bounded

    def test_recursion_through_concurrency(self):
        a = analyze(parse_program("p <- ins.x * (q | p).\nq <- true."))
        assert a.recursion_in_conc
        assert not a.fully_bounded
        assert a.classify() is Sublanguage.FULL

    def test_recursion_inside_iso(self):
        a = analyze(parse_program("p <- iso(del.x(a) * p)."))
        assert a.recursion_in_iso
        assert not a.fully_bounded

    def test_nonrecursive_call_inside_conc_is_fine(self):
        a = analyze(
            parse_program(
                """
                main <- (taskA | taskB) * main.
                taskA <- ins.a.
                taskB <- ins.b.
                """
            )
        )
        assert a.recursive and a.fully_bounded
        assert a.classify() is Sublanguage.FULLY_BOUNDED


class TestClassification:
    def test_sequential_with_nontail_recursion(self):
        prog = parse_program("p <- ins.d * p * ins.u.\np <- stop.")
        assert classify(prog) is Sublanguage.SEQUENTIAL

    def test_fully_bounded_workflow_driver_is_full(self, simulate_program):
        # Example 3.2 spawns a process per work item: full TD.
        assert classify(simulate_program) is Sublanguage.FULL

    def test_query_only_recursive_still_query_only(self, tc_program):
        assert classify(tc_program) is Sublanguage.QUERY_ONLY

    def test_report_mentions_sublanguage(self):
        report = analyze(parse_program("p <- ins.x * p.")).report()
        assert "fully bounded" in report
        assert "recursive:          yes" in report


class TestSafetyWarnings:
    def test_unbound_update_warned(self):
        a = analyze(parse_program("bad <- ins.p(X)."))
        assert any("ins.p(X)" in w for w in a.safety_warnings)

    def test_bound_update_not_warned(self):
        a = analyze(parse_program("good <- q(X) * ins.p(X)."))
        assert not a.safety_warnings

    def test_head_variables_count_as_bound(self):
        a = analyze(parse_program("good(X) <- ins.p(X)."))
        assert not a.safety_warnings

    def test_unbound_builtin_warned(self):
        a = analyze(parse_program("bad <- X > 3 * q(X)."))
        assert any("builtin" in w for w in a.safety_warnings)

    def test_is_binds_its_left_variable(self):
        a = analyze(parse_program("good <- q(X) * Y is X + 1 * ins.p(Y)."))
        assert not a.safety_warnings

    def test_concurrent_sibling_bindings_trusted(self):
        # X is bound by the left branch at runtime; the optimistic
        # cross-branch rule avoids a false positive.
        a = analyze(parse_program("good <- q(X) | ins.p(X)."))
        assert not a.safety_warnings

    def test_call_binds_its_arguments(self):
        a = analyze(
            parse_program("top <- pick(X) * ins.keep(X).\npick(X) <- item(X).")
        )
        assert not a.safety_warnings


class TestToDict:
    def test_json_friendly(self):
        import json

        a = analyze(parse_program("p <- ins.x * p.\np <- del.go."))
        payload = json.loads(json.dumps(a.to_dict()))
        assert payload["sublanguage"] == "FULLY_BOUNDED"
        assert payload["recursive"] is True
        assert payload["recursive_predicates"] == ["p/0"]

    def test_warnings_included(self):
        a = analyze(parse_program("bad <- ins.p(X)."))
        assert a.to_dict()["safety_warnings"]
