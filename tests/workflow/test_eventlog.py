"""Tests for structured event logs."""

import json

import pytest

from repro.workflow import (
    Agent,
    Emit,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)
from repro.workflow.eventlog import event_log, timeline, to_json


@pytest.fixture
def result():
    spec = WorkflowSpec(
        "flow",
        SeqFlow(Step("prep"), Step("scan"), Emit("finished")),
        (Task("prep", role="t"), Task("scan", None)),
    )
    sim = WorkflowSimulator([spec], agents=[Agent("ada", ("t",))])
    return sim.run(["w1", "w2"])


class TestEventLog:
    def test_records_in_order_with_sequence(self, result):
        records = event_log(result)
        assert [r.seq for r in records] == list(range(len(records)))

    def test_task_lifecycle_captured(self, result):
        records = event_log(result)
        kinds = [(r.kind, r.task, r.item) for r in records]
        assert ("task_started", "prep", "w1") in kinds
        assert ("task_done", "prep", "w1") in kinds
        # started always precedes done per (task, item)
        for task in ("prep", "scan"):
            for item in ("w1", "w2"):
                start = next(
                    r.seq for r in records
                    if r.kind == "task_started" and r.task == task and r.item == item
                )
                done = next(
                    r.seq for r in records
                    if r.kind == "task_done" and r.task == task and r.item == item
                )
                assert start < done

    def test_agent_attribution(self, result):
        dones = [r for r in event_log(result) if r.kind == "task_done"]
        assert {r.agent for r in dones if r.task == "prep"} == {"ada"}
        assert {r.agent for r in dones if r.task == "scan"} == {"auto"}

    def test_dispatch_and_emission_events(self, result):
        records = event_log(result)
        assert any(r.kind == "item_dispatched" and r.item == "w1" for r in records)
        assert any(
            r.kind == "fact_emitted" and r.fact == "finished(w1)" for r in records
        )


class TestSerialization:
    def test_json_round_trip(self, result):
        payload = json.loads(to_json(result))
        assert isinstance(payload, list) and payload
        assert {"seq", "kind", "item", "task", "agent", "fact"} == set(payload[0])

    def test_timeline_renders_per_item(self, result):
        text = timeline(result)
        assert "w1:" in text and "w2:" in text
        assert "task_done" in text and "(by ada)" in text


class FakeResult:
    """Duck-typed stand-in for SimulationResult: just events + span id."""

    def __init__(self, *events, span_id=None):
        self.events = tuple(events)
        self.span_id = span_id


class TestArgParsingRobustness:
    """Regression tests for `_parse_args`: zero-argument facts and
    compound-term arguments used to break the flat name(a, b) shape."""

    def test_zero_argument_fact(self):
        records = event_log(FakeResult("ins.milestone()"))
        assert [(r.kind, r.fact, r.item) for r in records] == [
            ("fact_emitted", "milestone()", "")
        ]

    def test_zero_argument_consumed_fact(self):
        records = event_log(FakeResult("del.lock()"))
        assert [(r.kind, r.fact) for r in records] == [("fact_consumed", "lock()")]

    def test_nested_parens_survive_as_one_argument(self):
        records = event_log(FakeResult("ins.review(claim(c1, high), p1)"))
        assert len(records) == 1
        assert records[0].kind == "fact_emitted"
        assert records[0].fact == "review(claim(c1, high), p1)"
        # the last *top-level* argument is the item, not "high)"
        assert records[0].item == "p1"

    def test_nested_parens_in_task_events(self):
        records = event_log(
            FakeResult(
                "ins.started(check, order(o1, rush))",
                "ins.done(check, order(o1, rush), ada)",
            )
        )
        assert [(r.kind, r.task, r.item) for r in records] == [
            ("task_started", "check", "order(o1, rush)"),
            ("task_done", "check", "order(o1, rush)"),
        ]
        assert records[1].agent == "ada"

    def test_deeply_nested_and_spaces(self):
        from repro.workflow.eventlog import _parse_args

        assert _parse_args("p(f(g(a, b), c), d)") == ["f(g(a, b), c)", "d"]
        assert _parse_args("p()") == []
        assert _parse_args("p") == []
        assert _parse_args("p( a , b )") == ["a", "b"]

    def test_span_id_stamped_from_result(self):
        records = event_log(FakeResult("ins.milestone()", span_id="s42"))
        assert records[0].span_id == "s42"

    def test_span_id_override_argument(self):
        records = event_log(FakeResult("ins.milestone()"), span_id="s7")
        assert records[0].span_id == "s7"
