"""Tests for structured event logs."""

import json

import pytest

from repro.workflow import (
    Agent,
    Emit,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)
from repro.workflow.eventlog import event_log, timeline, to_json


@pytest.fixture
def result():
    spec = WorkflowSpec(
        "flow",
        SeqFlow(Step("prep"), Step("scan"), Emit("finished")),
        (Task("prep", role="t"), Task("scan", None)),
    )
    sim = WorkflowSimulator([spec], agents=[Agent("ada", ("t",))])
    return sim.run(["w1", "w2"])


class TestEventLog:
    def test_records_in_order_with_sequence(self, result):
        records = event_log(result)
        assert [r.seq for r in records] == list(range(len(records)))

    def test_task_lifecycle_captured(self, result):
        records = event_log(result)
        kinds = [(r.kind, r.task, r.item) for r in records]
        assert ("task_started", "prep", "w1") in kinds
        assert ("task_done", "prep", "w1") in kinds
        # started always precedes done per (task, item)
        for task in ("prep", "scan"):
            for item in ("w1", "w2"):
                start = next(
                    r.seq for r in records
                    if r.kind == "task_started" and r.task == task and r.item == item
                )
                done = next(
                    r.seq for r in records
                    if r.kind == "task_done" and r.task == task and r.item == item
                )
                assert start < done

    def test_agent_attribution(self, result):
        dones = [r for r in event_log(result) if r.kind == "task_done"]
        assert {r.agent for r in dones if r.task == "prep"} == {"ada"}
        assert {r.agent for r in dones if r.task == "scan"} == {"auto"}

    def test_dispatch_and_emission_events(self, result):
        records = event_log(result)
        assert any(r.kind == "item_dispatched" and r.item == "w1" for r in records)
        assert any(
            r.kind == "fact_emitted" and r.fact == "finished(w1)" for r in records
        )


class TestSerialization:
    def test_json_round_trip(self, result):
        payload = json.loads(to_json(result))
        assert isinstance(payload, list) and payload
        assert {"seq", "kind", "item", "task", "agent", "fact"} == set(payload[0])

    def test_timeline_renders_per_item(self, result):
        text = timeline(result)
        assert "w1:" in text and "w2:" in text
        assert "task_done" in text and "(by ada)" in text
