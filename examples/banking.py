#!/usr/bin/env python3
"""Nested banking transactions (the paper's Examples 2.1 and 2.2).

Demonstrates:

* flat transactions with preconditions (withdraw fails on insufficient
  funds or an invalid account);
* nested transactions via isolation: ``transfer = iso(withdraw *
  deposit)`` -- the failure of one subtransaction aborts the other even
  if it already "committed" (relative commit / rollback);
* serializability between concurrent isolated transfers: money is
  conserved in every reachable outcome.

Run:  python examples/banking.py
"""

from repro import Interpreter, parse_database, parse_goal, parse_program

PROGRAM = """
% Example 2.2: a transfer is an isolated pair of subtransactions.
transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).

% Example 2.1: elementary banking operations with preconditions.
withdraw(Acct, Amt) <-
    balance(Acct, Bal) * Bal >= Amt *
    del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).

deposit(Acct, Amt) <-
    balance(Acct, Bal) *
    del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
"""


def show_balances(db):
    for fact in sorted(db.facts("balance")):
        print("   ", fact)


def main() -> None:
    program = parse_program(PROGRAM)
    interp = Interpreter(program, max_configs=2_000_000)
    accounts = parse_database("balance(alice, 100). balance(bob, 10).")

    print("--- initial balances ---")
    show_balances(accounts)

    # 1. A successful transfer.
    print("\n--- transfer(alice, bob, 30) ---")
    (solution,) = interp.solve(parse_goal("transfer(alice, bob, 30)"), accounts)
    show_balances(solution.database)

    # 2. Preconditions: overdrafts and unknown accounts abort atomically.
    print("\n--- failure cases (nothing changes) ---")
    for goal in ("transfer(bob, alice, 500)", "transfer(alice, nobody, 10)"):
        committed = interp.succeeds(parse_goal(goal), accounts)
        print("   %-32s commits: %s" % (goal, committed))

    # 3. Serializability: two concurrent isolated transfers.  Every
    # reachable outcome conserves money and equals some serial order.
    print("\n--- concurrent transfers: transfer(alice,bob,30) | transfer(bob,alice,5) ---")
    goal = parse_goal("transfer(alice, bob, 30) | transfer(bob, alice, 5)")
    for solution in interp.solve(goal, accounts):
        total = sum(f.args[1].value for f in solution.database.facts("balance"))
        print("  outcome (total %d):" % total)
        show_balances(solution.database)

    # 4. The anomaly isolation prevents: unisolated "transfers" can lose
    # updates.  Watch the reachable totals drift.
    raw = parse_program(
        """
        rawtransfer(F, T, Amt) <- withdraw(F, Amt) * deposit(T, Amt).
        """
        + PROGRAM
    )
    raw_interp = Interpreter(raw, max_configs=2_000_000)
    print("\n--- without isolation: reachable totals for two raw transfers ---")
    goal = parse_goal("rawtransfer(alice, bob, 30) | rawtransfer(alice, bob, 20)")
    totals = set()
    for solution in raw_interp.solve(goal, accounts):
        totals.add(sum(f.args[1].value for f in solution.database.facts("balance")))
    print("    totals:", sorted(totals), "(isolated transfers always give 110)")


if __name__ == "__main__":
    main()
