"""Experiment E0 (context): the storage layer under a LabFlow-1-style mix.

The paper's motivation is data-intensive workflow: at the genome center
"database performance became a bottleneck in workflow throughput", and
the authors built the LabFlow-1 benchmark [26] to stress storage
managers with the lab's operation mix -- append experimental results,
look up the latest state of a sample, scan histories.  This benchmark
applies the same mix to our immutable-state storage layer, which every
engine sits on; it contextualizes the absolute numbers of the other
benchmarks.
"""

import pytest

from repro import Database, atom
from repro.complexity import estimate_growth, measure, print_series
from repro.core.terms import Atom, Variable
from repro.lims import synthetic_history

W = Variable("W")
A = Variable("A")


def test_append_only_growth(benchmark):
    """Appending results one state at a time (the insert-only regime)."""
    rows = []
    sizes = []
    times = []
    for n in (500, 1000, 2000, 4000):
        facts = [atom("result", "s%05d" % i, i % 97) for i in range(n)]

        def append_all():
            db = Database()
            for fact in facts:
                db = db.insert(fact)
            return db

        db, seconds = measure(append_all)
        assert len(db) == n
        rows.append([n, seconds, seconds / n * 1e6])
        sizes.append(n)
        times.append(max(seconds, 1e-9))
    print_series(
        "E0: append-only inserts (immutable states)",
        ["facts", "seconds", "us/insert"],
        rows,
    )
    assert estimate_growth(sizes, times) == "polynomial"

    facts = [atom("result", "s%05d" % i, i) for i in range(1000)]
    def append_1000():
        db = Database()
        for fact in facts:
            db = db.insert(fact)
    benchmark.pedantic(append_1000, rounds=3, iterations=1)


def test_point_lookup_mix(benchmark):
    """The LabFlow 'latest state of a sample' lookups over histories."""
    rows = []
    for n in (100, 400, 1600):
        history = synthetic_history(n, seed=n)
        samples = ["dna%04d" % i for i in range(0, n, max(1, n // 50))]

        def lookups():
            hits = 0
            for s in samples:
                pattern = Atom("done", (atom("q", "analyze").args[0], atom("q", s).args[0], A))
                hits += sum(1 for _ in history.match(pattern))
            return hits

        hits, seconds = measure(lookups)
        assert hits == len(samples)
        rows.append([n, len(samples), seconds])
    print_series(
        "E0: point lookups over histories",
        ["samples", "queries", "seconds"],
        rows,
    )
    history = synthetic_history(400, seed=1)
    pattern = Atom("done", (atom("q", "analyze").args[0], atom("q", "dna0007").args[0], A))
    benchmark.pedantic(lambda: list(history.match(pattern)), rounds=10, iterations=10)


def test_history_scan_mix(benchmark):
    """Full-history scans (the analysis-program access pattern)."""
    rows = []
    for n in (100, 400, 1600):
        history = synthetic_history(n, seed=n)

        def scan():
            per_agent = {}
            for fact in history.facts("done"):
                per_agent[str(fact.args[2])] = per_agent.get(str(fact.args[2]), 0) + 1
            return per_agent

        per_agent, seconds = measure(scan)
        assert per_agent["auto"] == n
        rows.append([n, len(history), seconds])
    print_series(
        "E0: full-history scans",
        ["samples", "|history|", "seconds"],
        rows,
    )
    history = synthetic_history(400, seed=2)
    benchmark.pedantic(lambda: len(list(history.facts("done"))), rounds=10, iterations=10)
