"""Tests for the two-line genome production network.

The paper: each genome project is "organized into a network of
factory-like production lines"; the mapping line feeds the sequencing
line per sample, communicating through the database.
"""

import pytest

from repro import Sublanguage, analyze, classify
from repro.lims import (
    build_network_simulator,
    mapping_then_sequencing,
    network_agents,
    sample_batch,
    sequencing_pipeline,
)
from repro.workflow import agent_workload, task_counts
from repro.workflow.compiler import compile_workflows
from repro.workflow.constraints import Before, MustFollow, Requires, check_trace
from repro.workflow.staffing import analyze_staffing


class TestSpecs:
    def test_specs_validate(self):
        network, mapping, sequencing = mapping_then_sequencing()
        names = [network.name, mapping.name, sequencing.name]
        for spec in (network, mapping, sequencing):
            spec.validate(known_workflows=names)

    def test_network_compiles_and_is_bounded(self):
        program = compile_workflows(list(mapping_then_sequencing()))
        assert analyze(program).fully_bounded

    def test_staffing_adequate(self):
        report = analyze_staffing(
            list(mapping_then_sequencing()), network_agents()
        )
        assert report.adequate, report.summary()


class TestExecution:
    @pytest.fixture(scope="class")
    def result(self):
        sim = build_network_simulator()
        return sim.run(sample_batch(3))

    def test_every_sample_fully_processed(self, result):
        assert result.completed("seq_qc") == sample_batch(3)
        counts = task_counts(result.history)
        assert counts["read_gel"] == 3 and counts["sequence_run"] == 3

    def test_sequencing_waits_for_mapping(self, result):
        violations = check_trace(result, [Before("read_gel", "pick_clones")])
        assert violations == []
        # stronger: pick_clones requires the map emission, per item
        events = list(result.events)
        for sample in sample_batch(3):
            mapped_at = events.index("ins.mapped(%s)" % sample)
            picked_at = events.index("ins.started(pick_clones, %s)" % sample)
            assert mapped_at < picked_at

    def test_constraints_hold_across_lines(self, result):
        constraints = [
            Requires("sequence_run", "pick_clones"),
            MustFollow("receive", "seq_qc"),
            Before("prep_dna", "base_call"),
        ]
        assert check_trace(result, constraints) == []

    def test_sequencer_machine_attributed(self, result):
        workload = agent_workload(result.history)
        assert workload.get("seqmachine0") == 3

    def test_seeded_network_reproducible(self):
        sim = build_network_simulator()
        r1 = sim.run(sample_batch(2), seed=3)
        r2 = sim.run(sample_batch(2), seed=3)
        assert r1.execution.events == r2.execution.events
