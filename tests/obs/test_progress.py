"""Progress heartbeat: rendering, lifecycle, CLI silence by default."""

import io
import time

import pytest

from repro.cli import main
from repro.obs import Metrics
from repro.obs.progress import ProgressReporter


@pytest.fixture
def bank_files(tmp_path):
    program = tmp_path / "bank.td"
    program.write_text(
        """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
    )
    db = tmp_path / "bank.facts"
    db.write_text("balance(a, 100). balance(b, 10).")
    return str(program), str(db)


class TestRendering:
    def test_line_reads_search_counters(self):
        m = Metrics()
        m.inc("search.steps", 123)
        m.inc("search.configs_expanded", 45)
        m.gauge_max("search.frontier_peak", 67)
        m.gauge_max("search.depth_peak", 8)
        m.inc("search.solutions", 2)
        reporter = ProgressReporter(m, interval=10, stream=io.StringIO())
        line = reporter.render_line()
        assert "123 steps" in line
        assert "45 configs" in line
        assert "frontier peak 67" in line
        assert "depth peak 8" in line
        assert "2 solutions" in line
        assert line.startswith("progress:")

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(Metrics(), interval=0)


class TestLifecycle:
    def test_stop_always_emits_final_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(Metrics(), interval=60, stream=stream)
        with reporter:
            pass  # finishes well inside the first interval
        assert reporter.lines_emitted == 1
        assert stream.getvalue().count("progress:") == 1

    def test_periodic_emission(self):
        stream = io.StringIO()
        reporter = ProgressReporter(Metrics(), interval=0.01, stream=stream)
        with reporter:
            time.sleep(0.08)
        assert reporter.lines_emitted >= 2

    def test_double_start_rejected(self):
        reporter = ProgressReporter(Metrics(), interval=60, stream=io.StringIO())
        with reporter:
            with pytest.raises(RuntimeError):
                reporter.start()

    def test_stop_without_start_is_noop(self):
        stream = io.StringIO()
        ProgressReporter(Metrics(), interval=60, stream=stream).stop()
        assert stream.getvalue() == ""


class TestCli:
    def test_silent_by_default(self, bank_files, capsys):
        program, db = bank_files
        assert main(
            ["solve", program, "--goal", "transfer(a, b, 30)", "--db", db]
        ) == 0
        captured = capsys.readouterr()
        assert "progress:" not in captured.err
        assert "progress:" not in captured.out

    def test_progress_flag_reports_to_stderr(self, bank_files, capsys):
        program, db = bank_files
        assert main(
            [
                "solve", program, "--goal", "transfer(a, b, 30)", "--db", db,
                "--progress", "30",
            ]
        ) == 0
        captured = capsys.readouterr()
        # Final line on stop, even when the run beats the interval.
        assert "progress:" in captured.err
        assert "solutions" in captured.err
        assert "progress:" not in captured.out
