"""CLI surface of the storage layer: ``--store`` on solve/run,
``tdlog store inspect``/``fsck``, and checkpoint/resume against a
durable file -- including one that crashes between park and resume."""

import json
import pickle
import sqlite3

import pytest

from repro import SqliteStore, parse_atom
from repro.cli import main


@pytest.fixture
def bank(tmp_path):
    program = tmp_path / "bank.td"
    program.write_text(
        """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
    )
    db = tmp_path / "bank.facts"
    db.write_text("balance(a, 100). balance(b, 10).")
    store = tmp_path / "bank.tdlog"
    return str(program), str(db), str(store)


class TestRunWithStore:
    def test_run_commits_execution(self, bank, capsys):
        program, db, store = bank
        code = main(
            ["run", program, "--goal", "transfer(a, b, 30)", "--db", db,
             "--store", "sqlite:" + store, "--seed", "0"]
        )
        assert code == 0
        assert "committed to store" in capsys.readouterr().err
        with SqliteStore(store) as reopened:
            assert parse_atom("balance(a, 70)") in reopened
            assert parse_atom("balance(b, 40)") in reopened

    def test_failed_run_commits_nothing(self, bank, capsys):
        program, db, store = bank
        code = main(
            ["run", program, "--goal", "transfer(b, a, 999)", "--db", db,
             "--store", "sqlite:" + store, "--seed", "0"]
        )
        assert code == 1
        with SqliteStore(store) as reopened:
            # Seeded from --db, but the failed transfer left no trace.
            assert parse_atom("balance(a, 100)") in reopened
            assert parse_atom("balance(b, 10)") in reopened
            assert len(reopened) == 2


class TestSolveWithStore:
    def test_solve_from_durable_state_without_db(self, bank, capsys):
        program, db, store = bank
        assert main(
            ["run", program, "--goal", "transfer(a, b, 30)", "--db", db,
             "--store", "sqlite:" + store, "--seed", "0"]
        ) == 0
        capsys.readouterr()
        # No --db: the durable file supplies the initial state.
        code = main(
            ["solve", program, "--goal", "transfer(a, b, 30)",
             "--store", "sqlite:" + store]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "balance(a, 40)" in out
        assert "balance(b, 70)" in out

    def test_solve_is_read_only(self, bank, capsys):
        program, db, store = bank
        assert main(
            ["solve", program, "--goal", "transfer(a, b, 30)", "--db", db,
             "--store", "sqlite:" + store]
        ) == 0
        with SqliteStore(store) as reopened:
            # solve enumerates answers; only run/simulate commits.
            assert parse_atom("balance(a, 100)") in reopened
            assert len(reopened) == 2

    def test_mem_store_spec(self, bank, capsys):
        program, db, _store = bank
        assert main(
            ["solve", program, "--goal", "transfer(a, b, 30)", "--db", db,
             "--store", "mem"]
        ) == 0
        assert "balance(a, 70)" in capsys.readouterr().out

    def test_bad_store_spec(self, bank, capsys):
        program, db, _store = bank
        code = main(
            ["solve", program, "--goal", "transfer(a, b, 30)", "--db", db,
             "--store", "voodoo"]
        )
        assert code != 0


class TestStoreInspect:
    def test_inspect_reports_state(self, bank, capsys):
        program, db, store = bank
        assert main(
            ["run", program, "--goal", "transfer(a, b, 30)", "--db", db,
             "--store", "sqlite:" + store, "--seed", "0"]
        ) == 0
        capsys.readouterr()
        assert main(["store", "inspect", store]) == 0
        out = capsys.readouterr().out
        assert store in out
        assert "backend:" in out
        assert "balance" in out
        assert "wal tail:" in out

    def test_inspect_after_checkpoint(self, bank, capsys):
        _program, _db, store = bank
        with SqliteStore(store) as s:
            s.insert_all(parse_atom("p(%d)" % i) for i in range(4))
            s.checkpoint()
        assert main(["store", "inspect", store]) == 0
        out = capsys.readouterr().out
        assert "generation 1" in out
        assert "4 fact(s) in snapshot" in out

    def test_inspect_missing_file(self, tmp_path, capsys):
        assert main(["store", "inspect", str(tmp_path / "nope.tdlog")]) != 0

    def test_inspect_reports_health_fields(self, bank, capsys):
        _program, _db, store = bank
        with SqliteStore(store) as s:
            s.insert(parse_atom("p(1)"))
        assert main(["store", "inspect", store]) == 0
        out = capsys.readouterr().out
        assert "schema:     version" in out
        assert "checksums:  verified (snapshot + wal tail)" in out
        assert "lease:      free" in out
        assert "quarantine: none" in out

    def test_inspect_json(self, bank, capsys):
        _program, _db, store = bank
        with SqliteStore(store) as s:
            s.insert(parse_atom("p(1)"))
        assert main(["store", "inspect", store, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["backend"] == "SqliteStore"
        assert stats["facts"] == 1
        assert stats["degraded"] is None
        assert stats["lease"] is None  # readonly inspection takes none
        assert stats["quarantine"] is False

    def test_inspect_sees_live_lease_holder(self, bank, capsys):
        import os

        _program, _db, store = bank
        with SqliteStore(store) as writer:
            writer.insert(parse_atom("p(1)"))
            assert main(["store", "inspect", store]) == 0
            assert "held by pid %d" % os.getpid() in capsys.readouterr().out


class TestStoreFsckCli:
    def _corrupt_last_wal_row(self, store):
        conn = sqlite3.connect(store, isolation_level=None)
        try:
            seq, blob = conn.execute(
                "SELECT seq, fact FROM wal ORDER BY seq DESC LIMIT 1"
            ).fetchone()
            bad = bytearray(blob)
            bad[-1] ^= 0x20
            conn.execute(
                "UPDATE wal SET fact=? WHERE seq=?", (bytes(bad), seq)
            )
        finally:
            conn.close()

    def test_clean_store_exits_zero(self, bank, capsys):
        _program, _db, store = bank
        with SqliteStore(store) as s:
            s.insert(parse_atom("p(1)"))
        assert main(["store", "fsck", store]) == 0
        out = capsys.readouterr().out
        assert "status: clean" in out

    def test_damage_exits_two_and_repair_round_trips(self, bank, capsys):
        _program, _db, store = bank
        with SqliteStore(store) as s:
            for i in range(4):
                s.insert(parse_atom("p(%d)" % i))
        self._corrupt_last_wal_row(store)
        assert main(["store", "fsck", store]) == 2
        capsys.readouterr()
        # --repair quarantines the bad tail and re-verifies clean.
        assert main(["store", "fsck", store, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert main(["store", "fsck", store]) == 0
        with SqliteStore(store) as healed:
            assert len(healed) == 3

    def test_json_report(self, bank, capsys):
        _program, _db, store = bank
        with SqliteStore(store) as s:
            s.insert(parse_atom("p(1)"))
        self._corrupt_last_wal_row(store)
        assert main(["store", "fsck", store, "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["issues"][0]["table"] == "wal"

    def test_missing_file_is_a_store_error_exit(self, tmp_path, capsys):
        assert main(["store", "fsck", str(tmp_path / "nope.tdlog")]) == 2
        assert "no such store" in capsys.readouterr().err


class TestCheckpointResume:
    @pytest.fixture
    def slow_search(self, tmp_path):
        program = tmp_path / "walk.td"
        program.write_text(
            """
            step(N) <- N <= 12 * ins.seen(N).
            walk(N) <- step(N) * M is N + 1 * walk(M).
            walk(N) <- N > 12.
            probe <- walk(0) * seen(12).
            """
        )
        return str(program), str(tmp_path / "walk.ckpt")

    def test_budget_exhaustion_writes_checkpoint(self, slow_search, capsys):
        program, ckpt = slow_search
        code = main(
            ["solve", program, "--goal", "probe", "--max-configs", "30",
             "--checkpoint-out", ckpt]
        )
        assert code == 3
        assert "checkpoint written" in capsys.readouterr().err
        with open(ckpt, "rb") as handle:
            checkpoint = pickle.load(handle)
        assert len(checkpoint.frontier) > 0

    def test_resume_completes_search(self, slow_search, capsys):
        program, ckpt = slow_search
        assert main(
            ["solve", program, "--goal", "probe", "--max-configs", "30",
             "--checkpoint-out", ckpt]
        ) == 3
        for _ in range(20):
            code = main(
                ["solve", program, "--goal", "probe", "--max-configs", "30",
                 "--resume-from", ckpt, "--checkpoint-out", ckpt]
            )
            if code != 3:
                break
        assert code == 0
        assert "seen(12)" in capsys.readouterr().out

    def test_exhaustion_without_checkpoint_out_raises(self, slow_search):
        program, _ckpt = slow_search
        from repro import SearchBudgetExceeded

        with pytest.raises(SearchBudgetExceeded):
            main(["solve", program, "--goal", "probe", "--max-configs", "30"])

    def test_resume_survives_a_store_crash_while_parked(
        self, slow_search, tmp_path, capsys
    ):
        # Satellite (d): park a search against a sqlite: store, kill the
        # store mid-write while the search is parked, and resume.  The
        # resume's open must recover the file (replay the durable WAL
        # row), and the checkpointed frontier must complete the search.
        from repro import StoreCrashed
        from repro.faults import FaultPlan, StoreCrash, Window

        program, ckpt = slow_search
        store_path = str(tmp_path / "walk.tdlog")
        spec = "sqlite:" + store_path
        assert main(
            ["solve", program, "--goal", "probe", "--max-configs", "30",
             "--store", spec, "--checkpoint-out", ckpt]
        ) == 3
        capsys.readouterr()
        # A writer dies at the classic torn moment: the WAL row is
        # durable, the mirror never saw it, the lease record lingers.
        plan = FaultPlan(
            seed=0,
            store_crashes=(StoreCrash(Window(1, 2), point="post-fsync"),),
        )
        crashed = SqliteStore(store_path, faults=plan)
        with pytest.raises(StoreCrashed):
            crashed.insert(parse_atom("scar(1)"))
        crashed.close()
        for _ in range(20):
            code = main(
                ["solve", program, "--goal", "probe", "--max-configs", "30",
                 "--store", spec, "--resume-from", ckpt,
                 "--checkpoint-out", ckpt]
            )
            if code != 3:
                break
        assert code == 0
        assert "seen(12)" in capsys.readouterr().out
        # Recovery replayed the torn-moment row on the resume's open.
        with SqliteStore(store_path, readonly=True) as recovered:
            assert parse_atom("scar(1)") in recovered
