"""Experiment E4: shared resources -- agents limit concurrency.

Paper artifact: Example 3.3.  "The agents are resources that must be
shared by the various workflow instances, thus limiting the number of
instances that can be active at one time."  We measure a fixed batch
against growing agent pools and check the workload statistics the
monitoring layer (Example 3.3's second half) reports.
"""

import pytest

from repro.complexity import measure, print_series
from repro.lims import build_lab_simulator, lab_agents, sample_batch
from repro.workflow import agent_workload


def test_agent_pool_size_vs_cost(benchmark):
    rows = []
    n_samples = 10
    for n_techs in (1, 2, 4, 8):
        agents = lab_agents(n_clerks=1, n_techs=n_techs, n_rigs=1, n_readers=1)
        sim = build_lab_simulator(agents=agents)
        res, seconds = measure(lambda: sim.run(sample_batch(n_samples)))
        assert len(res.completed("analyze")) == n_samples
        workload = agent_workload(res.history)
        tech_loads = [v for k, v in workload.items() if k.startswith("tech")]
        rows.append([n_techs, seconds, max(tech_loads), min(tech_loads)])
    print_series(
        "E4: agent pool size vs cost and load (10 samples)",
        ["techs", "seconds", "max tech load", "min tech load"],
        rows,
    )
    # with one tech, that tech performs all tech-role work (2 tasks/sample)
    assert rows[0][2] >= 2 * n_samples

    sim = build_lab_simulator(agents=lab_agents(1, 2, 1, 1))
    benchmark.pedantic(lambda: sim.run(sample_batch(10)), rounds=3, iterations=1)


def test_contention_resolves_serially(benchmark):
    """One agent, many instances: everything still completes -- the
    search finds a serial schedule through the shared pool."""
    agents = lab_agents(n_clerks=1, n_techs=1, n_rigs=1, n_readers=1)
    rows = []
    for n in (2, 4, 8):
        sim = build_lab_simulator(agents=agents)
        res, seconds = measure(lambda: sim.run(sample_batch(n)))
        assert len(res.completed("analyze")) == n
        rows.append([n, seconds])
    print_series(
        "E4: single-agent contention (serial schedules found)",
        ["samples", "seconds"],
        rows,
    )
    sim = build_lab_simulator(agents=agents)
    benchmark.pedantic(lambda: sim.run(sample_batch(4)), rounds=3, iterations=1)


def test_workload_attribution(benchmark):
    """Example 3.3's monitoring payoff: per-agent completion counts are
    queryable from the history."""
    sim = build_lab_simulator()
    res, _ = measure(lambda: sim.run(sample_batch(12)))
    workload = agent_workload(res.history)
    rows = sorted(workload.items())
    print_series("E4: workload attribution (12 samples)", ["agent", "tasks"], rows)
    # every pipeline stage is attributed: 6 stages x 12 samples
    assert sum(workload.values()) == 6 * 12

    benchmark.pedantic(lambda: sim.run(sample_batch(6)), rounds=3, iterations=1)
