"""Answer explanation: proof trees, why-not reports, and the POR audit."""

import pytest

from repro import parse_database, parse_goal, parse_program
from repro.obs import ProvenanceRecorder
from repro.obs.analyze import profile_suite
from repro.obs.explain import (
    audit_por_goal,
    audit_profile_config,
    check_ample_witness,
    explain_goal,
    render_proof_tree,
    to_dot,
    verify_execution,
    why_not_report,
)

PROFILE_NAMES = [c.name for c in profile_suite()]


class TestProofTrees:
    """One workload per sublanguage gets a correct, non-empty proof."""

    def test_serial_update_transaction(self, bank_program, bank_db):
        recorder, solutions = explain_goal(
            bank_program, "transfer(a, b, 30)", bank_db
        )
        assert len(solutions) == 1
        tree = render_proof_tree(recorder)
        assert "transfer(a, b, 30)" in tree
        # The committed derivation shows the transfer's net updates.
        assert "+balance(a, 70)" in tree and "-balance(a, 100)" in tree
        assert "+balance(b, 40)" in tree
        assert "[solution]" in tree

    def test_tabled_recursive_query(self, tc_program, chain_db):
        recorder, solutions = explain_goal(tc_program, "path(a, X)", chain_db)
        assert len(solutions) == 3  # b, c, d
        tree = render_proof_tree(recorder)
        for answer in ("path(a, b)", "path(a, c)", "path(a, d)"):
            assert answer in tree
        # Tabled proofs chain answers through subgoal call nodes.
        assert any(n.kind == "call" for n in recorder.nodes)

    def test_concurrent_simulation(self, simulate_program):
        db = parse_database("workitem(w1). workitem(w2).")
        recorder, solutions = explain_goal(
            simulate_program, "simulate", db, mode="bfs"
        )
        assert solutions
        tree = render_proof_tree(recorder)
        assert "+done(w1)" in tree and "+done(w2)" in tree

    def test_datalog_fact_provenance(self, tc_program, chain_db):
        from repro.core.terms import atom
        from repro.datalog import evaluate, from_td

        recorder = ProvenanceRecorder()
        facts = evaluate(from_td(tc_program), chain_db, provenance=recorder)
        assert atom("path", "a", "d") in facts
        derived = [n for n in recorder.nodes if n.kind == "fact"]
        assert derived
        by_label = {n.label: n for n in derived}
        # path(a, d) is derived from a premise recorded earlier in the DAG.
        assert "path(a, d)" in by_label
        witness = by_label["path(a, d)"].witness
        assert witness.get("premises"), "derived fact must name its premises"

    def test_bfs_and_dfs_agree(self, bank_program, bank_db):
        rec_bfs, bfs = explain_goal(
            bank_program, "transfer(a, b, 30)", bank_db, mode="bfs"
        )
        rec_dfs, dfs = explain_goal(
            bank_program, "transfer(a, b, 30)", bank_db, mode="dfs"
        )
        assert len(bfs) == 1 and len(dfs) == 1
        assert bfs[0].database == dfs[0].database
        assert rec_bfs.solutions() and rec_dfs.solutions()

    def test_dfs_trace_is_a_checkable_certificate(self, bank_program, bank_db):
        _, solutions = explain_goal(
            bank_program, "transfer(a, b, 30)", bank_db, mode="dfs"
        )
        assert verify_execution(solutions[0], bank_db)
        # Tampering with the claimed final state must fail the check.
        import dataclasses

        from repro.core.terms import atom

        forged = solutions[0].database.insert(atom("balance", "c", 1))
        tampered = dataclasses.replace(solutions[0], database=forged)
        assert not verify_execution(tampered, bank_db)

    def test_bad_mode_rejected(self, bank_program, bank_db):
        with pytest.raises(ValueError):
            explain_goal(bank_program, "transfer(a, b, 30)", bank_db, mode="x")


class TestWhyNot:
    def test_failed_goal_reports_dead_branches(self, bank_program, bank_db):
        recorder, solutions = explain_goal(
            bank_program, "transfer(a, b, 999)", bank_db
        )
        assert solutions == []
        assert "no solution recorded" in render_proof_tree(recorder)
        report = why_not_report(recorder)
        assert "dispositions:" in report
        assert "derivation nodes:" in report

    def test_small_step_why_not_shows_deepest_paths(self, bank_program, bank_db):
        recorder, solutions = explain_goal(
            bank_program, "transfer(a, b, 999)", bank_db, mode="bfs"
        )
        assert solutions == []
        report = why_not_report(recorder)
        assert "dead branches" in report
        assert "deepest partial derivations:" in report
        # The search got as far as the balance test before dying.
        assert "withdraw" in report or "transfer" in report

    def test_succeeding_goal_notes_solutions(self, bank_program, bank_db):
        recorder, _ = explain_goal(bank_program, "transfer(a, b, 30)", bank_db)
        report = why_not_report(recorder)
        assert "solution(s) exist" in report

    def test_cost_rollup_cited_when_provided(self, bank_program, bank_db):
        from repro.obs import CostAttributor, attributing

        attr = CostAttributor()
        with attributing(attr):
            recorder, solutions = explain_goal(
                bank_program, "transfer(a, b, 999)", bank_db, mode="bfs"
            )
        attr.mark()
        assert solutions == []
        report = why_not_report(recorder, costs=attr.predicate_rollup())
        assert "attributed cost by predicate" in report
        assert "unify" in report
        # Dead-branch lines cite the cost spent under their predicate.
        assert "(cost:" in report

    def test_no_costs_no_cost_section(self, bank_program, bank_db):
        recorder, _ = explain_goal(
            bank_program, "transfer(a, b, 999)", bank_db, mode="bfs"
        )
        report = why_not_report(recorder)
        assert "attributed cost" not in report


class TestDot:
    def test_dot_output_shape(self, bank_program, bank_db):
        recorder, _ = explain_goal(
            bank_program, "transfer(a, b, 30)", bank_db, mode="bfs"
        )
        dot = to_dot(recorder)
        assert dot.startswith("digraph provenance {") and dot.endswith("}")
        assert "palegreen" in dot  # the solution node is highlighted
        assert "->" in dot

    def test_dot_truncation_keeps_solution_ancestry(self, bank_program, bank_db):
        recorder, _ = explain_goal(
            bank_program, "transfer(a, b, 30)", bank_db, mode="bfs"
        )
        dot = to_dot(recorder, max_nodes=5)
        assert "palegreen" in dot


class TestWitnessCheck:
    def test_missing_witness_is_a_problem(self):
        assert check_ample_witness(None) is not None
        assert check_ample_witness({}) is not None

    def test_commuting_witness_passes(self):
        witness = {
            "ample": "env",
            "ample_frontier": {"reads": ["pending"], "inserts": [], "deletes": []},
            "competitors": {"reads": [], "inserts": [], "deletes": []},
            "competitor_shared_vars": [],
            "pruned": [
                {
                    "branch": "other",
                    "closure": {
                        "reads": ["workitem"],
                        "inserts": ["done"],
                        "deletes": ["workitem"],
                    },
                    "shared_vars": [],
                }
            ],
        }
        assert check_ample_witness(witness) is None

    def test_read_write_conflict_detected(self):
        witness = {
            "ample_frontier": {"reads": ["x"], "inserts": [], "deletes": []},
            "competitors": {"reads": [], "inserts": [], "deletes": []},
            "competitor_shared_vars": [],
            "pruned": [
                {
                    "branch": "b",
                    "closure": {"reads": [], "inserts": ["x"], "deletes": []},
                    "shared_vars": [],
                }
            ],
        }
        problem = check_ample_witness(witness)
        assert problem is not None and "conflicts" in problem

    def test_shared_variables_detected(self):
        witness = {
            "ample_frontier": {"reads": [], "inserts": [], "deletes": []},
            "competitors": {"reads": [], "inserts": [], "deletes": []},
            "competitor_shared_vars": ["W"],
            "pruned": [],
        }
        problem = check_ample_witness(witness)
        assert problem is not None and "variables" in problem


class TestPorAudit:
    def test_goal_audit_on_bank(self, bank_program, bank_db):
        audit = audit_por_goal(bank_program, "transfer(a, b, 30)", bank_db)
        assert audit.ok, audit.render()
        assert audit.solutions_reduced == audit.solutions_full == 1
        assert "OK" in audit.render()

    def test_goal_audit_on_concurrent_program(self, simulate_program):
        db = parse_database("workitem(w1). workitem(w2). workitem(w3).")
        audit = audit_por_goal(simulate_program, "simulate", db)
        assert audit.ok, audit.render()
        assert audit.pruned > 0, "fanout must exercise the reducer"
        assert audit.solutions_reduced == audit.solutions_full

    @pytest.mark.parametrize("name", PROFILE_NAMES)
    def test_profile_suite_audits_clean(self, name):
        audit = audit_profile_config(name)
        assert audit.ok, audit.render()
