#!/usr/bin/env python3
"""An insurance-claims production workflow, verified before deployment.

The paper's opening examples of work items are "insurance claims, loan
applications, and laboratory samples".  This example builds the claims
pipeline with the full combinator vocabulary --

* triage with a **choice** between fast-track and full review,
* a **non-vital** fraud screen (skipped when no investigator is free,
  rather than wedging the claim),
* an **iterated** negotiation loop that repeats until settlement,

-- then uses the verification module to model-check the design on a
small batch before "go-live": completability, agent safety, and what
happens when a role is left uncovered.

Run:  python examples/insurance_claims.py
"""

from repro.verify import verify_workflow
from repro.workflow import (
    Agent,
    Choice,
    Emit,
    Iterate,
    NonVital,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)
from repro.workflow.monitor import status_report


def claims_workflow() -> WorkflowSpec:
    negotiation = SeqFlow(Step("negotiate"), Emit("settled"))
    return WorkflowSpec(
        name="claims",
        body=SeqFlow(
            Step("register"),
            Choice(
                Step("fast_track"),
                SeqFlow(Step("full_review"), NonVital(Step("fraud_screen"))),
            ),
            Iterate(negotiation, until="settled"),
            Step("payout"),
        ),
        tasks=(
            Task("register", role="clerk"),
            Task("fast_track", role="adjuster"),
            Task("full_review", role="adjuster"),
            Task("fraud_screen", role="investigator"),
            Task("negotiate", role="adjuster"),
            Task("payout", role="clerk"),
        ),
    )


def main() -> None:
    spec = claims_workflow()
    staff = [
        Agent("carol", ("clerk",)),
        Agent("amir", ("adjuster",)),
        Agent("ines", ("investigator", "adjuster")),
    ]
    sim = WorkflowSimulator([spec], agents=staff)

    claims = ["claim%03d" % i for i in range(4)]
    print("--- processing %d claims ---" % len(claims))
    result = sim.run(claims, seed=11)
    print("paid out:", ", ".join(result.completed("payout")))
    print()
    print(status_report(result.history))

    # --- verification before a staffing change -------------------------------
    print("\n--- verify: current staffing, one claim ---")
    report = verify_workflow(sim, ["claimX"], final_task="payout")
    print(report.summary())
    assert report.completable and report.agent_safe

    print("\n--- verify: what if the investigator leaves? ---")
    reduced = [Agent("carol", ("clerk",)), Agent("amir", ("adjuster",))]
    sim2 = WorkflowSimulator([spec], agents=reduced)
    report2 = verify_workflow(sim2, ["claimX"], final_task="payout")
    print(report2.summary())
    # the fraud screen is non-vital, so claims still complete
    assert report2.completable

    print("\n--- verify: and if all adjusters leave? ---")
    skeleton = [Agent("carol", ("clerk",))]
    sim3 = WorkflowSimulator([spec], agents=skeleton)
    report3 = verify_workflow(sim3, ["claimX"], final_task="payout")
    print(report3.summary())
    assert not report3.completable  # caught before go-live, not in production


if __name__ == "__main__":
    main()
