"""Experiment C2: sequential TD is decidable but EXPTIME.

Paper artifact: Theorem 4.5.  Two measured faces:

* the binary-counter family -- a *fixed* sequential (indeed fully
  bounded) program whose execution walks through all ``2^n`` databases
  over ``n`` data bits: execution length is exponential in the data;
* the tabled sequential engine as a decision procedure: its table grows
  with the reachable (call, state) space, and the AND/OR-graph encoding
  (alternation, the EXPTIME-hardness mechanism) cross-checks against a
  native solver.
"""

import pytest

from repro import Interpreter, SequentialEngine, parse_goal
from repro.complexity import (
    binary_counter_family,
    estimate_growth,
    grid_andor_graph,
    measure,
    print_series,
)
from repro.machines import andor_to_td, solve_andor


def test_binary_counter_is_exponential(benchmark):
    rows = []
    sizes = []
    steps = []
    for n in (2, 3, 4, 5, 6, 7):
        program, goal, db = binary_counter_family(n)
        interp = Interpreter(program, max_configs=20_000_000)
        exe, seconds = measure(lambda: interp.simulate(goal, db))
        assert exe is not None
        rows.append([n, 2**n, len(exe.trace), seconds])
        sizes.append(n)
        steps.append(len(exe.trace))
    print_series(
        "C2: binary counter -- execution length vs data bits",
        ["bits", "2^bits", "trace length", "seconds"],
        rows,
    )
    assert estimate_growth(sizes, steps) == "exponential"

    program, goal, db = binary_counter_family(5)
    interp = Interpreter(program, max_configs=20_000_000)
    benchmark.pedantic(lambda: interp.simulate(goal, db), rounds=3, iterations=1)


def test_tabled_decision_procedure_table_growth(benchmark):
    """Table sizes of the sequential engine on the counter family: the
    decision procedure materializes the exponential state space."""
    rows = []
    for n in (2, 3, 4):
        program, goal, db = binary_counter_family(n)
        engine = SequentialEngine(program)
        ok, seconds = measure(lambda: engine.succeeds(goal, db))
        assert ok
        keys, answers = engine.table_size
        rows.append([n, keys, answers, seconds])
    print_series(
        "C2: tabled sequential engine -- table growth",
        ["bits", "table keys", "table answers", "seconds"],
        rows,
    )
    keys = [r[1] for r in rows]
    assert keys == sorted(keys) and keys[-1] > 2 * keys[0]

    program, goal, db = binary_counter_family(3)
    def run():
        SequentialEngine(program).succeeds(goal, db)
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_qbf_alternation(benchmark):
    """QBF -- the canonical alternation-complete problem -- evaluated
    through its sequential-TD encoding: exists = rule choice, forall =
    both branches in sequence.  Cost doubles per universal quantifier."""
    import random

    from repro import Interpreter
    from repro.machines import QBF, evaluate_qbf, qbf_to_td

    def random_qbf(n_vars, seed):
        rng = random.Random(seed)
        prefix = tuple(
            ("forall" if i % 2 == 0 else "exists", "v%d" % i) for i in range(n_vars)
        )
        matrix = []
        for _ in range(n_vars + 1):
            clause = tuple(
                ("v%d" % rng.randrange(n_vars), rng.random() < 0.5)
                for _ in range(2)
            )
            matrix.append(clause)
        return QBF(prefix, tuple(matrix))

    rows = []
    for n in (2, 3, 4, 5):
        qbf = random_qbf(n, seed=n)
        program, goal, db = qbf_to_td(qbf)
        interp = Interpreter(program, max_configs=10_000_000)
        got, seconds = measure(lambda: interp.succeeds(goal, db))
        assert got == evaluate_qbf(qbf)
        rows.append([n, got, seconds])
    print_series(
        "C2: QBF via sequential TD (alternation made concrete)",
        ["quantifiers", "true", "seconds"],
        rows,
    )
    qbf = random_qbf(4, seed=4)
    program, goal, db = qbf_to_td(qbf)
    interp = Interpreter(program, max_configs=10_000_000)
    benchmark.pedantic(lambda: interp.succeeds(goal, db), rounds=3, iterations=1)


def test_andor_alternation_crosscheck(benchmark):
    """Alternation -- AND via sequential subgoals, OR via rule choice --
    is the mechanism behind EXPTIME-hardness; the TD encoding must agree
    with the native AND/OR solver at every depth."""
    rows = []
    for depth in (2, 3, 4, 5):
        graph = grid_andor_graph(depth=depth, fanout=3, seed=depth)
        program, db = andor_to_td(graph)
        engine = SequentialEngine(program)
        native = solve_andor(graph)
        root = "n0_0"

        def decide():
            return engine.succeeds(parse_goal("solve(%s)" % root), db)

        got, seconds = measure(decide)
        assert got == (root in native)
        rows.append([depth, len(graph.nodes()), got, seconds])
    print_series(
        "C2: AND/OR game graphs -- TD encoding vs native solver",
        ["depth", "nodes", "root solvable", "seconds (TD)"],
        rows,
    )
    graph = grid_andor_graph(depth=4, fanout=3, seed=4)
    program, db = andor_to_td(graph)
    benchmark.pedantic(
        lambda: SequentialEngine(program).succeeds(parse_goal("solve(n0_0)"), db),
        rounds=3,
        iterations=1,
    )
