"""Resumable search: checkpoints captured on budget/deadline
exhaustion, resume semantics, and the budget edge cases (zero budget,
exhaustion exactly at a solution, resume-after-resume, pickling)."""

import pickle

import pytest

from repro import Database, Interpreter, parse_database, parse_program
from repro.core.engine import select_engine
from repro.core.errors import (
    DeadlineExceeded,
    ReproError,
    SearchBudgetExceeded,
)
from repro.core.interpreter import Checkpoint, Deadline, Solution

#: A linear walk over a nine-edge chain: enumerating ``walk(a, Y)``
#: yields one solution per suffix of the chain, spread over enough
#: configurations that small budgets interrupt at many different points
#: (including exactly at a solution).
CHAIN = """
walk(X, Y) <- edge(X, Y) * ins.visited(Y).
walk(X, Y) <- edge(X, Z) * ins.visited(Z) * walk(Z, Y).
"""

CHAIN_DB = (
    "edge(a, b). edge(b, c). edge(c, d). edge(d, e). edge(e, f). "
    "edge(f, g). edge(g, h). edge(h, i). edge(i, j)."
)

GOAL = "walk(a, Y)"


def chain_interp(max_configs, **kw):
    return Interpreter(parse_program(CHAIN), max_configs=max_configs, **kw)


def canon(solutions):
    """Hashable rendering of a solution list (for set comparisons)."""
    return [
        (
            tuple(sorted((str(v), str(t)) for v, t in sol.bindings.items())),
            sol.database,
        )
        for sol in solutions
    ]


def full_solutions():
    return canon(chain_interp(1_000_000).solve(GOAL, parse_database(CHAIN_DB)))


def drain_with_resume(cap, resume_cap=1_000_000):
    """Solve under a tight budget, then finish via resume; returns the
    combined solution list and how many interruptions occurred."""
    db = parse_database(CHAIN_DB)
    got = []
    interruptions = 0
    source = chain_interp(cap).solve(GOAL, db)
    while True:
        try:
            for sol in source:
                got.append(sol)
            return got, interruptions
        except ReproError as exc:
            interruptions += 1
            assert exc.checkpoint is not None
            assert exc.spent is not None and exc.spent > 0
            source = chain_interp(resume_cap).resume(exc.checkpoint)


class TestBudgetEdgeCases:
    def test_budget_of_zero_interrupts_immediately_but_loses_nothing(self):
        db = parse_database(CHAIN_DB)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(chain_interp(0).solve(GOAL, db))
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.frontier_size >= 1
        resumed = canon(chain_interp(1_000_000).resume(checkpoint))
        assert resumed == full_solutions()

    def test_every_interruption_point_resumes_to_the_same_answers(self):
        # Sweep the budget across the whole search, so some caps fire
        # before the first solution, some exactly at a solution, and
        # some after the last: partial + resumed must always equal the
        # uninterrupted run, with no duplicates.
        full = full_solutions()
        interrupted_at_least_once = False
        for cap in range(0, 120, 7):
            got, interruptions = drain_with_resume(cap)
            interrupted_at_least_once |= interruptions > 0
            rendered = canon(got)
            assert sorted(map(repr, rendered)) == sorted(map(repr, full)), (
                "cap %d lost or duplicated solutions" % cap
            )
            assert len(rendered) == len(set(map(repr, rendered)))
        assert interrupted_at_least_once

    def test_resume_after_resume_composes(self):
        # Resume under the same tight budget as the original search:
        # the drain takes several hops, each carrying a fresh
        # checkpoint, and still converges to the full answer set.
        full = full_solutions()
        got, interruptions = drain_with_resume(13, resume_cap=13)
        assert interruptions >= 2
        assert sorted(map(repr, canon(got))) == sorted(map(repr, full))

    def test_resuming_the_same_checkpoint_twice_is_idempotent(self):
        db = parse_database(CHAIN_DB)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(chain_interp(20).solve(GOAL, db))
        checkpoint = info.value.checkpoint
        once = canon(chain_interp(1_000_000).resume(checkpoint))
        twice = canon(chain_interp(1_000_000).resume(checkpoint))
        assert once == twice

    def test_checkpoint_survives_a_pickle_round_trip(self):
        db = parse_database(CHAIN_DB)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(chain_interp(20).solve(GOAL, db))
        checkpoint = info.value.checkpoint
        clone = pickle.loads(pickle.dumps(checkpoint))
        assert isinstance(clone, Checkpoint)
        assert clone.frontier_size == checkpoint.frontier_size
        direct = canon(chain_interp(1_000_000).resume(checkpoint))
        via_pickle = canon(chain_interp(1_000_000).resume(clone))
        assert direct == via_pickle

    def test_sort_concurrent_mismatch_is_rejected(self):
        db = parse_database(CHAIN_DB)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(chain_interp(20).solve(GOAL, db))
        other = chain_interp(1_000_000, sort_concurrent=False)
        with pytest.raises(ValueError, match="sort_concurrent"):
            list(other.resume(info.value.checkpoint))


class _SteppingClock:
    """Deterministic clock: advances one second per reading."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestDeadline:
    def test_deadline_checkpoint_resumes_to_completion(self):
        db = parse_database(CHAIN_DB)
        deadline = Deadline(3.0, clock=_SteppingClock())
        with pytest.raises(DeadlineExceeded) as info:
            list(chain_interp(1_000_000).solve(GOAL, db, deadline=deadline))
        exc = info.value
        assert exc.elapsed > exc.deadline
        assert exc.checkpoint is not None
        resumed = canon(chain_interp(1_000_000).resume(exc.checkpoint))
        # Everything the interrupted search had not yet emitted arrives
        # on resume; nothing is emitted twice.
        full = full_solutions()
        assert set(map(repr, resumed)) <= set(map(repr, full))
        assert len(resumed) == len(set(map(repr, resumed)))

    def test_far_deadline_never_fires(self):
        db = parse_database(CHAIN_DB)
        sols = list(
            chain_interp(1_000_000).solve(GOAL, db, deadline=3600.0)
        )
        assert canon(sols) == full_solutions()


#: Concurrent composition in a rule body forces the full-TD
#: interpreter backend through ``select_engine``.
CONC = CHAIN + "main(Y) <- walk(a, Y) | ins.flag(go).\n"


class TestEngineFacade:
    def test_budget_error_crosses_the_facade_with_context(self):
        program = parse_program(CONC)
        engine = select_engine(program, max_configs=10)
        assert isinstance(engine.backend, Interpreter)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(engine.solve("main(Y)", parse_database(CHAIN_DB)))
        exc = info.value
        assert exc.goal is not None
        assert exc.spent is not None and exc.spent > 0
        assert exc.checkpoint is not None

    def test_engine_resume_finishes_the_interrupted_search(self):
        program = parse_program(CONC)
        db = parse_database(CHAIN_DB)
        small = select_engine(program, max_configs=10)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(small.solve("main(Y)", db))
        big = select_engine(program, max_configs=2_000_000)
        resumed = list(big.resume(info.value.checkpoint))
        assert resumed
        assert all(isinstance(sol, Solution) for sol in resumed)
        direct = select_engine(program, max_configs=2_000_000)
        assert len(canon(resumed)) <= len(canon(direct.solve("main(Y)", db)))

    def test_simulate_deadline_has_no_checkpoint(self):
        program = parse_program(CONC)
        engine = select_engine(program, max_configs=1_000_000)
        deadline = Deadline(2.0, clock=_SteppingClock())
        with pytest.raises(DeadlineExceeded) as info:
            engine.simulate("main(Y)", parse_database(CHAIN_DB),
                            deadline=deadline)
        exc = info.value
        assert exc.goal is not None
        assert exc.checkpoint is None
