"""Substitutions and unification over function-free terms.

TD evaluation threads a single substitution through a whole process tree:
when one concurrent branch binds a variable (by a tuple test or a call
answer) the binding is visible to every other branch that shares the
variable, which is exactly how the paper's examples pass work-item ids
between tasks.

Because the language is function-free, unification needs no occurs check
and substitutions never contain variable chains longer than necessary --
we keep them *idempotent* by resolving bindings eagerly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..obs import context as _obs
from ..obs import hotspots as _hot
from .terms import Atom, Constant, Term, Variable

__all__ = [
    "Substitution",
    "EMPTY_SUBST",
    "walk",
    "apply_term",
    "apply_atom",
    "unify_terms",
    "unify_atoms",
    "match_atom",
    "compose",
    "restrict",
    "rename_atom",
]

#: A substitution maps variables to terms.  We represent it as an
#: immutable mapping (plain dict treated as read-only by convention).
Substitution = Mapping[Variable, Term]

EMPTY_SUBST: Substitution = {}


def walk(term: Term, subst: Substitution) -> Term:
    """Resolve *term* through *subst* until it is a constant or an unbound
    variable.  Substitutions are kept idempotent, so this loop is short,
    but walking defensively costs little and keeps invariants local.
    """
    while isinstance(term, Variable) and term in subst:
        term = subst[term]
    return term


def apply_term(term: Term, subst: Substitution) -> Term:
    """Apply *subst* to a single term."""
    return walk(term, subst)


def apply_atom(a: Atom, subst: Substitution) -> Atom:
    """Apply *subst* to every argument of *a*."""
    if not a.args or not subst or a.is_ground():
        return a
    new_args = tuple(walk(t, subst) for t in a.args)
    if new_args == a.args:
        return a
    return Atom(a.pred, new_args)


def _bind(v: Variable, t: Term, subst: Dict[Variable, Term]) -> None:
    subst[v] = t


def unify_terms(
    t1: Term, t2: Term, subst: Substitution = EMPTY_SUBST
) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or ``None`` on failure.  The result
    shares structure with *subst* only by copying (substitutions are small
    in practice: rule bodies have a handful of variables).
    """
    out: Dict[Variable, Term] = dict(subst)
    if _unify_into(t1, t2, out):
        return out
    return None


def _unify_into(t1: Term, t2: Term, subst: Dict[Variable, Term]) -> bool:
    t1 = walk(t1, subst)
    t2 = walk(t2, subst)
    if t1 == t2:
        return True
    if isinstance(t1, Variable):
        _bind(t1, t2, subst)
        return True
    if isinstance(t2, Variable):
        _bind(t2, t1, subst)
        return True
    # Two distinct constants.
    return False


def unify_atoms(
    a1: Atom, a2: Atom, subst: Substitution = EMPTY_SUBST
) -> Optional[Substitution]:
    """Unify two atoms; they must agree on predicate and arity."""
    # Hot path: the instrumentation guard is one module-attribute load
    # plus a None check (see repro.obs.context).
    inst = _obs._ACTIVE
    if inst is not None:
        inst.metrics.inc("unify.attempts")
    attr = _hot._ACTIVE
    if attr is not None:
        attr.charge("unify.attempts", predicate=a1.pred)
    if a1.pred != a2.pred or len(a1.args) != len(a2.args):
        return None
    out: Dict[Variable, Term] = dict(subst)
    for t1, t2 in zip(a1.args, a2.args):
        if not _unify_into(t1, t2, out):
            return None
    return out


def match_atom(
    pattern: Atom, fact: Atom, subst: Substitution = EMPTY_SUBST
) -> Optional[Substitution]:
    """One-way matching: bind variables of *pattern* so it equals *fact*.

    *fact* must be ground (database facts always are).  This is the tuple
    test primitive: matching a query atom against a stored fact, and
    therefore the unification fan-out the join-ordering and
    partial-order-reduction optimizations exist to shrink -- it counts
    into ``unify.attempts`` alongside full rule-head unification (which
    the per-shape match cache already made search-size independent).
    """
    inst = _obs._ACTIVE
    if inst is not None:
        inst.metrics.inc("unify.attempts")
    attr = _hot._ACTIVE
    if attr is not None:
        attr.charge("unify.attempts", predicate=pattern.pred)
    if pattern.pred != fact.pred or len(pattern.args) != len(fact.args):
        return None
    out: Dict[Variable, Term] = dict(subst)
    for pt, ft in zip(pattern.args, fact.args):
        pt = walk(pt, out)
        if isinstance(pt, Variable):
            _bind(pt, ft, out)
        elif pt != ft:
            return None
    return out


def compose(first: Substitution, second: Substitution) -> Substitution:
    """Compose substitutions: applying the result equals applying *first*
    then *second*.
    """
    out: Dict[Variable, Term] = {}
    for v, t in first.items():
        out[v] = walk(t, second)
    for v, t in second.items():
        if v not in out:
            out[v] = t
    return out


def restrict(subst: Substitution, variables: Iterable[Variable]) -> Substitution:
    """Project *subst* onto *variables* (used to report call answers)."""
    keep = set(variables)
    return {v: walk(t, subst) for v, t in subst.items() if v in keep}


def rename_atom(a: Atom, suffix: str) -> Tuple[Atom, Dict[Variable, Term]]:
    """Freshen every variable of *a* by appending *suffix*.

    Returns the renamed atom and the renaming used, so callers can rename
    an entire rule consistently.
    """
    renaming: Dict[Variable, Term] = {}
    new_args = []
    for t in a.args:
        if isinstance(t, Variable):
            if t not in renaming:
                renaming[t] = Variable(t.name + suffix)
            new_args.append(renaming[t])
        else:
            new_args.append(t)
    return Atom(a.pred, tuple(new_args)), renaming
