"""Encodings of machines into Transaction Datalog.

These constructions mirror the paper's RE-completeness proofs:

* :func:`counter_to_td` -- a two-counter (Minsky) machine as **three
  concurrent TD processes**: one process per counter, holding the
  counter's value in its *recursion depth*, plus a sequential control
  process.  The processes communicate exclusively through a
  constant-size database of command/acknowledge flags -- the database
  never grows with the computation, exhibiting the paper's point that TD
  reaches RE with a fixed data domain and schema (Theorem 4.1 /
  Corollary 4.6 use two stacks; counters are the leaner cousin).

* :func:`two_stack_to_td` -- the construction of Corollary 4.6 itself:
  two stack processes (stack contents in recursion depth, one recursion
  level per stack cell) and a finite control, again three concurrent
  sequential processes communicating via the database.

Both encodings follow the same protocol: the control writes a command
fact (``inc0``, ``pop1``, ...), the owning process consumes it, performs
its recursion step, writes the reply (``popped1(s)``, ``zero0``) and an
acknowledge flag, and the control resumes.  Synchronization needs no
primitive: a tuple test on a not-yet-inserted fact simply cannot fire,
so the interleaving search schedules the partner first -- communication
through the database, exactly as the paper describes.

Acceptance maps to commitment: the control inserts ``halt`` at an
accepting configuration, every process unwinds by testing ``halt``, and
the goal commits.  A rejecting computation leaves some process stuck, so
no execution exists and the goal fails.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.database import Database
from ..core.formulas import Call, Del, Formula, Ins, Neg, Test, TRUTH, conc, seq
from ..core.program import Program, Rule
from ..core.terms import Atom, Constant, Variable, atom
from .counter import CounterMachine, Dec, Halt, Inc
from .twostack import BOTTOM, TwoStackMachine

__all__ = ["counter_to_td", "two_stack_to_td"]


# ---------------------------------------------------------------------------
# Counter machines
# ---------------------------------------------------------------------------


def _counter_process_rules(i: int) -> List[Rule]:
    """The recursion-depth counter process for counter *i*.

    ``czero`` is the process at value 0; each live activation of ``cpos``
    is one unit of the counter.  ``inc`` descends one level, ``dec``
    returns one, ``isz`` reports without changing depth.
    """
    inc = atom("inc%d" % i)
    dec = atom("dec%d" % i)
    isz = atom("isz%d" % i)
    zero = atom("zero%d" % i)
    nonzero = atom("nonzero%d" % i)
    ack = atom("ack%d" % i)
    halt = atom("halt")
    czero = atom("czero%d" % i)
    cpos = atom("cpos%d" % i)
    counter = atom("counter%d" % i)

    return [
        Rule(counter, Call(czero)),
        # At zero: terminate on halt, grow on inc, report zero on isz.
        Rule(czero, Test(halt)),
        Rule(czero, seq(Test(inc), Del(inc), Ins(ack), Call(cpos), Call(czero))),
        Rule(czero, seq(Test(isz), Del(isz), Ins(zero), Ins(ack), Call(czero))),
        # One positive unit: unwind on halt, nest on inc, return on dec,
        # report nonzero on isz.
        Rule(cpos, Test(halt)),
        Rule(cpos, seq(Test(inc), Del(inc), Ins(ack), Call(cpos), Call(cpos))),
        Rule(cpos, seq(Test(dec), Del(dec), Ins(ack))),
        Rule(cpos, seq(Test(isz), Del(isz), Ins(nonzero), Ins(ack), Call(cpos))),
    ]


def _loader_rules(i: int) -> List[Rule]:
    """Feed ``seed_i(k)`` facts from the input database into counter *i*
    one increment at a time -- the input lives in the database, keeping
    the data-complexity reading honest."""
    x = Variable("X")
    seed = Atom("seed%d" % i, (x,))
    load = atom("load%d" % i)
    return [
        Rule(
            load,
            seq(
                Test(seed),
                Del(seed),
                Ins(atom("inc%d" % i)),
                Test(atom("ack%d" % i)),
                Del(atom("ack%d" % i)),
                Call(load),
            ),
        ),
        Rule(load, Neg(Atom("seed%d" % i, (Variable("_L%d" % i),)))),
    ]


def _ctrl_rules(machine: CounterMachine) -> List[Rule]:
    rules: List[Rule] = []
    for pc, instr in enumerate(machine.program):
        head = atom("exec", pc)
        if isinstance(instr, Inc):
            c = instr.counter
            body = seq(
                Ins(atom("inc%d" % c)),
                Test(atom("ack%d" % c)),
                Del(atom("ack%d" % c)),
                Call(atom("exec", instr.goto)),
            )
            rules.append(Rule(head, body))
        elif isinstance(instr, Dec):
            c = instr.counter
            probe = [
                Ins(atom("isz%d" % c)),
                Test(atom("ack%d" % c)),
                Del(atom("ack%d" % c)),
            ]
            nonzero_body = seq(
                *probe,
                Test(atom("nonzero%d" % c)),
                Del(atom("nonzero%d" % c)),
                Ins(atom("dec%d" % c)),
                Test(atom("ack%d" % c)),
                Del(atom("ack%d" % c)),
                Call(atom("exec", instr.goto_nonzero)),
            )
            zero_body = seq(
                *probe,
                Test(atom("zero%d" % c)),
                Del(atom("zero%d" % c)),
                Call(atom("exec", instr.goto_zero)),
            )
            rules.append(Rule(head, nonzero_body))
            rules.append(Rule(head, zero_body))
        elif isinstance(instr, Halt):
            if instr.accept:
                rules.append(Rule(head, Ins(atom("halt"))))
            # A rejecting halt has no rule: the control gets stuck and
            # the whole goal fails, which is TD's notion of rejection.
    return rules


def counter_to_td(
    machine: CounterMachine, c0: int = 0, c1: int = 0
) -> Tuple[Program, Formula, Database]:
    """Encode *machine* with inputs ``c0``/``c1`` into TD.

    Returns ``(program, goal, initial database)``; the goal commits under
    the full-TD interpreter iff the machine accepts.  The database holds
    only the input seeds plus a handful of flag propositions -- it never
    grows with running time.
    """
    rules: List[Rule] = []
    rules += _counter_process_rules(0)
    rules += _counter_process_rules(1)
    rules += _loader_rules(0)
    rules += _loader_rules(1)
    rules += _ctrl_rules(machine)
    program = Program(rules)

    goal = conc(
        Call(atom("counter0")),
        Call(atom("counter1")),
        seq(Call(atom("load0")), Call(atom("load1")), Call(atom("exec", 0))),
    )

    facts = [atom("seed0", k) for k in range(1, c0 + 1)]
    facts += [atom("seed1", k) for k in range(1, c1 + 1)]
    return program, goal, Database(facts)


# ---------------------------------------------------------------------------
# Two-stack machines
# ---------------------------------------------------------------------------

_BOT_CONST = "bot"  # database-friendly spelling of the bottom marker


def _sym(s: str) -> str:
    return _BOT_CONST if s == BOTTOM else s


def _stack_process_rules(i: int) -> List[Rule]:
    """The recursion-depth stack process for stack *i*: each activation of
    ``hold_i`` is one stack cell, its argument the cell's symbol."""
    s = Variable("S")
    t = Variable("T")
    push = Atom("push%d" % i, (s,))
    pop = atom("pop%d" % i)
    popped_t = Atom("popped%d" % i, (t,))
    popped_bot = atom("popped%d" % i, _BOT_CONST)
    ack = atom("ack%d" % i)
    halt = atom("halt")
    sbot = atom("sbot%d" % i)
    hold_s = Atom("hold%d" % i, (s,))
    hold_t = Atom("hold%d" % i, (t,))
    stack = atom("stack%d" % i)

    return [
        Rule(stack, Call(sbot)),
        # Bottom of stack: reports the bottom marker but never pops it.
        Rule(sbot, Test(halt)),
        Rule(sbot, seq(Test(pop), Del(pop), Ins(popped_bot), Ins(ack), Call(sbot))),
        Rule(sbot, seq(Test(push), Del(push), Ins(ack), Call(hold_s), Call(sbot))),
        # One held cell: pop returns this level (revealing the one below).
        Rule(hold_t, Test(halt)),
        Rule(hold_t, seq(Test(pop), Del(pop), Ins(popped_t), Ins(ack))),
        Rule(
            hold_t,
            seq(Test(push), Del(push), Ins(ack), Call(hold_s), Call(hold_t)),
        ),
    ]


def _rw_helper_rules(i: int) -> List[Rule]:
    a = Variable("A")
    s = Variable("S")
    return [
        # read_i(A): pop and observe the top symbol.
        Rule(
            Atom("read%d" % i, (a,)),
            seq(
                Ins(atom("pop%d" % i)),
                Test(atom("ack%d" % i)),
                Del(atom("ack%d" % i)),
                Test(Atom("popped%d" % i, (a,))),
                Del(Atom("popped%d" % i, (a,))),
            ),
        ),
        # wr_i(S): push one symbol.
        Rule(
            Atom("wr%d" % i, (s,)),
            seq(
                Ins(Atom("push%d" % i, (s,))),
                Test(atom("ack%d" % i)),
                Del(atom("ack%d" % i)),
            ),
        ),
    ]


def _two_stack_ctrl_rules(machine: TwoStackMachine) -> List[Rule]:
    rules: List[Rule] = []
    for q in sorted(machine.accepting):
        rules.append(Rule(atom("ctrl", q), Ins(atom("halt"))))
    for (q, a1, a2), outs in sorted(machine.transitions.items()):
        for q2, gamma1, gamma2 in outs:
            parts: List[Formula] = [
                Call(atom("read1", _sym(a1))),
                Call(atom("read2", _sym(a2))),
            ]
            # gamma's leftmost symbol must end on top: push right-to-left.
            for sym in reversed(gamma1):
                parts.append(Call(atom("wr1", sym)))
            for sym in reversed(gamma2):
                parts.append(Call(atom("wr2", sym)))
            parts.append(Call(atom("ctrl", q2)))
            rules.append(Rule(atom("ctrl", q), seq(*parts)))
    return rules


def _input_loader_rules() -> List[Rule]:
    """Push the input word (``in2(k, s)`` facts, 1-based) onto stack 2,
    last position first, so position 1 ends on top."""
    k = Variable("K")
    k2 = Variable("K2")
    s = Variable("S")
    from ..core.formulas import Builtin

    return [
        Rule(atom("load2", 0), TRUTH),
        Rule(
            Atom("load2", (k,)),
            seq(
                Builtin(">", k, Constant(0)),
                Test(Atom("in2", (k, s))),
                Call(Atom("wr2", (s,))),
                Builtin("is", k2, _minus(k)),
                Call(Atom("load2", (k2,))),
            ),
        ),
        Rule(
            atom("boot"),
            seq(
                Test(Atom("inlen", (Variable("N"),))),
                Call(Atom("load2", (Variable("N"),))),
                Call(Atom("ctrl", (Constant(_start_placeholder),))),
            ),
        ),
    ]


_start_placeholder = "__start__"


def _minus(k: Variable):
    from ..core.formulas import BinOp

    return BinOp("-", k, Constant(1))


def two_stack_to_td(
    machine: TwoStackMachine, word: Sequence[str] = ()
) -> Tuple[Program, Formula, Database]:
    """Encode *machine* on input *word* into TD: three concurrent
    sequential processes (Corollary 4.6).

    Returns ``(program, goal, initial database)``; the goal commits iff
    the machine accepts the input.
    """
    rules: List[Rule] = []
    rules += _stack_process_rules(1)
    rules += _stack_process_rules(2)
    rules += _rw_helper_rules(1)
    rules += _rw_helper_rules(2)
    rules += _two_stack_ctrl_rules(machine)
    loader = _input_loader_rules()
    # Patch the boot rule's start state.
    patched: List[Rule] = []
    for rule in loader:
        if rule.head.pred == "boot":
            body = rule.body
            from ..core.formulas import Seq as _Seq

            assert isinstance(body, _Seq)
            parts = list(body.parts)
            parts[-1] = Call(atom("ctrl", machine.start))
            patched.append(Rule(rule.head, seq(*parts)))
        else:
            patched.append(rule)
    rules += patched
    program = Program(rules)

    goal = conc(Call(atom("stack1")), Call(atom("stack2")), Call(atom("boot")))

    facts = [atom("inlen", len(word))]
    for k, sym in enumerate(word, start=1):
        facts.append(atom("in2", k, sym))
    return program, goal, Database(facts)
