"""Per-rule cost attribution: determinism, off-by-default purity,
export agreement, and the CLI hotspots command."""

import json

import pytest

from repro import (
    Database,
    Interpreter,
    parse_database,
    parse_goal,
    parse_program,
    select_engine,
)
from repro.cli import main
from repro.obs import CostAttributor, Instrumentation, attributing, instrumented
from repro.obs.hotspots import (
    UNATTRIBUTED,
    active_attributor,
    engine_frame,
    meter_engine,
    rule_label,
)


class FakeClock:
    """Deterministic monotonic clock: each read advances by one tick."""

    def __init__(self, tick=0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


BANK_TD = """
transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
withdraw(Acct, Amt) <-
    balance(Acct, Bal) * Bal >= Amt *
    del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
deposit(Acct, Amt) <-
    balance(Acct, Bal) *
    del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
"""

PATH_TD = """
path(X, Y) <- e(X, Y).
path(X, Y) <- e(X, Z) * path(Z, Y).
"""

NONREC_TD = """
audit(A) <- check(A) * ins.audited(A).
check(A) <- account(A).
"""


def run_bank():
    engine = select_engine(parse_program(BANK_TD), "transfer(a, b, 30)")
    db = parse_database("balance(a, 100). balance(b, 10).")
    return list(engine.solve(parse_goal("transfer(a, b, 30)"), db))


def run_path():
    engine = select_engine(parse_program(PATH_TD), "path(a, X)")
    db = parse_database("e(a, b). e(b, c). e(c, d).")
    return list(engine.solve(parse_goal("path(a, X)"), db))


def run_nonrec():
    engine = select_engine(parse_program(NONREC_TD), "audit(X)")
    db = parse_database("account(a1). account(a2).")
    return list(engine.solve(parse_goal("audit(X)"), db))


def run_datalog():
    from repro.datalog import evaluate, from_td

    program = from_td(parse_program(PATH_TD))
    edb = parse_database("e(a, b). e(b, c).")
    return evaluate(program, edb)


def run_statespace():
    from repro.verify import explore

    program = parse_program("p <- ins.a * (ins.b | ins.c).")
    return explore(program, "p", Database(), max_states=1000)


WORKLOADS = [run_bank, run_path, run_nonrec, run_datalog, run_statespace]


def counters_of(run, attribute):
    inst = Instrumentation.create()
    if attribute:
        with attributing(CostAttributor()), instrumented(inst):
            run()
    else:
        with instrumented(inst):
            run()
    return inst.metrics.snapshot(include_timers=False)


class TestOffByDefault:
    def test_no_ambient_attributor_by_default(self):
        assert active_attributor() is None

    @pytest.mark.parametrize("run", WORKLOADS, ids=lambda f: f.__name__)
    def test_counters_identical_with_attribution(self, run):
        # The attribution layer must not perturb the deterministic
        # counters: snapshots with and without an attributor are equal.
        assert counters_of(run, attribute=False) == counters_of(
            run, attribute=True
        )

    @pytest.mark.parametrize("run", WORKLOADS, ids=lambda f: f.__name__)
    def test_results_unchanged_with_attribution(self, run):
        plain = run()
        with attributing(CostAttributor()):
            attributed = run()
        assert str(plain) == str(attributed)


class TestDeterminism:
    def attribute(self, run):
        attr = CostAttributor(clock=FakeClock())
        with attributing(attr):
            run()
        attr.mark()
        return attr

    @pytest.mark.parametrize("run", WORKLOADS, ids=lambda f: f.__name__)
    def test_two_runs_attribute_identically(self, run):
        first = self.attribute(run)
        second = self.attribute(run)
        assert first.by_key == second.by_key
        assert first.by_path == second.by_path

    def test_unify_attribution_matches_counter(self):
        for run in WORKLOADS:
            attr = CostAttributor()
            inst = Instrumentation.create()
            with attributing(attr), instrumented(inst):
                run()
            attributed = attr.totals().get("unify.attempts", 0.0)
            assert int(attributed) == inst.metrics.counter("unify.attempts")


class TestAccounting:
    def test_time_partitions_across_frames(self):
        # Every clock interval lands in exactly one bucket: the total
        # attributed time equals (last read - first read) of the clock.
        clock = FakeClock()
        attr = CostAttributor(clock=clock)
        start = clock.now
        with attr.frame(phase="a"):
            attr.mark()
            with attr.frame(phase="b", rule="r"):
                attr.mark()
        attr.mark()
        total = attr.totals()["time"]
        assert total == pytest.approx(clock.now - start - clock.tick)

    def test_key_and_path_totals_agree(self):
        attr = CostAttributor(clock=FakeClock())
        with attributing(attr):
            run_bank()
        attr.mark()
        key_totals = attr.totals()
        path_totals = attr.path_totals()
        for kind in set(key_totals) | set(path_totals):
            assert key_totals.get(kind, 0.0) == pytest.approx(
                path_totals.get(kind, 0.0)
            )

    def test_non_lifo_pop_is_tolerated(self):
        attr = CostAttributor(clock=FakeClock())
        outer = attr.push(phase="outer")
        inner = attr.push(phase="inner")
        attr.pop(outer)  # out of order: abandoned generator teardown
        attr.charge("steps.expansions", 1)
        attr.pop(inner)
        key = (UNATTRIBUTED, UNATTRIBUTED, "inner")
        assert attr.by_key[key]["steps.expansions"] == 1

    def test_field_inheritance(self):
        attr = CostAttributor(clock=FakeClock())
        with attr.frame(phase="solve"):
            with attr.frame(rule="r(X)"):
                attr.charge("steps.expansions", 1, predicate="p")
        assert attr.by_key[("r(X)", "p", "solve")]["steps.expansions"] == 1

    def test_explicit_engine_argument_beats_ambient(self):
        explicit = CostAttributor()
        ambient = CostAttributor()
        program = parse_program("p <- ins.a.")
        interp = Interpreter(program, attribution=explicit)
        with attributing(ambient):
            list(interp.solve(parse_goal("p"), Database()))
        assert explicit.totals().get("steps.expansions")
        assert not ambient.by_key

    def test_meter_engine_passthrough_when_off(self):
        gen = iter([1, 2, 3])
        assert list(meter_engine(None, gen, "x")) == [1, 2, 3]

    def test_engine_frame_noop_when_off(self):
        with engine_frame(None, "x"):
            assert active_attributor() is None

    def test_rule_label_strips_renaming(self):
        assert rule_label("path(X#30, Y#30)") == "path(X, Y)"
        assert rule_label("p(a, b)") == "p(a, b)"


class TestExports:
    def build(self):
        attr = CostAttributor(clock=FakeClock())
        with attributing(attr):
            run_bank()
            run_path()
        attr.mark()
        return attr

    def test_folded_total_matches_table_total(self):
        attr = self.build()
        folded = attr.folded(kind="time")
        total_us = sum(int(line.rsplit(" ", 1)[1]) for line in folded.splitlines())
        # Integer-microsecond rounding only.
        assert total_us == pytest.approx(attr.totals()["time"] * 1e6, abs=len(folded.splitlines()))

    def test_folded_counter_kind_is_exact(self):
        attr = self.build()
        folded = attr.folded(kind="unify.attempts")
        total = sum(int(line.rsplit(" ", 1)[1]) for line in folded.splitlines())
        assert total == int(attr.totals()["unify.attempts"])

    def test_speedscope_totals_and_schema(self):
        attr = self.build()
        doc = attr.speedscope(kind="time")
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        assert profile["endValue"] == pytest.approx(attr.totals()["time"] * 1e6)
        assert len(profile["samples"]) == len(profile["weights"])
        nframes = len(doc["shared"]["frames"])
        assert all(0 <= i < nframes for stack in profile["samples"] for i in stack)
        json.loads(attr.speedscope_json())  # round-trips

    def test_merge_sums_aggregates(self):
        a = self.build()
        b = self.build()
        merged = CostAttributor()
        merged.merge(a)
        merged.merge(b)
        assert merged.totals()["unify.attempts"] == pytest.approx(
            a.totals()["unify.attempts"] * 2
        )

    def test_table_renders(self):
        attr = self.build()
        text = attr.table(top=5)
        assert "by rule" in text and "by predicate" in text
        assert "coverage:" in text


class TestCliHotspots:
    def test_hotspots_command(self, tmp_path, capsys):
        folded = tmp_path / "hot.folded"
        speedscope = tmp_path / "hot.speedscope.json"
        payload = tmp_path / "hot.json"
        assert (
            main(
                [
                    "profile",
                    "hotspots",
                    "--only",
                    "bank_transfer",
                    "--only",
                    "path_tabled",
                    "--json",
                    str(payload),
                    "--folded",
                    str(folded),
                    "--speedscope",
                    str(speedscope),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "by rule" in out and "coverage:" in out
        doc = json.loads(payload.read_text())
        for row in doc["configs"]:
            assert row["coverage"]["time"] >= 0.95
            assert row["coverage"]["unify.attempts"] >= 0.95
            assert int(row["unify_attributed"]) == row["unify_counter"]
        # Folded and speedscope weigh the same merged stream.
        folded_total = sum(
            int(line.rsplit(" ", 1)[1])
            for line in folded.read_text().splitlines()
        )
        ss = json.loads(speedscope.read_text())
        assert folded_total == pytest.approx(
            ss["profiles"][0]["endValue"], rel=0.01
        )

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            main(["profile", "hotspots", "--only", "nope"])
