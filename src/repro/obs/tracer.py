"""Span-based tracing for engine searches.

A *span* is one timed region of a search -- a ``solve`` call, a nested
``iso-subsearch``, a ``table-fixpoint`` drain.  Spans carry sequential
string ids and a ``parent_id``, so a finished trace reconstructs the
search tree.  Serialization is JSON lines: one object per line, append
friendly, parseable by anything.

The tracer tolerates out-of-order span closure: engine entry points are
generators, so an outer span's generator may be closed while an inner
sibling (another abandoned generator) is still pending.  Ending a span
removes it from wherever it sits on the open stack.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "read_jsonl"]

#: Event attribute clip length: events record *which* config/branch was
#: affected, and a prefix identifies it; full renderings belong to the
#: provenance log.
_CLIP = 160


def _clip(text: str, limit: int = _CLIP) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


class Span:
    """One traced region.  ``end`` is ``None`` while the span is open."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end")

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: Dict[str, object],
        start: float,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%s %s parent=%s)" % (self.span_id, self.name, self.parent_id)


class Tracer:
    """Records spans with parent links; serializes as JSON lines.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.perf_counter`).  Span ids are sequential (``s1``,
    ``s2``, ...) in creation order, so they are deterministic for a
    fixed search even though timestamps are not.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._next_id = 0
        self._open: List[Span] = []
        self.spans: List[Span] = []  # finished, in completion order

    # -- span lifecycle -------------------------------------------------------

    def start(self, name: str, **attrs: object) -> Span:
        """Open a span as a child of the innermost open span."""
        self._next_id += 1
        parent = self._open[-1].span_id if self._open else None
        span = Span("s%d" % self._next_id, parent, name, attrs, self._clock())
        self._open.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close *span*, recording it; tolerates out-of-order closure."""
        if span.end is not None:
            return
        span.end = self._clock()
        try:
            self._open.remove(span)
        except ValueError:  # pragma: no cover - defensive
            pass
        self.spans.append(span)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    @property
    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span (correlation hook)."""
        return self._open[-1].span_id if self._open else None

    def event(self, name: str, **attrs: object) -> Span:
        """Record an instant (zero-duration) span under the innermost
        open span.

        This is the debug-trace hook for per-occurrence facts the
        counters only aggregate -- which configuration was subsumed,
        which branches a reduction pruned -- so a trace log and a
        provenance log agree even when only one of them is attached.
        Long string attributes are clipped; events are data points, not
        documents.
        """
        self._next_id += 1
        parent = self._open[-1].span_id if self._open else None
        clipped = {
            key: _clip(value) if isinstance(value, str) else value
            for key, value in attrs.items()
        }
        now = self._clock()
        span = Span("s%d" % self._next_id, parent, name, clipped, now)
        span.end = now
        self.spans.append(span)
        return span

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """Record an already-measured span with explicit endpoints.

        For retrospective spans whose boundaries were captured outside
        the tracer -- e.g. the workflow scheduler stamping one span per
        task execution from the simulation's action timestamps, after
        the run finished.  The parent is given explicitly (the open
        stack is in the wrong state by the time the caller knows the
        boundaries).
        """
        self._next_id += 1
        span = Span("s%d" % self._next_id, parent_id, name, attrs, start)
        span.end = end
        self.spans.append(span)
        return span

    # -- analysis / serialization ---------------------------------------------

    @property
    def max_depth(self) -> int:
        """Depth of the deepest finished span (root = 1)."""
        depths: Dict[str, int] = {}
        deepest = 0
        # Parents finish after children; resolve via a parent map over
        # all spans (finished or still open) instead of relying on order.
        by_id = {s.span_id: s for s in self.spans + self._open}

        def depth_of(span: Span) -> int:
            cached = depths.get(span.span_id)
            if cached is not None:
                return cached
            parent = by_id.get(span.parent_id) if span.parent_id else None
            d = 1 if parent is None else depth_of(parent) + 1
            depths[span.span_id] = d
            return d

        for span in self.spans:
            deepest = max(deepest, depth_of(span))
        return deepest

    def to_jsonl(self) -> str:
        """Finished spans as JSON lines (one object per line)."""
        return "\n".join(json.dumps(s.as_dict(), sort_keys=True) for s in self.spans)

    def write_jsonl(self, path: str, append: bool = False) -> None:
        """Write the span log to *path* (trailing newline included).

        Default is overwrite -- one file per run, matching what trace
        viewers expect.  ``append=True`` adds this run's spans to an
        existing log (JSON lines concatenate cleanly); span ids restart
        at ``s1`` per run, so appended logs are distinguishable only by
        ordering -- callers wanting hard separation should write one
        file per run.
        """
        text = self.to_jsonl()
        with open(path, "a" if append else "w") as handle:
            handle.write(text + ("\n" if text else ""))


def read_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse a span log back into dicts (round-trip of ``to_jsonl``)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]
