"""Ambient store provider: attach a storage backend to a whole region
of code without threading ``store=`` through every call.

Mirrors the explicit-beats-ambient pattern of
:mod:`repro.obs.provenance` and :mod:`repro.obs.hotspots`: engines that
were not given an explicit ``store=`` consult
:func:`active_store_provider` at solve entry; an explicit keyword
always wins.  A *provider* is anything with
``provide(db) -> Store | None`` -- it may hand out one shared store, or
mint a fresh one per solve (what the backend-differential test and the
``STORE=sqlite`` CI matrix do, so each engine run gets its own file).

This module deliberately imports nothing from :mod:`repro.core`: the
core duck-types the stores it receives, and this file keeps the
provider state equally dependency-free, so there is no import cycle
anywhere in the package.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "StoreProvider",
    "active_store_provider",
    "using_store_provider",
    "provide_store",
]

_ACTIVE: Optional["StoreProvider"] = None


class StoreProvider:
    """Hand out the same store to every consulting engine.

    Subclass (or just supply any object with ``provide``) to mint
    per-solve stores instead.
    """

    def __init__(self, store):
        self.store = store

    def provide(self, db):
        """Return a store for a solve starting from *db* (may ignore
        *db*, may return ``None`` to decline)."""
        return self.store


def active_store_provider() -> Optional[StoreProvider]:
    """The provider installed by :func:`using_store_provider`, if any."""
    return _ACTIVE


@contextmanager
def using_store_provider(provider) -> Iterator:
    """Install *provider* as the ambient store source for the dynamic
    extent of the ``with`` block (providers do not nest meaningfully;
    the innermost wins, and the previous one is restored on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = provider
    try:
        yield provider
    finally:
        _ACTIVE = previous


def provide_store(db):
    """Consult the ambient provider for a store seeded from *db*
    (``None`` when no provider is installed or it declines)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.provide(db)
