"""Property-based tests for the workflow compiler and simulator.

Random workflow specs (bounded shape) must compile, classify inside a
decidable fragment, and -- when every role is covered by an agent --
simulate to completion with a well-formed history.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import analyze
from repro.workflow import (
    Agent,
    Choice,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
    compile_workflows,
)

TASKS = [Task("t1", role="r1"), Task("t2", role="r1"), Task("t3", role="r2"),
         Task("t4", None)]
TASK_NAMES = [t.name for t in TASKS]


def _leaf():
    return st.sampled_from(TASK_NAMES).map(Step)


def _node(depth: int):
    if depth == 0:
        return _leaf()
    sub = _node(depth - 1)
    return st.one_of(
        _leaf(),
        st.lists(sub, min_size=1, max_size=3).map(lambda cs: SeqFlow(*cs)),
        st.lists(sub, min_size=1, max_size=2).map(lambda cs: ParFlow(*cs)),
        st.lists(sub, min_size=2, max_size=2).map(lambda cs: Choice(*cs)),
        sub.map(NonVital),
    )


specs = _node(2).map(lambda body: WorkflowSpec("wf", body, tuple(TASKS)))


class TestCompilerProperties:
    @settings(max_examples=40, deadline=None)
    @given(specs)
    def test_every_spec_compiles_and_is_bounded(self, spec):
        program = compile_workflows([spec])
        analysis = analyze(program)
        # compiled workflows never use unbounded recursion
        assert analysis.fully_bounded

    @settings(max_examples=20, deadline=None)
    @given(specs)
    def test_simulation_completes_with_full_agent_pool(self, spec):
        sim = WorkflowSimulator(
            [spec],
            agents=[Agent("a1", ("r1", "r2")), Agent("a2", ("r1",))],
        )
        result = sim.run(["w1"])
        # history well-formed: every done has a started, agents restored
        done = {(str(f.args[0]), str(f.args[1])) for f in result.history.facts("done")}
        started = {
            (str(f.args[0]), str(f.args[1])) for f in result.history.facts("started")
        }
        assert done <= started
        pool = {str(f.args[0]) for f in result.history.facts("available")}
        assert pool == {"a1", "a2"}
        assert not result.history.facts("workitem")

    @settings(max_examples=20, deadline=None)
    @given(specs, st.integers(min_value=0, max_value=1000))
    def test_seeded_simulation_reproducible(self, spec, seed):
        sim = WorkflowSimulator(
            [spec], agents=[Agent("a1", ("r1", "r2"))]
        )
        r1 = sim.run(["w1"], seed=seed)
        r2 = sim.run(["w1"], seed=seed)
        assert r1.execution.events == r2.execution.events
        assert r1.history == r2.history
