"""Bottom-up Datalog evaluation: naive and seminaive, stratum by stratum.

Seminaive evaluation is the classical optimization the paper alludes to
when it says Datalog techniques apply to the tame TD sublanguages: each
iteration joins only against the *delta* (facts new in the previous
round), so the fixpoint costs O(|derivations|) instead of re-deriving
everything every round.  Naive evaluation is kept alongside as the
obviously-correct oracle for property tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.database import Database
from ..core.formulas import Call, Conc, Isol, Neg, Seq, Test, Truth, walk_formulas
from ..core.interpreter import _resolve_store
from ..core.program import Program
from ..core.terms import Atom, Variable
from ..core.unify import Substitution, apply_atom, match_atom, unify_atoms
from ..obs import context as _obs
from ..obs import hotspots as _hot
from ..obs.provenance import active_recorder
from .ast import DatalogProgram, DatalogRule, Literal

__all__ = ["evaluate", "evaluate_naive", "query", "from_td"]


def _order_body(body: Sequence[Literal]) -> List[Literal]:
    """Positive literals first (in given order), then negative ones.

    Safety checking guarantees negated variables are bound by positive
    literals, so this order always evaluates negation on ground atoms.
    """
    return [l for l in body if l.positive] + [l for l in body if not l.positive]


def _plan_body(
    body: Sequence[Literal], facts: Database, reorder: bool = True
) -> List[Literal]:
    """Choose a join order for *body* against the current *facts*.

    Greedy bound-argument selectivity: repeatedly pick the positive
    literal with the fewest still-unbound variable arguments (a bound
    argument lets :meth:`Database.match` probe the per-``(pred, position)``
    index instead of scanning every fact of the predicate), breaking
    ties by relation size, then by the textual position.  Negative
    literals stay last, so safety -- negation on ground atoms only -- is
    untouched.  Any join order over the positive conjuncts enumerates
    the same substitutions; only the fan-out differs.

    Counts ``join.reorders`` whenever the plan differs from the textual
    :func:`_order_body` baseline.
    """
    positives = [l for l in body if l.positive]
    negatives = [l for l in body if not l.positive]
    if not reorder or len(positives) <= 1:
        return positives + negatives

    def unbound(lit: Literal, bound: Set[Variable]) -> int:
        return sum(
            1
            for t in lit.atom.args
            if isinstance(t, Variable) and t not in bound
        )

    remaining = list(enumerate(positives))
    bound: Set[Variable] = set()
    plan: List[Literal] = []
    while remaining:
        pos, lit = min(
            remaining,
            key=lambda item: (
                unbound(item[1], bound),
                len(facts.facts(item[1].atom.pred)),
                item[0],
            ),
        )
        remaining.remove((pos, lit))
        plan.append(lit)
        bound.update(t for t in lit.atom.args if isinstance(t, Variable))
    plan += negatives

    if plan != positives + negatives:
        inst = _obs._ACTIVE
        if inst is not None:
            inst.metrics.inc("join.reorders")
    return plan


def _join(
    body: Sequence[Literal],
    facts: Database,
    delta_index: Optional[Tuple[int, Set[Atom]]] = None,
    plan: Optional[Sequence[Literal]] = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions satisfying *body* against *facts*.

    With ``delta_index = (i, delta)``, the i-th positive literal *of the
    evaluation order* is matched against *delta* only -- the seminaive
    trick.  *plan* overrides the textual :func:`_order_body` order (the
    caller must compute ``delta_index`` against the same plan).
    """

    ordered = list(plan) if plan is not None else _order_body(body)

    def recurse(idx: int, subst: Substitution) -> Iterator[Substitution]:
        if idx == len(ordered):
            yield subst
            return
        lit = ordered[idx]
        if lit.positive:
            if delta_index is not None and idx == delta_index[0]:
                pattern = apply_atom(lit.atom, subst)
                for fact in sorted(delta_index[1]):
                    theta = match_atom(pattern, fact, subst)
                    if theta is not None:
                        yield from recurse(idx + 1, theta)
            else:
                for theta in facts.match(lit.atom, subst):
                    yield from recurse(idx + 1, theta)
        else:
            if not facts.holds(lit.atom, subst):
                yield from recurse(idx + 1, subst)

    yield from recurse(0, {})


def evaluate_naive(program: DatalogProgram, edb: Database) -> Database:
    """Naive (Jacobi-style) stratified evaluation: recompute all rules
    until nothing changes.  The oracle implementation."""
    facts = edb
    for stratum in program.strata:
        rules = program.rules_for_stratum(stratum)
        changed = True
        while changed:
            changed = False
            for rule in rules:
                for theta in _join(rule.body, facts):
                    fact = apply_atom(rule.head, theta)
                    if not fact.is_ground():
                        raise ValueError("derived non-ground fact %s" % (fact,))
                    if fact not in facts:
                        facts = facts.insert(fact)
                        changed = True
    return facts


def evaluate(
    program: DatalogProgram,
    edb: Optional[Database] = None,
    reorder: bool = True,
    provenance=None,
    attribution=None,
    *,
    store=None,
) -> Database:
    """Seminaive stratified evaluation (the production evaluator).

    With *reorder* (the default), each rule body is join-ordered by
    :func:`_plan_body` before every pass; the plan is recomputed per
    round because selectivity shifts as relations grow.  Pass
    ``reorder=False`` to pin the textual order (the differential tests
    compare the two, and both against :func:`evaluate_naive`).

    *provenance* (or the ambient recorder, see
    :mod:`repro.obs.provenance`) records one ``fact`` node per derived
    IDB fact, parented on the first derived positive premise of its
    first derivation, with the instantiated rule as witness.

    *attribution* (or the ambient attributor, see
    :mod:`repro.obs.hotspots`) charges each rule's join work to a
    per-rule frame under a ``seminaive`` phase, plus one
    ``steps.expansions`` per derived fact and the per-round delta sizes
    as ``db.delta``.

    *store* (or the ambient provider, see :mod:`repro.store.context`)
    attaches a storage backend: with ``edb=None`` it supplies the EDB,
    and after the fixpoint the derived IDB facts are materialized into
    it with one batched ``insert_all`` -- a durable materialized view.
    The fixpoint itself runs over in-memory states either way.
    """
    store, edb = _resolve_store(store, edb)
    prov = provenance if provenance is not None else active_recorder()
    attr = attribution if attribution is not None else _hot.active_attributor()
    if attr is not None:
        with _hot.engine_frame(attr, "seminaive"):
            result = _evaluate_seminaive(program, edb, reorder, prov, attr)
    else:
        result = _evaluate_seminaive(program, edb, reorder, prov, None)
    if store is not None:
        # Sorted so the WAL records the derived delta deterministically.
        store.insert_all(sorted(result.difference(edb)))
    return result


def _evaluate_seminaive(
    program: DatalogProgram, edb: Database, reorder, prov, attr
) -> Database:
    fact_nodes: Dict[Atom, Optional[int]] = {}
    prov_root = (
        prov.record("config", "datalog fixpoint", disposition="root")
        if prov is not None
        else None
    )

    def note(rule: DatalogRule, theta: Substitution, fact: Atom) -> None:
        premises = [
            apply_atom(lit.atom, theta) for lit in rule.body if lit.positive
        ]
        parent = prov_root
        for premise in premises:
            node = fact_nodes.get(premise)
            if node is not None:
                parent = node
                break
        fact_nodes[fact] = prov.record(
            "fact",
            str(fact),
            parent=parent,
            witness={
                "rule": str(rule.head),
                "premises": [str(p) for p in premises],
            },
        )

    facts = edb
    for stratum in program.strata:
        rules = program.rules_for_stratum(stratum)
        stratum_sigs = set(stratum)

        # Round 0: all-new facts = plain evaluation of each rule once.
        delta: Set[Atom] = set()
        for rule in rules:
            rule_token = (
                attr.push(rule=_hot.rule_label(rule.head), predicate=rule.head.pred)
                if attr is not None
                else None
            )
            try:
                plan = _plan_body(rule.body, facts, reorder)
                for theta in _join(rule.body, facts, plan=plan):
                    fact = apply_atom(rule.head, theta)
                    if fact not in facts:
                        if attr is not None and fact not in delta:
                            attr.charge("steps.expansions", 1)
                        if prov is not None and fact not in delta:
                            note(rule, theta, fact)
                        delta.add(fact)
            finally:
                if rule_token is not None:
                    attr.pop(rule_token)
        if attr is not None and delta:
            attr.charge("db.delta", len(delta))
        facts = facts.insert_all(delta)

        while delta:
            new_delta: Set[Atom] = set()
            for rule in rules:
                rule_token = (
                    attr.push(rule=_hot.rule_label(rule.head), predicate=rule.head.pred)
                    if attr is not None
                    else None
                )
                try:
                    plan = _plan_body(rule.body, facts, reorder)
                    # One seminaive pass per positive recursive literal: that
                    # literal ranges over delta, the others over all facts.
                    recursive_positions = [
                        i
                        for i, lit in enumerate(plan)
                        if lit.positive and lit.atom.signature in stratum_sigs
                    ]
                    if not recursive_positions:
                        continue  # already saturated in round 0
                    for i in recursive_positions:
                        for theta in _join(
                            rule.body, facts, delta_index=(i, delta), plan=plan
                        ):
                            fact = apply_atom(rule.head, theta)
                            if fact not in facts and fact not in new_delta:
                                if attr is not None:
                                    attr.charge("steps.expansions", 1)
                                if prov is not None:
                                    note(rule, theta, fact)
                                new_delta.add(fact)
                finally:
                    if rule_token is not None:
                        attr.pop(rule_token)
            if attr is not None and new_delta:
                attr.charge("db.delta", len(new_delta))
            facts = facts.insert_all(new_delta)
            delta = new_delta
    return facts


def query(
    program: DatalogProgram, edb: Database, goal: Atom
) -> List[Substitution]:
    """Evaluate and return the substitutions matching *goal*."""
    facts = evaluate(program, edb)
    return list(facts.match(goal))


# ---------------------------------------------------------------------------
# Bridge from query-only TD
# ---------------------------------------------------------------------------


def from_td(program: Program) -> DatalogProgram:
    """Translate a query-only TD program into Datalog.

    In the absence of updates, sequential composition is ordinary
    conjunction and concurrent composition adds nothing (tests commute),
    so the paper's query-only fragment coincides with classical Datalog.
    Raises :class:`ValueError` if the program contains updates.
    """
    rules: List[DatalogRule] = []
    for rule in program.rules:
        literals: List[Literal] = []
        for sub in walk_formulas(rule.body):
            if isinstance(sub, (Seq, Conc, Truth)):
                continue
            if isinstance(sub, Isol):
                continue  # isolation of a query is the query
            if isinstance(sub, Test):
                literals.append(Literal(sub.atom, True))
            elif isinstance(sub, Call):
                literals.append(Literal(sub.atom, True))
            elif isinstance(sub, Neg):
                literals.append(Literal(sub.atom, False))
            else:
                raise ValueError(
                    "not a query-only TD program: %s contains %s"
                    % (rule.head, type(sub).__name__)
                )
        rules.append(DatalogRule(rule.head, tuple(literals)))
    return DatalogProgram(rules)
