"""Tests for the workflow simulator (Example 3.2 dynamics)."""

import pytest

from repro import atom
from repro.workflow import (
    Agent,
    ParFlow,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)


@pytest.fixture
def pipeline():
    return WorkflowSpec(
        name="pipe",
        body=SeqFlow(Step("first"), ParFlow(Step("mid1"), Step("mid2")), Step("last")),
        tasks=(
            Task("first", role="tech"),
            Task("mid1", role="tech"),
            Task("mid2", None),
            Task("last", role="senior"),
        ),
    )


@pytest.fixture
def sim(pipeline):
    return WorkflowSimulator(
        [pipeline],
        agents=[Agent("t1", ("tech",)), Agent("t2", ("tech", "senior"))],
    )


class TestRun:
    def test_every_item_completes(self, sim):
        res = sim.run(["w1", "w2", "w3"])
        assert res.completed("last") == ["w1", "w2", "w3"]

    def test_work_items_consumed(self, sim):
        res = sim.run(["w1"])
        assert not res.history.facts("workitem")

    def test_history_accumulates_insert_only(self, sim):
        res = sim.run(["w1", "w2"])
        # 4 tasks x 2 items of done + started facts
        assert len(res.history.facts("done")) == 8
        assert len(res.history.facts("started")) == 8

    def test_agents_all_released(self, sim):
        res = sim.run(["w1", "w2"])
        released = {str(f.args[0]) for f in res.history.facts("available")}
        assert released == {"t1", "t2"}

    def test_events_in_trace(self, sim):
        res = sim.run(["w1"])
        assert any(ev.startswith("ins.done(first, w1") for ev in res.events)
        assert any(ev.startswith("del.workitem(w1") for ev in res.events)

    def test_qualifications_respected(self, sim):
        res = sim.run(["w1", "w2"])
        for fact in res.history.facts("done"):
            task, _item, agent = (str(t) for t in fact.args)
            if task == "last":
                assert agent == "t2"  # only t2 is senior

    def test_no_qualified_agent_fails(self, pipeline):
        lonely = WorkflowSimulator([pipeline], agents=[Agent("t1", ("tech",))])
        with pytest.raises(RuntimeError):
            lonely.run(["w1"])

    def test_empty_batch_trivially_succeeds(self, sim):
        res = sim.run([])
        assert res.completed("last") == []


class TestEnvironment:
    def test_pending_items_fed_by_environment(self, sim):
        res = sim.run([], pending=["p1", "p2"], environment=True)
        assert res.completed("last") == ["p1", "p2"]

    def test_mixed_initial_and_pending(self, sim):
        res = sim.run(["w1"], pending=["p1"])
        assert res.completed("last") == ["p1", "w1"]


class TestSeeds:
    def test_seeded_runs_reproducible(self, sim):
        r1 = sim.run(["w1", "w2"], seed=5)
        r2 = sim.run(["w1", "w2"], seed=5)
        assert r1.execution.events == r2.execution.events

    def test_seeds_change_interleaving_but_not_outcome(self, sim):
        outcomes = set()
        for seed in (1, 2, 3):
            res = sim.run(["w1", "w2"], seed=seed)
            assert res.completed("last") == ["w1", "w2"]
            outcomes.add(res.execution.events)
        # different seeds usually produce different event orders
        assert len(outcomes) >= 2
