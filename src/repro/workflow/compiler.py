"""Compile workflow specifications into Transaction Datalog rulebases.

The compilation scheme is the paper's (Examples 3.1 and 3.3):

* a workflow ``f`` with body B becomes ``wf_f(W) <- [[B]]`` where
  ``[[.]]`` maps sequence to ``*``, parallelism to ``|``, a step to a
  call ``task_t(W)``, and choice/iteration to generated predicates with
  one rule per alternative;
* a task ``t`` requiring role ``r`` becomes::

      task_t(W) <- available(A) * qualified(A, r) * del.available(A) *
                   ins.started(t, W) * ins.done(t, W, A) *
                   ins.available(A).

  The agent pool is the shared resource limiting concurrency; the
  ``started``/``done`` facts are the insert-only experiment history that
  monitoring queries run over.
* iteration becomes sequential tail recursion (``Iterate``), the
  fully-bounded recursion form of Section 5::

      it_k(W) <- until(W).
      it_k(W) <- not until(W) * [[body]] * it_k(W).

With ``abortable=True`` every task also gets a last-resort rule::

    task_t(W) <- ins.started(t, W) * ins.aborted(t, W).

Under the DFS scheduler's program-order preference the rule only fires
when the normal rule cannot (no qualified agent claimable -- e.g. a
fault-injected outage), recording the failed attempt *distinctly* in
the history instead of deadlocking the whole simulation: graceful
degradation, with ``aborted(Task, Item)`` facts for monitoring to
report and for the event log to close unmatched ``started`` records
against.  The default (``False``) compiles exactly as before.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from ..core.formulas import (
    Call,
    Del,
    Formula,
    Ins,
    Neg,
    TRUTH,
    Test,
    conc,
    iso,
    seq,
)
from ..core.program import Program, Rule
from ..core.terms import Atom, Constant, Variable, atom
from .model import (
    Agent,
    Choice,
    Consume,
    Emit,
    Iterate,
    Node,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WaitFor,
    WorkflowSpec,
)

__all__ = ["compile_workflows", "workflow_predicate", "task_predicate", "agent_facts"]

_W = Variable("W")


def workflow_predicate(name: str) -> str:
    """The derived predicate implementing workflow *name*."""
    return "wf_%s" % name


def task_predicate(name: str) -> str:
    """The derived predicate implementing task *name*."""
    return "task_%s" % name


class _Compiler:
    def __init__(self, specs: Sequence[WorkflowSpec], abortable: bool = False):
        self.specs = list(specs)
        self.abortable = abortable
        self.rules: List[Rule] = []
        self._aux = itertools.count(1)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate workflow names: %s" % names)
        self._names = names

    def compile(self) -> List[Rule]:
        tasks: Dict[str, Task] = {}
        for spec in self.specs:
            spec.validate(known_workflows=self._names)
            for task in spec.tasks:
                existing = tasks.get(task.name)
                if existing is not None and existing != task:
                    raise ValueError(
                        "task %r declared twice with different roles" % task.name
                    )
                tasks[task.name] = task
        for task in tasks.values():
            self.rules.append(self._task_rule(task))
            if self.abortable:
                self.rules.append(self._abort_rule(task))
        for spec in self.specs:
            head = Atom(workflow_predicate(spec.name), (_W,))
            self.rules.append(Rule(head, self._node(spec.name, spec.body)))
        return self.rules

    # -- tasks --------------------------------------------------------------------

    def _task_rule(self, task: Task) -> Rule:
        head = Atom(task_predicate(task.name), (_W,))
        t = Constant(task.name)
        if task.role is None:
            body = seq(
                Ins(Atom("started", (t, _W))),
                Ins(Atom("done", (t, _W, Constant("auto")))),
            )
            return Rule(head, body)
        a = Variable("A")
        body = seq(
            Test(Atom("available", (a,))),
            Test(Atom("qualified", (a, Constant(task.role)))),
            Del(Atom("available", (a,))),
            Ins(Atom("started", (t, _W))),
            Ins(Atom("done", (t, _W, a))),
            Ins(Atom("available", (a,))),
        )
        return Rule(head, body)

    def _abort_rule(self, task: Task) -> Rule:
        """Last-resort alternative: record the attempt as aborted.

        Listed *after* the normal rule, so schedulers that honor program
        order only reach it when the task cannot execute; the
        ``started``/``aborted`` pair keeps the history honest about the
        failed attempt (no fabricated ``done``, no claimed agent).
        """
        head = Atom(task_predicate(task.name), (_W,))
        t = Constant(task.name)
        body = seq(
            Ins(Atom("started", (t, _W))),
            Ins(Atom("aborted", (t, _W))),
        )
        return Rule(head, body)

    # -- control flow ---------------------------------------------------------------

    def _node(self, wf: str, node: Node) -> Formula:
        if isinstance(node, Step):
            return Call(Atom(task_predicate(node.task), (_W,)))
        if isinstance(node, SeqFlow):
            return seq(*(self._node(wf, c) for c in node.children))
        if isinstance(node, ParFlow):
            return conc(*(self._node(wf, c) for c in node.children))
        if isinstance(node, Choice):
            pred = "%s_choice%d" % (workflow_predicate(wf), next(self._aux))
            head = Atom(pred, (_W,))
            for child in node.children:
                self.rules.append(Rule(head, self._node(wf, child)))
            return Call(head)
        if isinstance(node, Iterate):
            pred = "%s_iter%d" % (workflow_predicate(wf), next(self._aux))
            head = Atom(pred, (_W,))
            until = Atom(node.until, (_W,))
            self.rules.append(Rule(head, Test(until)))
            self.rules.append(
                Rule(head, seq(Neg(until), self._node(wf, node.body), Call(head)))
            )
            return Call(head)
        if isinstance(node, NonVital):
            # advanced-transaction feature: attempt-else-skip.  Two rules
            # for a generated predicate; the empty alternative makes the
            # child's failure survivable by the parent.
            pred = "%s_nonvital%d" % (workflow_predicate(wf), next(self._aux))
            head = Atom(pred, (_W,))
            self.rules.append(Rule(head, self._node(wf, node.body)))
            self.rules.append(Rule(head, TRUTH))
            return Call(head)
        if isinstance(node, Subflow):
            return Call(Atom(workflow_predicate(node.workflow), (_W,)))
        if isinstance(node, WaitFor):
            return Test(Atom(node.pred, (_W,)))
        if isinstance(node, Emit):
            return Ins(Atom(node.pred, (_W,)))
        if isinstance(node, Consume):
            # iso makes the take atomic: with a bare test-then-delete two
            # consumers could both pass the test before either deletes
            # (deletion of an absent fact is a no-op), defeating
            # at-most-once hand-off.
            target = Atom(node.pred, (_W,))
            return iso(seq(Test(target), Del(target)))
        raise TypeError("unknown workflow node %r" % (node,))


def compile_workflows(
    specs: Sequence[WorkflowSpec], abortable: bool = False
) -> Program:
    """Compile one or more (possibly mutually referring) workflows.

    ``abortable`` adds the per-task graceful-degradation rule (see
    module docstring); the default compiles exactly the paper's scheme.
    """
    rules = _Compiler(specs, abortable=abortable).compile()
    return Program(rules)


def agent_facts(agents: Sequence[Agent]) -> List[Atom]:
    """The agent pool as database facts (Example 3.3's resource model)."""
    facts: List[Atom] = []
    for agent in agents:
        facts.append(atom("available", agent.name))
        for role in agent.qualifications:
            facts.append(atom("qualified", agent.name, role))
    return facts
