"""Experiment E3: workflow simulation throughput (Example 3.2 at scale).

Paper artifact: the dynamic instance-creation scheme of Example 3.2 --
one concurrent workflow instance per work item -- driving the genome-lab
production line.  The paper's motivation is throughput ("database
performance became a bottleneck in workflow throughput"); here we
measure the simulator's cost per sample as batches grow, with and
without the environment process feeding items at runtime.
"""

import pytest

from repro.complexity import estimate_growth, measure, print_series
from repro.lims import build_lab_simulator, sample_batch


def test_batch_throughput_scales(benchmark):
    rows = []
    sizes = []
    times = []
    for n in (5, 10, 20, 40):
        sim = build_lab_simulator()
        res, seconds = measure(lambda: sim.run(sample_batch(n)))
        assert len(res.completed("analyze")) == n
        rows.append([n, seconds, seconds / n])
        sizes.append(n)
        times.append(max(seconds, 1e-6))
    print_series(
        "E3: lab pipeline throughput (batch mode)",
        ["samples", "seconds", "sec/sample"],
        rows,
    )
    assert estimate_growth(sizes, times) == "polynomial"

    sim = build_lab_simulator()
    benchmark.pedantic(lambda: sim.run(sample_batch(10)), rounds=3, iterations=1)


def test_environment_mode_throughput(benchmark):
    """Example 3.2's closing remark: the environment is just another
    process, feeding items while instances already run."""
    rows = []
    for n in (5, 10, 20):
        sim = build_lab_simulator()
        res, seconds = measure(
            lambda: sim.run([], pending=sample_batch(n), environment=True)
        )
        assert len(res.completed("analyze")) == n
        rows.append([n, seconds])
    print_series(
        "E3: lab pipeline throughput (environment feeding)",
        ["samples", "seconds"],
        rows,
    )
    sim = build_lab_simulator()
    benchmark.pedantic(
        lambda: sim.run([], pending=sample_batch(10), environment=True),
        rounds=3,
        iterations=1,
    )


def test_production_network_throughput(benchmark):
    """The full two-line network (mapping feeding sequencing per sample,
    Example 3.4 at production scale): cost per sample through both
    lines."""
    from repro.lims import build_network_simulator

    rows = []
    for n in (2, 5, 10):
        sim = build_network_simulator()
        res, seconds = measure(lambda: sim.run(sample_batch(n)))
        assert len(res.completed("seq_qc")) == n
        rows.append([n, seconds, seconds / n])
    print_series(
        "E3: mapping+sequencing network throughput",
        ["samples", "seconds", "sec/sample"],
        rows,
    )
    sim = build_network_simulator()
    benchmark.pedantic(lambda: sim.run(sample_batch(5)), rounds=3, iterations=1)


def test_iterated_protocol_throughput(benchmark):
    """The tail-recursive 'repeat until conclusive' protocol shape."""
    rows = []
    for n in (5, 10, 20):
        sim = build_lab_simulator(iterate=True)
        res, seconds = measure(lambda: sim.run(sample_batch(n)))
        assert len(res.completed("analyze")) == n
        rows.append([n, seconds])
    print_series(
        "E3: iterated gel protocol throughput",
        ["samples", "seconds"],
        rows,
    )
    sim = build_lab_simulator(iterate=True)
    benchmark.pedantic(lambda: sim.run(sample_batch(10)), rounds=3, iterations=1)
