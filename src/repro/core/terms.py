"""First-order terms and atoms for Transaction Datalog and classical Datalog.

Transaction Datalog (TD) is a function-free logic language: a *term* is
either a constant or a variable, and an *atom* is a predicate symbol
applied to a tuple of terms.  Everything here is immutable and hashable so
that ground atoms can live inside frozenset-based database states and so
that whole process configurations can be memoized.

The module deliberately keeps the data model tiny and explicit:

* :class:`Constant` -- an uninterpreted constant (wraps a Python value).
* :class:`Variable` -- a logical variable, identified by name.
* :class:`Atom` -- ``pred(t1, ..., tn)``.

Constants compare by value, variables by name.  ``Atom`` exposes the
predicate *signature* ``name/arity`` used throughout schema handling.

Hash-consing
------------

Constants and atoms are *interned*: constructing ``Constant("a")`` (or an
``Atom`` with the same predicate and arguments) twice returns the same
object.  The engines hash these objects constantly -- every database
state is a frozenset of atoms, every memo table keys on them -- so each
instance precomputes its hash once, equality gets an identity fast path,
and ``Atom`` caches its groundness.  The intern tables hold their entries
weakly, so transient pattern atoms from a search are reclaimed with the
search.  Interning is a cache, not an identity guarantee: equality is
still by value, and code must never rely on ``is`` for term comparison.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Iterator, Tuple, Union

__all__ = [
    "Constant",
    "Variable",
    "Term",
    "Atom",
    "Signature",
    "atom",
    "const",
    "var",
    "is_ground",
    "term_from_python",
]


# Python payload types allowed inside a Constant.  Strings and integers
# cover everything in the paper's examples (work-item ids, agent names,
# task names, account balances).
ConstValue = Union[str, int]


class Constant:
    """An uninterpreted constant symbol.

    TD treats constants as uninterpreted (genericity); arithmetic shows up
    only through built-in comparison atoms handled by the engines.

    Ordering is total but purely syntactic (integers sort apart from
    strings) -- it exists so databases iterate deterministically, not to
    compare values; use builtins for value comparisons.
    """

    __slots__ = ("value", "_hash", "__weakref__")

    _interned: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, value: ConstValue):
        # Key by (type, value) so Constant(1) and Constant("1") intern
        # apart even though 1 == "1" is False anyway; bool is an int
        # subclass and may share a slot with its int twin -- harmless,
        # since equality and hashing stay value-based.
        key = (value.__class__, value)
        cached = cls._interned.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((cls, value)))
        cls._interned[key] = self
        return self

    def __setattr__(self, name, _value):
        raise AttributeError("Constant is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        if isinstance(other, Constant):
            return self.value == other.value
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Constant, (self.value,))

    def _sort_key(self):
        return ("c", type(self.value).__name__, str(self.value))

    def __lt__(self, other):
        if isinstance(other, (Constant, Variable)):
            return self._sort_key() < other._sort_key()
        return NotImplemented

    def __repr__(self) -> str:
        return "Constant(value=%r)" % (self.value,)

    def __str__(self) -> str:
        return str(self.value)


class Variable:
    """A logical variable.  Names conventionally start with an uppercase
    letter or underscore (the parser enforces this for concrete syntax).

    Variables are *not* interned -- call unfolding freshens them with a
    global counter, so most are short-lived -- but each instance caches
    its hash, which substitution dictionaries probe constantly.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((Variable, name)))

    def __setattr__(self, name, _value):
        raise AttributeError("Variable is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        if isinstance(other, Variable):
            return self.name == other.name
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Variable, (self.name,))

    def _sort_key(self):
        return ("v", "", self.name)

    def __lt__(self, other):
        if isinstance(other, (Constant, Variable)):
            return self._sort_key() < other._sort_key()
        return NotImplemented

    def __repr__(self) -> str:
        return "Variable(name=%r)" % (self.name,)

    def __str__(self) -> str:
        return self.name


Term = Union[Constant, Variable]

#: A predicate signature: (name, arity).
Signature = Tuple[str, int]


class Atom:
    """A (possibly non-ground) atom ``pred(args)``.

    Atoms are used in three roles in TD, distinguished by context rather
    than by type: facts in a database state (ground), tuple tests /
    elementary updates on base predicates, and calls to derived
    predicates defined by rules.
    """

    __slots__ = ("pred", "args", "_hash", "_ground", "__weakref__")

    _interned: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, pred: str, args: Tuple[Term, ...] = ()):
        key = (pred, args)
        cached = cls._interned.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((cls, pred, args)))
        object.__setattr__(
            self, "_ground", all(isinstance(t, Constant) for t in args)
        )
        cls._interned[key] = self
        return self

    def __setattr__(self, name, _value):
        raise AttributeError("Atom is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        if isinstance(other, Atom):
            return self.pred == other.pred and self.args == other.args
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Atom, (self.pred, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Signature:
        return (self.pred, len(self.args))

    def is_ground(self) -> bool:
        return self._ground

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of this atom, left to right, with repeats."""
        for t in self.args:
            if isinstance(t, Variable):
                yield t

    def _sort_key(self):
        return (self.pred, tuple(t._sort_key() for t in self.args))

    def __lt__(self, other):
        if isinstance(other, Atom):
            return self._sort_key() < other._sort_key()
        return NotImplemented

    def __repr__(self) -> str:
        return "Atom(pred=%r, args=%r)" % (self.pred, self.args)

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        return "%s(%s)" % (self.pred, ", ".join(str(t) for t in self.args))


def term_from_python(value: Union[Term, ConstValue]) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Existing terms pass through; strings and ints become constants.  This
    is the convenience layer used by the fluent API and the test suite.
    """
    if isinstance(value, (Constant, Variable)):
        return value
    if isinstance(value, (str, int)):
        return Constant(value)
    raise TypeError("cannot convert %r to a term" % (value,))


def atom(pred: str, *args: Union[Term, ConstValue]) -> Atom:
    """Convenience constructor: ``atom('p', 'a', Variable('X'))``."""
    return Atom(pred, tuple(term_from_python(a) for a in args))


def const(value: ConstValue) -> Constant:
    """Convenience constructor for a constant."""
    return Constant(value)


def var(name: str) -> Variable:
    """Convenience constructor for a variable."""
    return Variable(name)


def is_ground(atoms: Iterable[Atom]) -> bool:
    """True if every atom in *atoms* is ground."""
    return all(a.is_ground() for a in atoms)
