"""Answer tabling for the concurrent interpreter (repro.core.tabling).

Three layers of coverage:

1. The table machinery itself: canonical call keys, answer
   normalization, the subsumption lattice, and retirement of specific
   answers by more general ones.
2. The solution-level differential: tabling is pure work-avoidance, so
   with it on and off the interpreter must produce identical answer
   sets and final databases over the profile-suite configs and the six
   chaos workloads (the ``tabling=False`` path is the naive oracle,
   mirroring the reducer differential in ``test_transitions_diff.py``).
3. The interactions the design doc calls out: bypass under fault
   injection (chaos reports stay byte-identical), checkpoint/resume
   with a warm table, table-hit provenance, and the headline >= 5x
   reduction on the recursive profile workload.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    parse_database,
    parse_goal,
    parse_program,
)
from repro.core.errors import ReproError, SearchBudgetExceeded
from repro.core.tabling import (
    AnswerTable,
    TableEntry,
    _normalize_values,
    canonical_call,
    subsumes,
    tabling_disabled,
    tabling_forced_off,
)
from repro.core.terms import Constant, Variable, atom
from repro.obs import Instrumentation, instrumented
from repro.obs.analyze import (
    _BANK_TD,
    _FANOUT_TD,
    _GENOME_TD,
    _PATH_TD,
    _RECURSIVE_TD,
    _recursive_facts,
)


def _c(name):
    return Constant(name)


def _v(name):
    return Variable(name)


class TestCanonicalKeys:
    def test_constants_stay_variables_rename(self):
        canon, originals = canonical_call(atom("p", _c("a"), _v("X"), _v("Y")))
        assert str(canon) == "p(a, V0, V1)"
        assert originals == [_v("X"), _v("Y")]

    def test_repeated_variables_share_a_name(self):
        canon, originals = canonical_call(atom("p", _v("X"), _v("X")))
        assert str(canon) == "p(V0, V0)"
        assert originals == [_v("X")]

    def test_alpha_equivalent_calls_share_a_key(self):
        a, _ = canonical_call(atom("p", _v("X"), _v("Y")))
        b, _ = canonical_call(atom("p", _v("U"), _v("W")))
        assert a == b


class TestSubsumption:
    def test_normalization_renames_unbound_positions(self):
        out = _normalize_values((_v("G12"), _c("a"), _v("G12"), _v("H3")))
        assert out == (_v("A0"), _c("a"), _v("A0"), _v("A1"))

    def test_general_covers_specific(self):
        general = _normalize_values((_v("X"), _c("a")))
        specific = _normalize_values((_c("b"), _c("a")))
        assert subsumes(general, specific)
        assert not subsumes(specific, general)

    def test_equal_tuples_subsume(self):
        vals = _normalize_values((_c("a"), _v("X")))
        assert subsumes(vals, vals)

    def test_entry_dedups_subsumed_answer(self):
        entry = TableEntry()
        db = Database()
        added, retired = entry.add((_v("X"),), db, ())
        assert added is not None and retired == 0
        # A more specific answer with the same final database is
        # already covered: not added, nothing retired.
        added, retired = entry.add((_c("a"),), db, ())
        assert added is None and retired == 0
        assert len(entry.order) == 1

    def test_general_answer_retires_specific_pending_ones(self):
        entry = TableEntry()
        db = Database()
        assert entry.add((_c("a"),), db, ())[0] is not None
        assert entry.add((_c("b"),), db, ())[0] is not None
        added, retired = entry.add((_v("X"),), db, ())
        assert added is not None and retired == 2
        assert len(entry.order) == 1
        assert isinstance(entry.order[0][0][0], Variable)

    def test_subsumption_requires_matching_final_db(self):
        # Answers are (bindings, final database) pairs: a general
        # binding under a different final state retires nothing.
        entry = TableEntry()
        db1 = parse_database("m(1).")
        db2 = parse_database("m(2).")
        assert entry.add((_c("a"),), db1, ())[0] is not None
        added, retired = entry.add((_v("X"),), db2, ())
        assert added is not None and retired == 0
        assert len(entry.order) == 2

    def test_subsumed_counter_visible_end_to_end(self):
        # One rule binds X, the other leaves it unbound with the same
        # final database: the general answer must retire the specific
        # one and bump table.subsumed.
        program = parse_program(
            """
            pick(X) <- opt(X).
            pick(X) <- free.
            go <- pick(Y) * ins.done.
            """
        )
        db = parse_database("opt(a). free.")
        inst = Instrumentation.create()
        with instrumented(inst):
            sols = list(Interpreter(program).solve(parse_goal("go"), db))
        naive = list(
            Interpreter(program, tabling=False).solve(parse_goal("go"), db)
        )
        assert inst.metrics.counter("table.subsumed") >= 1
        # Work-level collapse, solution-level equivalence: the served
        # general answer covers the specific one.
        assert {s.database for s in sols} == {s.database for s in naive}


class TestDeltaKeys:
    def test_same_database_costs_nothing(self):
        table = AnswerTable()
        db = parse_database("a(1). b(2).")
        canon, _ = canonical_call(atom("p", _v("X")))
        _, cost0 = table.entry(canon, db)
        assert cost0 == 0  # first call snapshots the base
        _, cost1 = table.entry(canon, db)
        assert cost1 == 0  # identical database: empty delta

    def test_delta_grows_with_divergence(self):
        table = AnswerTable()
        base = parse_database("a(1).")
        canon, _ = canonical_call(atom("p", _v("X")))
        table.entry(canon, base)
        _, cost = table.entry(canon, parse_database("a(1). b(2). c(3)."))
        assert cost > 0

    def test_distinct_databases_get_distinct_entries(self):
        table = AnswerTable()
        canon, _ = canonical_call(atom("p", _v("X")))
        e1, _ = table.entry(canon, parse_database("a(1)."))
        e2, _ = table.entry(canon, parse_database("a(2)."))
        e1b, _ = table.entry(canon, parse_database("a(1)."))
        assert e1 is not e2
        assert e1 is e1b

    def test_snapshot_restore_round_trip(self):
        table = AnswerTable()
        db = parse_database("a(1).")
        canon, _ = canonical_call(atom("p", _v("X")))
        entry, _ = table.entry(canon, db)
        entry.add((_c("a"),), db, ())
        entry.complete = True
        warm = AnswerTable.restore(table.snapshot())
        served = warm.peek(canon, db)
        assert served is not None and served.complete
        assert [a[:2] for a in served.order] == [a[:2] for a in entry.order]


# -- solution-level differential ----------------------------------------------


def _solution_set(interp, goal, db):
    return {
        (
            tuple(sorted((str(v), str(t)) for v, t in sol.bindings.items())),
            sol.database,
        )
        for sol in interp.solve(goal, db)
    }


def assert_tabling_invisible(program, goal, db, max_configs=400_000):
    """Tabling must change only the work, never the result: same answer
    sets and final databases with ``tabling`` on and off."""
    goal = program.resolve_goal(goal)
    tabled = _solution_set(
        Interpreter(program, max_configs=max_configs), goal, db
    )
    naive = _solution_set(
        Interpreter(program, max_configs=max_configs, tabling=False), goal, db
    )
    assert tabled == naive
    assert tabled  # every workload here has at least one solution


#: One-sample genome database (as in the reducer differential): the
#: naive enumeration of the two-sample profile db is tens of seconds.
_GENOME_ONE = (
    "workitem(dna01). available(ana). available(raj). "
    "qualified(ana, tech). qualified(raj, tech). qualified(raj, reader)."
)


class TestTablingInvisibleOnProfileSuite:
    """Tabling on/off: identical answer sets and final databases on the
    profile-suite programs (the configs the counter gate pins)."""

    def test_bank_transfer(self):
        assert_tabling_invisible(
            parse_program(_BANK_TD),
            parse_goal("transfer(a, b, 30)"),
            parse_database("balance(a, 100). balance(b, 10)."),
        )

    def test_path_tabled(self):
        assert_tabling_invisible(
            parse_program(_PATH_TD),
            parse_goal("path(a, X)"),
            parse_database("e(a, b). e(b, c). e(c, d). e(d, e). e(e, f)."),
        )

    def test_genome_simulate(self):
        assert_tabling_invisible(
            parse_program(_GENOME_TD), parse_goal("simulate"),
            parse_database(_GENOME_ONE),
        )

    def test_genome_statespace_db(self):
        assert_tabling_invisible(
            parse_program(_GENOME_TD), parse_goal("simulate"),
            parse_database(
                "workitem(dna01). available(raj). "
                "qualified(raj, tech). qualified(raj, reader)."
            ),
        )

    def test_conc_fanout(self):
        assert_tabling_invisible(
            parse_program(_FANOUT_TD), parse_goal("spawn"),
            parse_database("item(j1). item(j2). item(j3). item(j4). item(j5)."),
        )

    def test_recursive_workflow(self):
        assert_tabling_invisible(
            parse_program(_RECURSIVE_TD), parse_goal("audit"),
            parse_database(_recursive_facts(5)),
        )

    def test_lab_workflow(self):
        from repro.core.formulas import Call
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator()
        assert_tabling_invisible(
            sim.program,
            Call(atom("simulate")),
            sim.initial_database(sample_batch(1)),
        )


class TestTablingInvisibleOnChaosWorkloads:
    """The six chaos workloads' programs, unfaulted: tabling must be
    invisible on the very shapes the chaos gate perturbs.  (Under fault
    injection the interpreter bypasses the table entirely -- see
    TestTablingBypassedUnderFaults.)"""

    def test_bank_transfer(self):
        from repro.faults.chaos import _BANK_DB, _BANK_TD as BANK

        assert_tabling_invisible(
            parse_program(BANK),
            parse_goal("transfer(a, b, 30)"),
            parse_database(_BANK_DB),
        )

    def test_path_query(self):
        from repro.faults.chaos import _PATH_DB, _PATH_TD as PATH

        assert_tabling_invisible(
            parse_program(PATH),
            parse_goal("path(a, Y) * ins.reached(Y)"),
            parse_database(_PATH_DB),
        )

    def test_genome_simulate(self):
        from repro.faults.chaos import _GENOME_TD as GENOME

        assert_tabling_invisible(
            parse_program(GENOME), parse_goal("simulate"),
            parse_database(_GENOME_ONE),
        )

    def test_genome_iso(self):
        from repro.faults.chaos import _GENOME_ISO_TD

        assert_tabling_invisible(
            parse_program(_GENOME_ISO_TD), parse_goal("simulate"),
            parse_database(_GENOME_ONE),
        )

    def test_lab_workflow(self):
        from repro.core.formulas import Call
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator(iterate=False)
        assert_tabling_invisible(
            sim.program,
            Call(atom("simulate")),
            sim.initial_database(sample_batch(1)),
        )

    def test_lab_iterate(self):
        from repro.core.formulas import Call
        from repro.lims import build_lab_simulator, sample_batch

        sim = build_lab_simulator(iterate=True)
        assert_tabling_invisible(
            sim.program,
            Call(atom("simulate")),
            sim.initial_database(sample_batch(1)),
        )


# -- the headline reduction ---------------------------------------------------


class TestRecursiveSpeedup:
    def _measure(self, **kw):
        inst = Instrumentation.create()
        with instrumented(inst):
            interp = Interpreter(
                parse_program(_RECURSIVE_TD), max_configs=2_000_000, **kw
            )
            sols = list(
                interp.solve(parse_goal("audit"), parse_database(_recursive_facts()))
            )
        return sols, inst.metrics

    def test_recursive_workflow_reduced_at_least_5x(self):
        # The acceptance benchmark: on the recursive profile workload
        # the table must cut expansions and unification fan-out by
        # >= 5x (measured ~14x / ~12x at depth 7; asserting the floor).
        sols_on, on = self._measure()
        sols_off, off = self._measure(tabling=False)
        assert {s.database for s in sols_on} == {s.database for s in sols_off}
        assert on.counter("search.solutions") == off.counter("search.solutions")
        assert off.counter("search.configs_expanded") >= 5 * on.counter(
            "search.configs_expanded"
        )
        assert off.counter("unify.attempts") >= 5 * on.counter("unify.attempts")
        assert on.counter("table.hits") > 0
        assert on.counter("table.delta_bytes") >= 0
        assert off.counter("table.hits") == 0
        assert off.counter("table.misses") == 0

    def test_table_hits_on_multiple_configs(self):
        # table.hits > 0 on at least two profile-suite workloads: the
        # recursive diamond and the concurrent fan-out (whose drained
        # ``spawn`` tail re-reaches tabled states).
        def hits(text, goal, db):
            inst = Instrumentation.create()
            with instrumented(inst):
                list(
                    Interpreter(parse_program(text)).solve(
                        parse_goal(goal), parse_database(db)
                    )
                )
            return inst.metrics.counter("table.hits")

        assert hits(_RECURSIVE_TD, "audit", _recursive_facts(4)) > 0
        assert (
            hits(
                _FANOUT_TD,
                "spawn",
                "item(j1). item(j2). item(j3). item(j4). item(j5).",
            )
            > 0
        )


# -- composition with fault injection -----------------------------------------


class TestTablingBypassedUnderFaults:
    def test_no_table_counters_under_fault_injection(self):
        # The table object exists (faults can go dormant mid-run) but
        # every use site checks ``self.faults is None``: a faulted run
        # must emit no table.* counters at all.
        from repro.faults import FaultInjector, generate_plan

        program = parse_program(_BANK_TD)
        plan = generate_plan(seed=3, predicates=("balance",), agents=())
        inst = Instrumentation.create()
        with instrumented(inst):
            Interpreter(program, faults=FaultInjector(plan)).simulate(
                parse_goal("transfer(a, b, 30)"),
                parse_database("balance(a, 100). balance(b, 10)."),
            )
        assert inst.metrics.counter("table.hits") == 0
        assert inst.metrics.counter("table.misses") == 0
        assert inst.metrics.counter("table.delta_bytes") == 0

    def test_table_never_consulted_under_fault_injection(self, monkeypatch):
        # Fault plans target individual interleavings, so the chaos
        # harness must see the naive small-step expansion: tdlog chaos
        # output stays byte-identical whatever the table does.  If the
        # interpreter consulted the table here, this run would raise.
        from repro.core import tabling as tabling_module
        from repro.faults import FaultInjector, generate_plan

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("answer table consulted under fault injection")

        monkeypatch.setattr(tabling_module.AnswerTable, "entry", boom)
        monkeypatch.setattr(tabling_module.AnswerTable, "iso_entry", boom)
        program = parse_program(_BANK_TD)
        plan = generate_plan(seed=3, predicates=("balance",), agents=())
        interp = Interpreter(program, faults=FaultInjector(plan))
        interp.simulate(
            parse_goal("transfer(a, b, 30)"),
            parse_database("balance(a, 100). balance(b, 10)."),
        )

    def test_chaos_report_identical_with_tabling_force_disabled(self):
        # The pinned gate: because faulted runs bypass the table, the
        # chaos report is byte-identical whether tabling exists at all.
        from repro.faults.chaos import format_report, run_chaos, workload_by_name

        workloads = [workload_by_name("bank_transfer"), workload_by_name("genome_iso")]
        default = format_report(run_chaos(workloads, plans=4, base_seed=0))
        with tabling_disabled():
            assert tabling_forced_off()
            forced = format_report(run_chaos(workloads, plans=4, base_seed=0))
        assert not tabling_forced_off()
        assert default == forced

    def test_force_disable_overrides_constructor(self):
        program = parse_program("p <- ins.a.")
        with tabling_disabled():
            assert Interpreter(program)._table is None
        assert Interpreter(program)._table is not None


# -- checkpoint/resume with a warm table --------------------------------------

#: The chain walk from test_checkpoint.py: many interruption points,
#: recursive calls the table can serve warm across resumptions.
_CHAIN = """
walk(X, Y) <- edge(X, Y) * ins.visited(Y).
walk(X, Y) <- edge(X, Z) * ins.visited(Z) * walk(Z, Y).
"""

_CHAIN_DB = (
    "edge(a, b). edge(b, c). edge(c, d). edge(d, e). edge(e, f). "
    "edge(f, g). edge(g, h). edge(h, i). edge(i, j)."
)


class TestCheckpointResume:
    def _full(self):
        interp = Interpreter(parse_program(_CHAIN), max_configs=1_000_000)
        return _solution_set(
            interp, parse_goal("walk(a, Y)"), parse_database(_CHAIN_DB)
        )

    def test_checkpoint_carries_the_warm_table(self):
        interp = Interpreter(parse_program(_CHAIN), max_configs=30)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(interp.solve(parse_goal("walk(a, Y)"), parse_database(_CHAIN_DB)))
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.table is not None

    def test_round_trip_resumes_to_the_full_answer_set(self):
        db = parse_database(_CHAIN_DB)
        got = set()
        interruptions = 0
        source = Interpreter(parse_program(_CHAIN), max_configs=40).solve(
            parse_goal("walk(a, Y)"), db
        )
        while True:
            try:
                for sol in source:
                    got.add(
                        (
                            tuple(
                                sorted(
                                    (str(v), str(t))
                                    for v, t in sol.bindings.items()
                                )
                            ),
                            sol.database,
                        )
                    )
                break
            except ReproError as exc:
                interruptions += 1
                assert exc.checkpoint is not None
                source = Interpreter(
                    parse_program(_CHAIN), max_configs=1_000_000
                ).resume(exc.checkpoint)
        assert interruptions >= 1
        assert got == self._full()

    def test_resuming_the_same_checkpoint_twice_is_idempotent(self):
        db = parse_database(_CHAIN_DB)
        with pytest.raises(SearchBudgetExceeded) as info:
            list(
                Interpreter(parse_program(_CHAIN), max_configs=25).solve(
                    parse_goal("walk(a, Y)"), db
                )
            )
        checkpoint = info.value.checkpoint

        def drain():
            return {
                (
                    tuple(
                        sorted(
                            (str(v), str(t)) for v, t in sol.bindings.items()
                        )
                    ),
                    sol.database,
                )
                for sol in Interpreter(
                    parse_program(_CHAIN), max_configs=1_000_000
                ).resume(checkpoint)
            }

        assert drain() == drain()

    def test_naive_marks_guarantee_progress_under_tiny_budgets(self):
        # The livelock regression: with tabling, a config interrupted
        # mid-big-step must be re-expanded naively on resume, or a
        # too-small resume budget restarts the same generation from
        # scratch forever.  Thirteen-step hops must still terminate.
        db = parse_database(_CHAIN_DB)
        got = []
        hops = 0
        source = Interpreter(parse_program(_CHAIN), max_configs=13).solve(
            parse_goal("walk(a, Y)"), db
        )
        while hops < 500:
            try:
                got.extend(source)
                break
            except ReproError as exc:
                hops += 1
                source = Interpreter(
                    parse_program(_CHAIN), max_configs=13
                ).resume(exc.checkpoint)
        else:
            pytest.fail("resume loop made no progress (tabling livelock)")
        assert len(got) == len(self._full())


# -- provenance ---------------------------------------------------------------


class TestTableHitProvenance:
    def test_table_hit_nodes_recorded(self):
        # The repeated head call must appear at the *top level* of the
        # goal: hits inside nested generation searches run without a
        # recorder (their work is summarized by the answer they yield).
        from repro.obs import ProvenanceRecorder
        from repro.obs.provenance import DISPOSITIONS

        rec = ProvenanceRecorder()
        interp = Interpreter(
            parse_program("probe <- item(X)."), provenance=rec
        )
        sols = list(
            interp.solve(
                parse_goal("probe * probe * ins.done"),
                parse_database("item(a). item(b)."),
            )
        )
        assert sols
        hits = [n for n in rec.nodes if n.disposition == "table-hit"]
        assert hits, "the second probe call must be served from the table"
        assert "table-hit" in DISPOSITIONS
        for node in hits:
            assert node.witness and "key" in node.witness
            assert node.witness["answers"] >= 1
