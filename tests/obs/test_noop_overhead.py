"""Instrumentation off must mean *no behavior change* anywhere.

The smoke test here is the contract the hot paths rely on: identical
solve/simulate results with instrumentation on and off, and no metrics
leakage when nothing is active.
"""

from repro import Database, Interpreter, parse_goal, parse_program, select_engine
from repro.obs import Instrumentation, NOOP, active, instrumented
from repro.obs.context import _ACTIVE  # noqa: F401 - imported for the guard test


def normalize(solutions):
    return sorted(
        (tuple(sorted((str(v), str(t)) for v, t in s.bindings.items())), s.database)
        for s in solutions
    )


class TestNoopPath:
    def test_default_active_is_disabled_noop(self):
        inst = active()
        assert inst is NOOP
        assert not inst.enabled

    def test_context_nests_and_restores(self):
        outer = Instrumentation.create()
        inner = Instrumentation.create()
        with instrumented(outer):
            assert active() is outer
            with instrumented(inner):
                assert active() is inner
            assert active() is outer
        assert active() is NOOP

    def test_noop_records_nothing(self, bank_program, bank_db):
        engine = select_engine(bank_program, "transfer(a, b, 30)")
        list(engine.solve("transfer(a, b, 30)", bank_db))
        assert NOOP.metrics.counters == {}
        assert NOOP.tracer.spans == []


class TestOnOffEquivalence:
    def test_solve_results_identical(self, bank_program, bank_db):
        goal = "transfer(a, b, 30)"
        plain = normalize(select_engine(bank_program, goal).solve(goal, bank_db))
        with instrumented(Instrumentation.create()) as inst:
            traced = normalize(select_engine(bank_program, goal).solve(goal, bank_db))
        assert plain == traced
        assert inst.metrics.counters  # instrumentation did observe the run

    def test_full_td_solve_results_identical(self, simulate_program):
        from repro import parse_database

        db = parse_database("workitem(w1). workitem(w2).")
        interp = Interpreter(simulate_program)
        plain = normalize(interp.solve(parse_goal("simulate"), db))
        with instrumented():
            traced = normalize(interp.solve(parse_goal("simulate"), db))
        assert plain == traced

    def test_simulate_trace_identical(self, bank_db):
        # Parse the program fresh per run: the rule-freshening counter
        # advances across simulations and leaks `#n` suffixes into trace
        # strings, which would mask (or fake) an instrumentation diff.
        bank_text = """
            transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
            withdraw(Acct, Amt) <-
                balance(Acct, Bal) * Bal >= Amt *
                del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
            deposit(Acct, Amt) <-
                balance(Acct, Bal) *
                del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
        goal = parse_goal("transfer(a, b, 30)")
        plain = Interpreter(parse_program(bank_text)).simulate(goal, bank_db, seed=11)
        with instrumented():
            traced = Interpreter(parse_program(bank_text)).simulate(
                goal, bank_db, seed=11
            )
        assert plain is not None and traced is not None
        assert plain.events == traced.events
        assert plain.database == traced.database

    def test_failing_goal_identical(self, bank_program, bank_db):
        goal = "transfer(b, a, 999)"  # insufficient funds: cannot commit
        engine = select_engine(bank_program, goal)
        assert list(engine.solve(goal, bank_db)) == []
        with instrumented():
            engine2 = select_engine(bank_program, goal)
            assert list(engine2.solve(goal, bank_db)) == []
