"""Span-correlated analytics over workflow event logs.

The paper motivates putting workflow state in the database with
*monitoring* -- "tracking and querying the status of workflow
activities" -- and the event log (:mod:`repro.workflow.eventlog`) is the
process-mining view of one run.  This module turns that log into the
numbers a workflow operator actually asks for:

* **per-task latency** -- join ``task_started``/``task_done`` pairs into
  :class:`TaskExecution` intervals, aggregate per task;
* **agent utilization** -- busy time per agent against the run's span;
* **queue wait vs. service time** -- per item, how long between dispatch
  and first task vs. time inside tasks;
* **critical path** -- the most expensive task chain through the
  workflow's control-flow graph, weighted by observed latencies;
* **wall-clock attribution** -- the event log carries the engine-trace
  ``span_id`` of the run (see :mod:`repro.obs`), so logical ticks can be
  scaled against the enclosing span's measured duration, giving each
  task its share of real seconds.

Time unit: the event log is *logical* -- one tick per recorded event
(``seq``).  The simulator interleaves concurrent instances step by
step, so tick intervals are a faithful measure of relative cost and are
deterministic, which the tests rely on.  Wall-clock numbers only enter
through the span join: instrumented runs stamp one measured
``workflow.task`` span per completed execution (exact, labelled
``wall``); older traces without them fall back to dividing the
enclosing span proportionally to logical latency (labelled
``est. wall``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .eventlog import EventRecord, event_log
from .model import (
    Choice,
    Consume,
    Emit,
    Iterate,
    Node,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    WaitFor,
    WorkflowSpec,
)
from .scheduler import SimulationResult

__all__ = [
    "TaskExecution",
    "TaskStats",
    "AgentStats",
    "ItemFlow",
    "CriticalPath",
    "task_executions",
    "task_aborts",
    "latency_by_task",
    "agent_utilization",
    "item_flows",
    "critical_path",
    "attribute_wall_clock",
    "render_analytics",
]

_Records = Union[SimulationResult, Sequence[EventRecord]]


def _records(source: _Records) -> List[EventRecord]:
    if isinstance(source, SimulationResult):
        return event_log(source)
    return list(source)


# -- task executions ----------------------------------------------------------


@dataclass(frozen=True)
class TaskExecution:
    """One completed task interval on one work item.

    ``latency`` is in logical ticks (event-log sequence numbers); an
    iterated task yields one execution per round, paired FIFO.
    """

    task: str
    item: str
    agent: Optional[str]
    start_seq: int
    done_seq: int
    span_id: Optional[str] = None

    @property
    def latency(self) -> int:
        return self.done_seq - self.start_seq


def task_executions(source: _Records) -> List[TaskExecution]:
    """Join ``task_started``/``task_done`` pairs into intervals.

    Pairs FIFO per (task, item), so repeated rounds of an iterated task
    each produce their own interval.  A ``task_aborted`` record closes
    its start *without* producing an interval -- an aborted attempt has
    no completion, so counting it as latency would mis-pair every later
    round of the same task on the same item.  An unmatched start
    (simulation inspected mid-flight) is dropped; a ``task_done`` with
    no recorded start (shouldn't happen) is given a zero-length
    interval.
    """
    open_starts: Dict[Tuple[str, str], List[int]] = defaultdict(list)
    executions: List[TaskExecution] = []
    for record in _records(source):
        if record.task is None:
            continue
        key = (record.task, record.item)
        if record.kind == "task_started":
            open_starts[key].append(record.seq)
        elif record.kind == "task_aborted":
            starts = open_starts.get(key)
            if starts:
                starts.pop(0)
        elif record.kind == "task_done":
            starts = open_starts.get(key)
            start_seq = starts.pop(0) if starts else record.seq
            executions.append(
                TaskExecution(
                    record.task,
                    record.item,
                    record.agent,
                    start_seq,
                    record.seq,
                    span_id=record.span_id,
                )
            )
    return executions


def task_aborts(source: _Records) -> Dict[str, int]:
    """Aborted attempts per task (``task_aborted`` records)."""
    counts: Dict[str, int] = defaultdict(int)
    for record in _records(source):
        if record.kind == "task_aborted" and record.task is not None:
            counts[record.task] += 1
    return dict(counts)


@dataclass(frozen=True)
class TaskStats:
    """Aggregated latency for one task across executions."""

    task: str
    count: int
    total: int
    min: int
    max: int

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def latency_by_task(source: _Records) -> Dict[str, TaskStats]:
    """Per-task latency aggregates over all executions in the log."""
    buckets: Dict[str, List[int]] = defaultdict(list)
    for execution in task_executions(source):
        buckets[execution.task].append(execution.latency)
    return {
        task: TaskStats(task, len(vals), sum(vals), min(vals), max(vals))
        for task, vals in buckets.items()
    }


# -- agents -------------------------------------------------------------------


@dataclass(frozen=True)
class AgentStats:
    """One agent's share of the run."""

    agent: str
    completed: int
    busy_ticks: int
    utilization: float  # busy_ticks / run length, in [0, 1]


def agent_utilization(source: _Records) -> Dict[str, AgentStats]:
    """Busy time per agent (automated tasks land on pseudo-agent
    ``auto``).  Utilization is busy ticks over the log's full span; with
    concurrent instances one agent's intervals can overlap several
    items', so utilizations need not sum to 1."""
    records = _records(source)
    if not records:
        return {}
    run_ticks = max(r.seq for r in records) - min(r.seq for r in records)
    run_ticks = max(run_ticks, 1)
    busy: Dict[str, int] = defaultdict(int)
    completed: Dict[str, int] = defaultdict(int)
    for execution in task_executions(records):
        agent = execution.agent or "auto"
        busy[agent] += execution.latency
        completed[agent] += 1
    return {
        agent: AgentStats(agent, completed[agent], busy[agent], busy[agent] / run_ticks)
        for agent in busy
    }


# -- per-item flow ------------------------------------------------------------


@dataclass(frozen=True)
class ItemFlow:
    """One work item's passage through the system.

    ``queue_wait`` is dispatch → first task start (instance spawned but
    not yet worked); ``service`` is the sum of task latencies; the
    difference between ``makespan`` and ``service`` beyond the queue
    wait is time blocked on agents, synchronization, or interleaving.
    """

    item: str
    dispatched_seq: Optional[int]
    first_start_seq: Optional[int]
    last_done_seq: Optional[int]
    service_ticks: int

    @property
    def queue_wait(self) -> Optional[int]:
        if self.dispatched_seq is None or self.first_start_seq is None:
            return None
        return self.first_start_seq - self.dispatched_seq

    @property
    def makespan(self) -> Optional[int]:
        if self.dispatched_seq is None or self.last_done_seq is None:
            return None
        return self.last_done_seq - self.dispatched_seq


def item_flows(source: _Records) -> Dict[str, ItemFlow]:
    """Queue-wait / service / makespan per work item."""
    records = _records(source)
    dispatched: Dict[str, int] = {}
    first_start: Dict[str, int] = {}
    last_done: Dict[str, int] = {}
    service: Dict[str, int] = defaultdict(int)
    items: List[str] = []
    for record in records:
        if record.item not in dispatched and record.item not in first_start:
            items.append(record.item)
        if record.kind == "item_dispatched":
            dispatched.setdefault(record.item, record.seq)
        elif record.kind == "task_started":
            first_start.setdefault(record.item, record.seq)
        elif record.kind == "task_done":
            last_done[record.item] = record.seq
    for execution in task_executions(records):
        service[execution.item] += execution.latency
    return {
        item: ItemFlow(
            item,
            dispatched.get(item),
            first_start.get(item),
            last_done.get(item),
            service.get(item, 0),
        )
        for item in items
    }


# -- critical path ------------------------------------------------------------


@dataclass(frozen=True)
class CriticalPath:
    """The most expensive chain through the workflow's control flow.

    ``cost`` is expected ticks per item: each step is weighted by the
    task's *total* observed latency divided by the number of items, so
    iterated tasks carry all their rounds and unexecuted branches weigh
    nothing.
    """

    cost: float
    tasks: Tuple[str, ...]


def critical_path(
    spec: WorkflowSpec,
    source: Optional[_Records] = None,
    all_specs: Sequence[WorkflowSpec] = (),
    default_cost: float = 1.0,
) -> CriticalPath:
    """The heaviest task chain through *spec*'s dependency graph.

    Sequences add, parallel regions and choices keep their most
    expensive branch (worst case), subflows recurse into *all_specs*.
    With no event log every step costs ``default_cost``, making this a
    pure longest-path over the control-flow graph.
    """
    weights: Dict[str, float] = {}
    if source is not None:
        records = _records(source)
        n_items = len({r.item for r in records if r.item}) or 1
        for task, stats in latency_by_task(records).items():
            weights[task] = stats.total / n_items
    by_name = {s.name: s for s in all_specs}
    by_name.setdefault(spec.name, spec)
    visiting: List[str] = []

    def walk(node: Node) -> Tuple[float, Tuple[str, ...]]:
        if isinstance(node, Step):
            return weights.get(node.task, default_cost), (node.task,)
        if isinstance(node, SeqFlow):
            cost, path = 0.0, ()  # type: Tuple[str, ...]
            for child in node.children:
                c, p = walk(child)
                cost, path = cost + c, path + p
            return cost, path
        if isinstance(node, (ParFlow, Choice)):
            return max((walk(child) for child in node.children), key=lambda cp: cp[0])
        if isinstance(node, Iterate):
            # Observed weights already include every round of the loop.
            return walk(node.body)
        if isinstance(node, NonVital):
            return walk(node.body)
        if isinstance(node, Subflow):
            target = by_name.get(node.workflow)
            if target is None or node.workflow in visiting:
                return 0.0, ()
            visiting.append(node.workflow)
            try:
                return walk(target.body)
            finally:
                visiting.pop()
        if isinstance(node, (WaitFor, Emit, Consume)):
            return 0.0, ()
        raise TypeError("unknown workflow node %r" % (node,))

    visiting.append(spec.name)
    cost, tasks = walk(spec.body)
    return CriticalPath(cost, tasks)


# -- wall-clock attribution ---------------------------------------------------

_SpanLike = Union[Mapping[str, object], object]


def _span_fields(span: _SpanLike) -> Tuple[str, float]:
    if isinstance(span, Mapping):
        return str(span["span_id"]), float(span.get("duration") or 0.0)
    return str(getattr(span, "span_id")), float(getattr(span, "duration", 0.0))


def _span_info(span: _SpanLike) -> Tuple[str, Mapping, float]:
    if isinstance(span, Mapping):
        return (
            str(span.get("name", "")),
            span.get("attrs") or {},
            float(span.get("duration") or 0.0),
        )
    return (
        str(getattr(span, "name", "")),
        getattr(span, "attrs", None) or {},
        float(getattr(span, "duration", 0.0)),
    )


def _exact_task_durations(
    spans: Sequence[_SpanLike],
) -> Dict[Tuple[str, str, int], float]:
    """Measured seconds per ``(task, item, occurrence)`` from the
    ``workflow.task`` spans an instrumented scheduler run stamps."""
    out: Dict[Tuple[str, str, int], float] = {}
    for span in spans:
        name, attrs, duration = _span_info(span)
        if name != "workflow.task":
            continue
        key = (
            str(attrs.get("task")),
            str(attrs.get("item")),
            int(attrs.get("occurrence") or 0),
        )
        out[key] = duration
    return out


def _attribute(
    executions: Sequence[TaskExecution], spans: Sequence[_SpanLike]
) -> Tuple[Dict[str, float], bool]:
    """Wall seconds per task plus whether the numbers are exact.

    Prefers the per-execution ``workflow.task`` spans (joined FIFO by
    ``(task, item, occurrence)`` -- executions arrive in done order,
    matching the scheduler's occurrence counter); falls back to scaling
    the enclosing span's duration by logical latency when no task span
    matches.
    """
    exact = _exact_task_durations(spans)
    if exact:
        occurrences: Dict[Tuple[str, str], int] = defaultdict(int)
        measured: Dict[str, float] = defaultdict(float)
        matched = False
        for execution in executions:
            key = (execution.task, execution.item)
            occ = occurrences[key]
            occurrences[key] = occ + 1
            duration = exact.get((execution.task, execution.item, occ))
            if duration is None:
                continue
            matched = True
            measured[execution.task] += duration
        if matched:
            return dict(measured), True
    span_ids = {e.span_id for e in executions if e.span_id is not None}
    if not span_ids:
        return {}, False
    durations = dict(_span_fields(span) for span in spans)
    total_ticks = sum(e.latency for e in executions)
    if not total_ticks:
        return {}, False
    out: Dict[str, float] = defaultdict(float)
    for execution in executions:
        duration = durations.get(execution.span_id or "")
        if duration is None:
            continue
        out[execution.task] += duration * (execution.latency / total_ticks)
    return dict(out), False


def attribute_wall_clock(
    source: _Records, spans: Sequence[_SpanLike]
) -> Dict[str, float]:
    """Wall seconds per task, via the span correlation.

    When the trace carries the scheduler's per-execution
    ``workflow.task`` spans (instrumented runs), each execution gets its
    *measured* duration, joined by ``(task, item, occurrence)``.
    Otherwise event records stamped with a ``span_id`` are joined
    against the engine trace -- :class:`repro.obs.Span` objects or the
    dicts ``read_jsonl`` returns -- and the enclosing span's measured
    duration is divided over tasks proportionally to their logical
    latency (an estimate).  Returns an empty dict when the log carries
    no span id or the trace has no matching span.
    """
    wall, _ = _attribute(task_executions(source), spans)
    return wall


# -- rendering ----------------------------------------------------------------


def render_analytics(
    source: _Records,
    spec: Optional[WorkflowSpec] = None,
    all_specs: Sequence[WorkflowSpec] = (),
    spans: Sequence[_SpanLike] = (),
) -> str:
    """The full analytics report as aligned text (what ``repro
    analyze`` prints)."""
    records = _records(source)
    lines: List[str] = []
    stats = latency_by_task(records)
    if spans:
        wall, wall_exact = _attribute(task_executions(records), spans)
    else:
        wall, wall_exact = {}, False

    lines.append("per-task latency (logical ticks):")
    if stats:
        width = max(len(t) for t in stats)
        header = "  %-*s  %5s  %7s  %5s  %5s" % (width, "task", "runs", "mean", "min", "max")
        if wall:
            header += "  %10s" % ("wall" if wall_exact else "est. wall")
        lines.append(header)
        for task in sorted(stats, key=lambda t: -stats[t].total):
            s = stats[task]
            row = "  %-*s  %5d  %7.1f  %5d  %5d" % (
                width, task, s.count, s.mean, s.min, s.max,
            )
            if wall:
                row += "  %8.2fms" % (wall.get(task, 0.0) * 1e3)
            lines.append(row)
    else:
        lines.append("  (no completed tasks in log)")

    aborts = task_aborts(records)
    if aborts:
        lines.append("aborted attempts:")
        width = max(len(t) for t in aborts)
        for task in sorted(aborts):
            lines.append("  %-*s  %3d" % (width, task, aborts[task]))

    agents = agent_utilization(records)
    if agents:
        lines.append("agent utilization:")
        width = max(len(a) for a in agents)
        for agent in sorted(agents, key=lambda a: -agents[a].busy_ticks):
            a = agents[agent]
            lines.append(
                "  %-*s  %3d task(s)  %5d busy ticks  %5.1f%%"
                % (width, agent, a.completed, a.busy_ticks, a.utilization * 100)
            )

    flows = item_flows(records)
    if flows:
        lines.append("queue wait vs. service (ticks):")
        width = max(len(i) for i in flows)
        lines.append(
            "  %-*s  %5s  %7s  %8s" % (width, "item", "wait", "service", "makespan")
        )
        for item in sorted(flows):
            f = flows[item]
            lines.append(
                "  %-*s  %5s  %7d  %8s"
                % (
                    width,
                    item,
                    f.queue_wait if f.queue_wait is not None else "-",
                    f.service_ticks,
                    f.makespan if f.makespan is not None else "-",
                )
            )

    if spec is not None:
        path = critical_path(spec, records, all_specs=all_specs)
        lines.append("critical path (expected ticks per item):")
        lines.append(
            "  %s  [cost %.1f]" % (" -> ".join(path.tasks) or "(empty)", path.cost)
        )
    return "\n".join(lines)
